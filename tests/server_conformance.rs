//! Conformance suite for the `PaxServer` session API — the acceptance
//! criteria of the API redesign, asserted over random XMark workloads:
//!
//! * `Algorithm::{NaiveCentralized, PaX3, PaX2}` produce **bit-identical**
//!   answers through the server for every query, initially and after every
//!   update batch;
//! * the paper's visit bounds hold on **every** `ExecReport` (naive ≤ 1,
//!   PaX2 ≤ 2, PaX3 ≤ 3 — and a whole batch ≤ 2);
//! * one server handle interleaves `execute`, `execute_batch` and
//!   `apply_updates` in a single session;
//! * update rounds never visit a clean site, and a PaX2 re-execution after
//!   an update is served from the maintained cache with zero visits.

use paxml::prelude::*;
use paxml::xmark::{generate, UpdateWorkload, XmarkConfig};
use proptest::prelude::*;

const QUERIES: &[&str] = &[
    "/sites/site/people/person",
    "/sites/site/people/person[profile/age > 20 and address/country=\"US\"]/creditcard",
    "//person[address/country=\"US\"]/name",
    "/sites/site/open_auctions//annotation",
    "//people/person/name",
    "/wrongroot/person",
];

const ALGORITHMS: [Algorithm; 3] = [Algorithm::NaiveCentralized, Algorithm::PaX3, Algorithm::PaX2];

fn server(
    algorithm: Algorithm,
    annotations: bool,
    fragmented: &FragmentedTree,
    sites: usize,
) -> PaxServer {
    PaxServer::builder()
        .algorithm(algorithm)
        .annotations(annotations && algorithm != Algorithm::NaiveCentralized)
        .placement(Placement::RoundRobin)
        .sites(sites)
        .sequential(true)
        .deploy(fragmented)
        .expect("valid configuration")
}

/// The per-algorithm visit bound, checked on every report.
fn visit_bound(algorithm: Algorithm) -> u32 {
    match algorithm {
        Algorithm::NaiveCentralized => 1,
        Algorithm::PaX2 => 2,
        Algorithm::PaX3 => 3,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    #[test]
    fn algorithms_agree_bit_for_bit_while_interleaving_queries_batches_and_updates(
        seed in 0u64..1000,
        site_subtrees in 1usize..3,
        sites in 2usize..6,
        use_annotations in prop::bool::ANY,
        rounds in 1usize..3,
        ops_per_batch in 1usize..5,
    ) {
        let tree = generate(XmarkConfig {
            site_count: site_subtrees,
            vmb_per_site: 0.2,
            seed,
            ..XmarkConfig::default()
        });
        let fragmented =
            strategy::cut_at_labels(&tree, &["site", "people", "open_auctions"]).unwrap();

        // One long-lived session per algorithm; every session sees the same
        // interleaving of work.
        let mut servers: Vec<(Algorithm, PaxServer)> = ALGORITHMS
            .iter()
            .map(|&a| (a, server(a, use_annotations, &fragmented, sites)))
            .collect();
        let mut prepared: Vec<Vec<PreparedQuery>> = Vec::new();
        for (_, s) in servers.iter_mut() {
            prepared.push(QUERIES.iter().map(|q| s.prepare(q).unwrap()).collect());
        }

        // Initial executions: bit-identical to from-scratch centralized
        // evaluation of the original document, bounds intact.
        for (qi, query) in QUERIES.iter().enumerate() {
            let mut expected = centralized::evaluate(&tree, query).unwrap().answers;
            expected.sort();
            for ((algorithm, s), qs) in servers.iter_mut().zip(&prepared) {
                let report = s.execute(&qs[qi]).unwrap();
                prop_assert_eq!(
                    report.answer_origins(), expected.clone(),
                    "{} differs from centralized on {}", algorithm, query
                );
                prop_assert!(
                    report.max_visits_per_site() <= visit_bound(*algorithm),
                    "{} broke its visit bound on {}", algorithm, query
                );
            }
        }

        // A batch through each session: per-query answers unchanged, the
        // PaX engines keep the whole batch within two visits.
        for (algorithm, s) in servers.iter_mut() {
            let batch = s.execute_batch_text(QUERIES).unwrap();
            prop_assert_eq!(batch.len(), QUERIES.len());
            if *algorithm != Algorithm::NaiveCentralized {
                prop_assert!(batch.max_visits_per_site() <= 2);
            }
            for (query, outcome) in QUERIES.iter().zip(&batch.queries) {
                let mut expected = centralized::evaluate(&tree, query).unwrap().answers;
                expected.sort();
                let mut origins: Vec<_> = outcome.answers.iter().map(|a| a.origin).collect();
                origins.sort();
                prop_assert_eq!(origins, expected, "{} batch differs on {}", algorithm, query);
            }
        }

        // Update batches: applied to every session identically (and to a
        // mirror for the from-scratch reference).
        let mut workload = UpdateWorkload::new(&fragmented, tree.all_nodes().count(), seed ^ 0xcd);
        for _ in 0..rounds {
            let batch = workload.next_batch(ops_per_batch, 2);
            if batch.is_empty() {
                continue;
            }
            for (algorithm, s) in servers.iter_mut() {
                let report = s.apply_updates(&batch).unwrap();
                let outcome = report.update.as_ref().unwrap();
                prop_assert!(outcome.rejected.is_empty(), "{}: {:?}", algorithm, outcome.rejected);
                prop_assert_eq!(outcome.applied_ops, batch.len());
                // The update round touches dirty sites only, once each.
                prop_assert_eq!(report.clean_site_visits(), 0, "{} visited a clean site", algorithm);
                prop_assert!(report.max_visits_per_site() <= 1);
            }

            // Post-update: every algorithm still agrees with a from-scratch
            // evaluation of the updated data — compared as (origin, label,
            // text) triples so a stale cached text is caught, not just a
            // wrong node set (naive relabels the fragment field, so the
            // full `AnswerItem` is not comparable across algorithms) — and
            // the PaX2 session serves its maintained cache without a
            // single visit.
            let keyed = |answers: &[AnswerItem]| -> Vec<(paxml::xml::NodeId, String, Option<String>)> {
                answers.iter().map(|a| (a.origin, a.label.clone(), a.text.clone())).collect()
            };
            for (qi, query) in QUERIES.iter().enumerate() {
                let expected = keyed(
                    server(Algorithm::PaX2, false, workload.mirror(), sites)
                        .query_once(query)
                        .unwrap()
                        .answers(),
                );
                for ((algorithm, s), qs) in servers.iter_mut().zip(&prepared) {
                    let report = s.execute(&qs[qi]).unwrap();
                    prop_assert_eq!(
                        keyed(report.answers()), expected.clone(),
                        "{} differs from from-scratch after updates on {}", algorithm, query
                    );
                    prop_assert!(report.max_visits_per_site() <= visit_bound(*algorithm));
                    if *algorithm == Algorithm::PaX2 {
                        prop_assert!(report.from_cache, "PaX2 cache went stale on {}", query);
                        prop_assert_eq!(
                            report.max_visits_per_site(), 0,
                            "post-update PaX2 re-execution must be visit-free"
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, .. ProptestConfig::default() })]

    /// The compact-vector/arena kernel against a representation-independent
    /// reference: the naive *set-based* oracle of `paxml::xpath::semantics`
    /// shares no code with the bitset/arena evaluation passes (it never
    /// builds a vector or a formula), so agreement here pins the new kernel
    /// to the legacy semantics on random XMark workloads for all three
    /// algorithms.
    #[test]
    fn vector_kernel_matches_set_based_oracle_on_random_workloads(
        seed in 0u64..1000,
        site_subtrees in 1usize..3,
        sites in 2usize..6,
        use_annotations in prop::bool::ANY,
    ) {
        let tree = generate(XmarkConfig {
            site_count: site_subtrees,
            vmb_per_site: 0.2,
            seed,
            ..XmarkConfig::default()
        });
        let fragmented =
            strategy::cut_at_labels(&tree, &["site", "people", "open_auctions"]).unwrap();
        for query in QUERIES {
            let expected = paxml::xpath::semantics::oracle_eval(&tree, query).unwrap();
            for algorithm in ALGORITHMS {
                let s = server(algorithm, use_annotations, &fragmented, sites);
                let report = s.query_once(query).unwrap();
                prop_assert_eq!(
                    report.answer_origins(), expected.clone(),
                    "{} differs from the set-based oracle on {}", algorithm, query
                );
            }
        }
    }
}

#[test]
fn back_to_back_executions_report_per_execution_meters() {
    // The `&mut Deployment` stats footgun, asserted dead at the API level:
    // two consecutive executions over one session report the same visits
    // and bytes (not accumulated), with no reset call anywhere in sight.
    let tree = generate(XmarkConfig { site_count: 1, vmb_per_site: 0.2, ..Default::default() });
    let fragmented = strategy::cut_at_labels(&tree, &["site", "people"]).unwrap();
    for algorithm in ALGORITHMS {
        let s = server(algorithm, false, &fragmented, 4);
        let first = s.query_once("//people/person/name").unwrap();
        let second = s.query_once("//people/person/name").unwrap();
        assert!(first.max_visits_per_site() > 0);
        assert_eq!(
            first.max_visits_per_site(),
            second.max_visits_per_site(),
            "{algorithm}: visits accumulated across executions"
        );
        assert_eq!(first.network_bytes(), second.network_bytes());
        assert_eq!(first.rounds(), second.rounds());
        assert_eq!(first.answer_origins(), second.answer_origins());
    }
}

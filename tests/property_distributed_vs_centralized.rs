//! Property-based end-to-end test: for *random* documents, *random*
//! fragmentations and *random* queries from the widened class X, the
//! distributed algorithms (PaX3 and PaX2, with and without the annotation
//! optimization) return exactly the same answer set as the centralized
//! evaluator and as the naive set-based oracle.
//!
//! Queries come from the shared grammar-based generator
//! ([`paxml::xmark::QueryGen`]) — the same stream the differential harness
//! uses — so every widened feature (attributes, positions, numeric text()
//! comparisons, verbose axes) is exercised here too. Documents carry
//! random attributes so the attribute predicates have something to match.
//!
//! This is the strongest correctness statement in the test suite: it
//! exercises arbitrary nestings of fragments (including fragments inside
//! fragments), arbitrary placements and every query feature at once.

use paxml::prelude::*;
use paxml::xmark::{QueryGen, QueryGenConfig};
use paxml::xpath::semantics::oracle_eval;
use paxml_xml::{NodeId, NodeKind, XmlTree};
use proptest::prelude::*;

const LABELS: &[&str] = &["a", "b", "c", "d", "e"];
const TEXTS: &[&str] = &["x", "y", "10", "42", "US"];
const ATTRS: &[&str] = &["id", "age", "price", "vip"];

/// Build a random tree from a list of (parent index, node choice) pairs.
/// Elements pick up a random attribute when the choice says so, with
/// values from both the string vocabulary and the numeric range the
/// generator compares against.
fn build_tree(spec: &[(usize, usize)]) -> XmlTree {
    let mut tree = XmlTree::with_root_element(LABELS[0]);
    let mut elements: Vec<NodeId> = vec![tree.root()];
    for &(parent_choice, kind) in spec {
        let parent = elements[parent_choice % elements.len()];
        if kind % 4 == 3 {
            // a text child
            tree.append_child(parent, NodeKind::text(TEXTS[kind % TEXTS.len()]));
        } else {
            let label = LABELS[kind % LABELS.len()];
            let id = tree.append_element(parent, label);
            if kind % 3 == 0 {
                let name = ATTRS[parent_choice % ATTRS.len()];
                let value = if parent_choice % 2 == 0 {
                    TEXTS[kind % TEXTS.len()].to_string()
                } else {
                    format!("{}", (parent_choice * 7 + kind) % 50)
                };
                tree.set_attribute(id, name, value).expect("elements accept attributes");
            }
            elements.push(id);
        }
    }
    tree
}

/// Random tree strategy: 5–60 extra nodes under an `a` root.
fn tree_strategy() -> impl Strategy<Value = XmlTree> {
    prop::collection::vec((0usize..1000, 0usize..20), 5..60).prop_map(|spec| build_tree(&spec))
}

/// Random query strategy: one draw from the shared grammar-based
/// generator, over the same vocabulary the trees are built from.
fn query_strategy() -> impl Strategy<Value = String> {
    any::<u64>().prop_map(|seed| {
        QueryGen::new(QueryGenConfig::with_vocabulary(LABELS, TEXTS, ATTRS), seed).query_text()
    })
}

/// Pick random cut points (by index among non-root elements).
fn cuts_for(tree: &XmlTree, picks: &[usize]) -> Vec<NodeId> {
    let candidates: Vec<NodeId> =
        tree.all_nodes().filter(|&n| n != tree.root() && tree.is_element(n)).collect();
    if candidates.is_empty() {
        return Vec::new();
    }
    let mut cuts: Vec<NodeId> = picks.iter().map(|&p| candidates[p % candidates.len()]).collect();
    cuts.sort();
    cuts.dedup();
    cuts
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn distributed_answers_equal_centralized_and_oracle(
        tree in tree_strategy(),
        query in query_strategy(),
        picks in prop::collection::vec(0usize..1000, 0..8),
        sites in 1usize..5,
    ) {
        let cuts = cuts_for(&tree, &picks);
        let fragmented = fragment_at(&tree, &cuts).expect("valid cuts");

        // Reference semantics (two independent implementations). The oracle
        // reports document order, the vector evaluator node-id order; compare
        // as sets by sorting both.
        let mut oracle: Vec<NodeId> = oracle_eval(&tree, &query).expect("query parses");
        oracle.sort();
        let central = centralized::evaluate(&tree, &query).expect("query parses");
        prop_assert_eq!(&oracle, &central.answers, "oracle vs centralized on {}", query);

        let server = |algorithm: Algorithm, annotations: bool| {
            PaxServer::builder()
                .algorithm(algorithm)
                .annotations(annotations)
                .placement(Placement::RoundRobin)
                .sites(sites)
                .sequential(true)
                .deploy(&fragmented)
                .expect("valid configuration")
        };
        for use_annotations in [false, true] {
            let p3 = server(Algorithm::PaX3, use_annotations).query_once(&query).unwrap();
            prop_assert_eq!(
                p3.answer_origins(), oracle.clone(),
                "PaX3 (XA={}) differs on query {} with {} fragments",
                use_annotations, query, fragmented.fragment_count()
            );
            prop_assert!(p3.max_visits_per_site() <= 3);

            let p2 = server(Algorithm::PaX2, use_annotations).query_once(&query).unwrap();
            prop_assert_eq!(
                p2.answer_origins(), oracle.clone(),
                "PaX2 (XA={}) differs on query {} with {} fragments",
                use_annotations, query, fragmented.fragment_count()
            );
            prop_assert!(p2.max_visits_per_site() <= 2);
        }

        let nv = server(Algorithm::NaiveCentralized, false).query_once(&query).unwrap();
        prop_assert_eq!(nv.answer_origins(), oracle, "Naive differs on query {}", query);
    }

    #[test]
    fn fragmentation_round_trips_for_random_trees(
        tree in tree_strategy(),
        picks in prop::collection::vec(0usize..1000, 0..10),
    ) {
        let cuts = cuts_for(&tree, &picks);
        let fragmented = fragment_at(&tree, &cuts).expect("valid cuts");
        prop_assert!(fragmented.validate().is_ok());
        let back = fragmented.reassemble().expect("reassembly");
        prop_assert_eq!(paxml_xml::to_string(&back), paxml_xml::to_string(&tree));
        prop_assert_eq!(fragmented.total_real_nodes(), tree.all_nodes().count());
    }

    #[test]
    fn parse_serialize_round_trip_for_random_trees(tree in tree_strategy()) {
        let text = paxml_xml::to_string(&tree);
        let reparsed = paxml_xml::parse(&text).expect("serializer output parses");
        prop_assert_eq!(paxml_xml::to_string(&reparsed), text);
    }
}

//! End-to-end tests of batched execution through the `PaxServer` API: for
//! random XMark workloads (random documents, fragmentations, deployments and
//! query subsets), `execute_batch` must return exactly the per-query PaX2
//! answers while holding the paper's two-visit bound for the *whole batch*.

use paxml::prelude::*;
use paxml::xmark::{generate, XmarkConfig, PAPER_QUERIES};
use proptest::prelude::*;

/// The query pool batches are drawn from: the paper's four experiment
/// queries plus dashboard-style variations covering qualifiers, negation,
/// descendant axes and wildcards.
const QUERY_POOL: &[&str] = &[
    "/sites/site/people/person",
    "/sites/site/open_auctions//annotation",
    "/sites/site/people/person[profile/age > 20 and address/country=\"US\"]/creditcard",
    "/sites//people/person[profile/age > 20 and address/country=\"US\"]/creditcard",
    "/sites/site/people/person/name",
    "//person[address/country=\"US\"]/name",
    "//person[not(address/country=\"US\")]/address/city",
    "//open_auctions/auction/bidder/increase",
    "/sites/site/regions//item[quantity > 5]/name",
    "*/*/person/emailaddress",
    "//annotation/description/text",
    "/wrongroot/person",
];

fn workload_strategy() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(prop::sample::select(QUERY_POOL.to_vec()), 1..12)
        .prop_map(|queries| queries.into_iter().map(String::from).collect())
}

fn pax2_server(fragmented: &FragmentedTree, sites: usize, annotations: bool) -> PaxServer {
    PaxServer::builder()
        .algorithm(Algorithm::PaX2)
        .annotations(annotations)
        .placement(Placement::RoundRobin)
        .sites(sites)
        .sequential(true)
        .deploy(fragmented)
        .expect("valid configuration")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn batch_answers_equal_per_query_answers_on_random_xmark_workloads(
        seed in 0u64..1_000,
        site_subtrees in 1usize..4,
        sites in 1usize..8,
        cut_depth in 0usize..3,
        queries in workload_strategy(),
        use_annotations in prop::bool::ANY,
    ) {
        let tree = generate(XmarkConfig {
            site_count: site_subtrees,
            vmb_per_site: 0.15,
            seed,
            ..XmarkConfig::default()
        });
        // Random fragmentation granularity: site subtrees, then sections,
        // then entities.
        let labels: &[&str] = match cut_depth {
            0 => &["site"],
            1 => &["site", "people", "open_auctions"],
            _ => &["site", "people", "person", "auction", "item"],
        };
        let fragmented = strategy::cut_at_labels(&tree, labels).expect("valid label cuts");

        let server = pax2_server(&fragmented, sites, use_annotations);
        let batch = server.execute_batch_text(&queries).unwrap();

        // The whole batch respects PaX2's per-site visit bound.
        prop_assert!(
            batch.max_visits_per_site() <= 2,
            "batch of {} queries took {} visits on some site",
            queries.len(),
            batch.max_visits_per_site()
        );
        prop_assert!(batch.rounds() <= 2);

        // Per-query answers match an independent single-query evaluation.
        prop_assert_eq!(batch.len(), queries.len());
        for (query, outcome) in queries.iter().zip(&batch.queries) {
            let single = pax2_server(&fragmented, sites, use_annotations);
            let expected = single.query_once(query).unwrap();
            let mut origins: Vec<_> = outcome.answers.iter().map(|a| a.origin).collect();
            origins.sort();
            prop_assert_eq!(
                origins,
                expected.answer_origins(),
                "batch disagrees with PaX2 on {} (XA={}, seed={})",
                query, use_annotations, seed
            );
        }
    }
}

#[test]
fn pax2_batch_of_paper_queries_needs_at_most_two_visits_per_site() {
    // The acceptance check, spelled out: a PaX2 batch of N queries over one
    // deployment performs at most 2 visits per site *in total*.
    let tree = generate(XmarkConfig { site_count: 2, vmb_per_site: 0.5, ..Default::default() });
    let fragmented = strategy::cut_at_labels(&tree, &["site", "people", "open_auctions"]).unwrap();
    let queries: Vec<&str> = PAPER_QUERIES.iter().map(|(_, q)| *q).collect();
    let server = PaxServer::builder()
        .algorithm(Algorithm::PaX2)
        .sites(6)
        .placement(Placement::RoundRobin)
        .deploy(&fragmented)
        .unwrap();
    let batch = server.execute_batch_text(&queries).unwrap();
    assert_eq!(batch.len(), queries.len());
    assert!(batch.total_answers() > 0, "the paper queries select data");
    assert!(
        batch.max_visits_per_site() <= 2,
        "PaX2 batch exceeded two visits per site: {}",
        batch.max_visits_per_site()
    );
    // And the batch beats one-at-a-time on every amortizable meter — the
    // one-at-a-time runs reuse the *same* server, whose per-execution
    // reports need no reset bookkeeping.
    let mut rounds = 0;
    for query in &queries {
        let report = server.query_once(query).unwrap();
        assert!(report.max_visits_per_site() <= 2);
        rounds += report.rounds();
    }
    assert!(rounds >= 2 * batch.rounds(), "batching must amortize coordinator rounds");
}

// Canonical byte vectors for the PaX wire layout, shared between
// `crates/distsim/tests/byte_vectors.rs` (which asserts that
// `paxml_distsim::encoded_size` charges exactly `expected.len()` bytes)
// and `crates/wire/tests/byte_vectors.rs` (which asserts that
// `paxml_wire::encode` produces exactly these bytes and that
// `paxml_wire::decode` recovers the value). Each includer defines a
// `case!(name, Type, value, [bytes...])` macro before `include!`-ing this
// file; keeping one copy pins the two charging models to each other.
//
// The vectors deliberately over-represent the edge cases where a size
// model and a codec could drift apart silently: `None` vs `Some` of an
// empty container, empty maps and sequences, varint byte boundaries,
// zig-zag extremes, and multi-byte UTF-8 chars (which are written raw,
// with no length prefix).

// Booleans and single-byte integers: one raw byte each.
case!(v_bool_false, bool, false, [0x00]);
case!(v_bool_true, bool, true, [0x01]);
case!(v_u8_max, u8, 255u8, [0xFF]);
case!(v_i8_neg_one, i8, -1i8, [0xFF]);

// Unsigned varints: 7 bits per byte, little-endian groups,
// high bit = continuation.
case!(v_u16_300, u16, 300u16, [0xAC, 0x02]);
case!(v_u32_127, u32, 127u32, [0x7F]);
case!(v_u32_128, u32, 128u32, [0x80, 0x01]);
case!(
    v_u64_max,
    u64,
    u64::MAX,
    [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01]
);

// Signed integers: zig-zag then varint, so small magnitudes stay small.
case!(v_i32_neg_one, i32, -1i32, [0x01]);
case!(v_i32_one, i32, 1i32, [0x02]);
case!(
    v_i64_min,
    i64,
    i64::MIN,
    [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01]
);

// Floats: fixed-width little-endian IEEE 754.
case!(v_f32_one, f32, 1.0f32, [0x00, 0x00, 0x80, 0x3F]);
case!(v_f64_one, f64, 1.0f64, [0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF0, 0x3F]);

// Chars: raw UTF-8 bytes, width implied by the leading byte — no prefix.
case!(v_char_ascii, char, 'A', [0x41]);
case!(v_char_two_byte, char, '\u{e9}', [0xC3, 0xA9]);

// Strings: varint byte length, then the UTF-8 payload.
case!(v_string_empty, String, String::new(), [0x00]);
case!(v_string_accent, String, String::from("\u{e9}"), [0x02, 0xC3, 0xA9]);

// Options: one tag byte; `None` is exactly one byte even for large payload
// types, and `Some` of a zero is two.
case!(v_none_u64, Option<u64>, None, [0x00]);
case!(v_some_zero_u64, Option<u64>, Some(0), [0x01, 0x00]);
case!(v_some_none, Option<Option<u8>>, Some(None), [0x01, 0x00]);

// Sequences and maps: varint element count, then the elements. An empty
// map is one byte — NOT zero — which is the edge the simulator's byte
// meter and the codec must agree on for protocol messages that carry
// empty per-fragment tables.
case!(v_vec_empty, Vec<u32>, Vec::new(), [0x00]);
case!(v_vec_u32, Vec<u32>, vec![1, 300], [0x02, 0x01, 0xAC, 0x02]);
case!(v_map_empty, BTreeMap<u32, u64>, BTreeMap::new(), [0x00]);
case!(
    v_map_with_empty_vec_value,
    BTreeMap<u32, Vec<u32>>,
    [(5u32, Vec::new())].into_iter().collect(),
    [0x01, 0x05, 0x00]
);
case!(
    v_some_empty_map,
    Option<BTreeMap<u32, u64>>,
    Some(BTreeMap::new()),
    [0x01, 0x00]
);

// Units and tuples: zero framing overhead — fields are just concatenated.
case!(v_unit, (), (), []);
case!(
    v_tuple,
    (u8, i32, String),
    (7u8, -2i32, String::from("hi")),
    [0x07, 0x03, 0x02, 0x68, 0x69]
);

//! Grammar-based differential testing of the widened fragment X.
//!
//! Every query this file runs is drawn from [`paxml::xmark::QueryGen`] —
//! the same grammar-based generator the unit suites use — so the whole
//! widened language (attribute predicates and trailing attribute steps,
//! positional predicates, numeric `text()` comparisons, verbose axis
//! spellings, nested booleans) is exercised end-to-end:
//!
//! * **Part A** (proptest): random attributed documents × random
//!   fragmentations × random widened queries — the set-based oracle, the
//!   centralized vector evaluator, PaX3/PaX2 (annotations on and off) and
//!   the naive baseline must all agree, with the paper's visit bounds
//!   intact.
//! * **Part B** (fixed seeds): the same agreement must survive random
//!   [`UpdateOp`] batches *and* an online re-fragmentation pass, compared
//!   as `(origin, label, text)` triples against a fresh deployment of the
//!   update workload's mirror.
//! * **Part C** (fixed seed): the TCP transport — sites as real OS
//!   processes — must stay bit-identical to the in-process simulator on
//!   generated widened queries.
//!
//! Plus the parser lock-down: a proptest round-trip through the grammar
//! (`parse(display(q)) == q`) and golden error-message tests for the
//! widened surface syntax.

use paxml::prelude::*;
use paxml::rebalance::{apply_ops, RefragOp};
use paxml::wire::ProcessCluster;
use paxml::xmark::{QueryGen, QueryGenConfig, UpdateWorkload};
use paxml::xpath::semantics::oracle_eval;
use paxml_distsim::SiteId;
use paxml_xml::{NodeId, NodeKind, XmlTree};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const LABELS: &[&str] = &["a", "b", "c", "d", "e"];
const TEXTS: &[&str] = &["x", "y", "10", "42", "US"];
const ATTRS: &[&str] = &["id", "age", "price", "vip"];
const ALGORITHMS: [Algorithm; 3] = [Algorithm::NaiveCentralized, Algorithm::PaX3, Algorithm::PaX2];

/// Fixed widened-syntax queries the random grammar cannot emit (trailing
/// attribute *selection* steps, which the parser desugars to `[@attr]`),
/// appended to every generated workload.
const EXTRA_QUERIES: &[&str] =
    &["//b/@id", "a/*[@age > 10]/@price", "b[2]/@id", "//*[@vip]/c[last()]"];

/// A random attributed tree: like the class-X property test's trees
/// (labels a–e, text children from the shared vocabulary) but with 0–2
/// random attributes per element, values drawn from the string vocabulary
/// and from small numbers so `[@a = "s"]` and `[@a op n]` both hit.
fn random_attributed_tree(rng: &mut StdRng, extra_nodes: usize) -> XmlTree {
    let mut tree = XmlTree::with_root_element(LABELS[0]);
    let mut elements: Vec<NodeId> = vec![tree.root()];
    for _ in 0..extra_nodes {
        let parent = elements[rng.gen_range(0..elements.len())];
        if rng.gen_range(0..4u32) == 3 {
            tree.append_child(parent, NodeKind::text(TEXTS[rng.gen_range(0..TEXTS.len())]));
        } else {
            let id = tree.append_element(parent, LABELS[rng.gen_range(0..LABELS.len())]);
            for _ in 0..rng.gen_range(0..3u32) {
                let name = ATTRS[rng.gen_range(0..ATTRS.len())];
                let value = if rng.gen_bool(0.5) {
                    TEXTS[rng.gen_range(0..TEXTS.len())].to_string()
                } else {
                    rng.gen_range(0..50u32).to_string()
                };
                tree.set_attribute(id, name, value).expect("elements accept attributes");
            }
            elements.push(id);
        }
    }
    tree
}

/// Random cut points among the non-root elements.
fn random_cuts(tree: &XmlTree, rng: &mut StdRng, max_cuts: usize) -> Vec<NodeId> {
    let candidates: Vec<NodeId> =
        tree.all_nodes().filter(|&n| n != tree.root() && tree.is_element(n)).collect();
    if candidates.is_empty() {
        return Vec::new();
    }
    let mut cuts: Vec<NodeId> = (0..rng.gen_range(0..=max_cuts))
        .map(|_| candidates[rng.gen_range(0..candidates.len())])
        .collect();
    cuts.sort();
    cuts.dedup();
    cuts
}

/// The per-seed query workload: a stream from the shared grammar plus the
/// fixed widened-syntax extras.
fn workload_queries(seed: u64, count: usize) -> Vec<String> {
    let mut gen = QueryGen::new(QueryGenConfig::with_vocabulary(LABELS, TEXTS, ATTRS), seed);
    let mut queries: Vec<String> = (0..count).map(|_| gen.query_text()).collect();
    queries.extend(EXTRA_QUERIES.iter().map(|s| s.to_string()));
    queries
}

fn server(
    algorithm: Algorithm,
    annotations: bool,
    fragmented: &FragmentedTree,
    sites: usize,
) -> PaxServer {
    PaxServer::builder()
        .algorithm(algorithm)
        .annotations(annotations && algorithm != Algorithm::NaiveCentralized)
        .placement(Placement::RoundRobin)
        .sites(sites)
        .sequential(true)
        .deploy(fragmented)
        .expect("valid configuration")
}

fn visit_bound(algorithm: Algorithm) -> u32 {
    match algorithm {
        Algorithm::NaiveCentralized => 1,
        Algorithm::PaX2 => 2,
        Algorithm::PaX3 => 3,
    }
}

// ---------------------------------------------------------------------------
// Part A: simulator differential on random documents and random queries.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// For random attributed documents, random fragmentations and random
    /// widened queries: oracle == centralized == PaX3 == PaX2 == naive,
    /// with and without the annotation optimization, bounds intact.
    #[test]
    fn widened_queries_agree_across_all_evaluators(
        seed in any::<u64>(),
        sites in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let extra_nodes = rng.gen_range(5..60);
        let tree = random_attributed_tree(&mut rng, extra_nodes);
        let cuts = random_cuts(&tree, &mut rng, 7);
        let fragmented = fragment_at(&tree, &cuts).expect("valid cuts");

        // One long-lived server per configuration, reused for every query.
        let mut servers: Vec<(Algorithm, bool, PaxServer)> = Vec::new();
        for use_annotations in [false, true] {
            for algorithm in [Algorithm::PaX3, Algorithm::PaX2] {
                servers.push((
                    algorithm,
                    use_annotations,
                    server(algorithm, use_annotations, &fragmented, sites),
                ));
            }
        }
        servers.push((
            Algorithm::NaiveCentralized,
            false,
            server(Algorithm::NaiveCentralized, false, &fragmented, sites),
        ));

        for query in workload_queries(seed ^ 0x51c3, 6) {
            // Two independent reference semantics first.
            let mut oracle: Vec<NodeId> = oracle_eval(&tree, &query).expect("query parses");
            oracle.sort();
            let central = centralized::evaluate(&tree, &query).expect("query parses");
            prop_assert_eq!(&oracle, &central.answers, "oracle vs centralized on {}", query);

            for (algorithm, use_annotations, s) in &servers {
                let report = s.query_once(&query).expect("distributed evaluation");
                prop_assert_eq!(
                    report.answer_origins(), oracle.clone(),
                    "{} (XA={}) differs on query {} with {} fragments",
                    algorithm, use_annotations, query, fragmented.fragment_count()
                );
                prop_assert!(
                    report.max_visits_per_site() <= visit_bound(*algorithm),
                    "{} broke its visit bound on {}", algorithm, query
                );
            }
        }
    }

    /// The grammar round-trip, as a property over the whole seed space:
    /// every generated query survives `parse(display(q)) == q`, and the
    /// verbose axis respellings parse to the same query.
    #[test]
    fn generated_queries_round_trip_through_the_parser(seed in any::<u64>()) {
        let mut gen = QueryGen::new(QueryGenConfig::default(), seed);
        for _ in 0..20 {
            let q = gen.query();
            let text = q.to_string();
            let back = parse_query(&text)
                .unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
            prop_assert_eq!(back, q.clone(), "round-trip mismatch for `{}`", text);
        }
        for _ in 0..20 {
            let text = gen.query_text();
            let q = parse_query(&text)
                .unwrap_or_else(|e| panic!("respelled `{text}` failed to parse: {e}"));
            prop_assert_eq!(
                parse_query(&q.to_string()).unwrap(), q,
                "unstable respelling `{}`", text
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Part B: the agreement survives updates and an online re-fragmentation.
// ---------------------------------------------------------------------------

/// Answers as `(origin, label, text)` triples: the naive baseline relabels
/// the fragment field, so the full `AnswerItem` is not comparable across
/// algorithms, but a stale cached label or text is still caught.
fn keyed(answers: &[AnswerItem]) -> Vec<(NodeId, String, Option<String>)> {
    answers.iter().map(|a| (a.origin, a.label.clone(), a.text.clone())).collect()
}

/// Every live server must answer every query exactly like a fresh naive
/// deployment of `reference` (the update workload's mirror — same document
/// content, whatever the live fragmentation now looks like).
fn assert_servers_match_mirror(
    servers: &[(Algorithm, PaxServer)],
    reference: &FragmentedTree,
    sites: usize,
    queries: &[String],
    context: &str,
) {
    let fresh = server(Algorithm::NaiveCentralized, false, reference, sites);
    for query in queries {
        let expected = keyed(fresh.query_once(query).expect("reference query").answers());
        for (algorithm, s) in servers {
            let report = s.query_once(query).expect("live query");
            assert_eq!(
                keyed(report.answers()),
                expected,
                "{context}: {algorithm} differs from the from-scratch reference on {query}"
            );
            assert!(
                report.max_visits_per_site() <= visit_bound(*algorithm),
                "{context}: {algorithm} broke its visit bound on {query}"
            );
        }
    }
}

/// A split point: some fragment with a real interior element, and that
/// element's id in the fragment's own tree.
fn split_candidate(fragmented: &FragmentedTree) -> Option<(FragmentId, NodeId)> {
    fragmented.fragments.iter().find_map(|f| {
        let root = f.tree.root();
        f.tree.all_nodes().find(|&n| n != root && f.tree.is_element(n)).map(|cut| (f.id, cut))
    })
}

/// Random update batches, then a split + migrate re-fragmentation: after
/// every step, all three algorithms still agree with a from-scratch
/// deployment of the workload mirror on the whole generated query stream.
///
/// The update streams are deterministic and the site-held copies start
/// identical to the mirror, so a cut node found in the mirror is valid in
/// every live deployment.
#[test]
fn updates_then_refragmentation_preserve_the_agreement() {
    let sites = 3;
    for seed in [3u64, 17, 98] {
        let mut rng = StdRng::seed_from_u64(seed);
        let extra_nodes = rng.gen_range(40..80);
        let tree = random_attributed_tree(&mut rng, extra_nodes);
        let cuts = random_cuts(&tree, &mut rng, 5);
        let fragmented = fragment_at(&tree, &cuts).expect("valid cuts");
        let queries = workload_queries(seed ^ 0xbeef, 8);

        let servers: Vec<(Algorithm, PaxServer)> =
            ALGORITHMS.iter().map(|&a| (a, server(a, true, &fragmented, sites))).collect();

        let mut workload = UpdateWorkload::new(&fragmented, tree.all_nodes().count(), seed ^ 0xcd);
        for round in 0..3 {
            let batch = workload.next_batch(4, 2);
            if batch.is_empty() {
                continue;
            }
            for (algorithm, s) in &servers {
                let report = s.apply_updates(&batch).expect("update batch applies");
                let outcome = report.update.as_ref().expect("update report");
                assert!(
                    outcome.rejected.is_empty(),
                    "seed {seed} {algorithm}: {:?}",
                    outcome.rejected
                );
            }
            assert_servers_match_mirror(
                &servers,
                workload.mirror(),
                sites,
                &queries,
                &format!("seed {seed} after update round {round}"),
            );
        }

        // Re-fragment the updated deployment: cut out a subtree onto the
        // last site, then move the new fragment to S0. Content is
        // untouched, so the pre-refrag mirror is still the reference.
        let Some((victim, cut)) = split_candidate(workload.mirror()) else {
            panic!("seed {seed}: no interior element to split at");
        };
        let new_id = FragmentId(workload.mirror().fragment_tree.max_id().index() + 1);
        let ops = vec![
            RefragOp::Split { fragment: victim, cut, place_on: SiteId(sites - 1).into() },
            RefragOp::Migrate { fragment: new_id, from: SiteId(sites - 1), to: SiteId(0) },
        ];
        for (algorithm, s) in &servers {
            apply_ops(s, &ops).unwrap_or_else(|e| panic!("seed {seed} {algorithm} refrag: {e}"));
        }
        assert_servers_match_mirror(
            &servers,
            workload.mirror(),
            sites,
            &queries,
            &format!("seed {seed} after refragmentation"),
        );
    }
}

// ---------------------------------------------------------------------------
// Part C: the TCP transport agrees bit-for-bit with the simulator.
// ---------------------------------------------------------------------------

const BIN: &str = env!("CARGO_BIN_EXE_paxml");
const WATCHDOG: Duration = Duration::from_secs(120);

/// Run `body` on its own thread and fail loudly if it neither returns nor
/// panics within the watchdog interval — the shape a transport hang takes.
fn with_watchdog<F: FnOnce() + Send + 'static>(body: F) {
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        body();
        let _ = done_tx.send(());
    });
    match done_rx.recv_timeout(WATCHDOG) {
        Ok(()) => handle.join().expect("test body panicked after completing"),
        Err(_) => match handle.is_finished() {
            true => handle.join().expect("test body panicked"),
            false => panic!("test body hung for {WATCHDOG:?} — the transport wedged"),
        },
    }
}

fn assert_reports_match(sim: &ExecReport, tcp: &ExecReport, context: &str) {
    assert_eq!(sim.queries.len(), tcp.queries.len(), "{context}: query count");
    for (qs, qt) in sim.queries.iter().zip(&tcp.queries) {
        assert_eq!(qs.answers, qt.answers, "{context}: answers diverged for {}", qs.query);
        assert_eq!(
            qs.fragments_evaluated, qt.fragments_evaluated,
            "{context}: fragments_evaluated diverged for {}",
            qs.query
        );
    }
    assert_eq!(sim.stats.rounds, tcp.stats.rounds, "{context}: rounds diverged");
    assert_eq!(
        sim.stats.sites.keys().collect::<Vec<_>>(),
        tcp.stats.sites.keys().collect::<Vec<_>>(),
        "{context}: different sites were visited"
    );
    for (site, s) in &sim.stats.sites {
        let t = &tcp.stats.sites[site];
        assert_eq!(s.visits, t.visits, "{context}: visits diverged at {site:?}");
        assert_eq!(s.bytes_received, t.bytes_received, "{context}: req bytes at {site:?}");
        assert_eq!(s.bytes_sent, t.bytes_sent, "{context}: resp bytes at {site:?}");
    }
}

/// Generated widened queries over real site processes: answers, visits and
/// bytes must be bit-identical to the in-process simulator for all three
/// algorithms — attributes included, since the payloads ship over sockets.
#[test]
fn widened_queries_match_the_simulator_over_tcp() {
    with_watchdog(|| {
        let seed = 2207u64;
        let sites = 3;
        let mut rng = StdRng::seed_from_u64(seed);
        let tree = random_attributed_tree(&mut rng, 60);
        let cuts = random_cuts(&tree, &mut rng, 5);
        let fragmented = fragment_at(&tree, &cuts).expect("valid cuts");
        let queries = workload_queries(seed, 8);

        for algorithm in ALGORITHMS {
            let sim = PaxServer::builder()
                .algorithm(algorithm)
                .sites(sites)
                .placement(Placement::RoundRobin)
                .deploy(&fragmented)
                .expect("deploy simulator");
            let cluster = ProcessCluster::spawn(BIN, &fragmented, sites, Placement::RoundRobin)
                .expect("spawn site processes");
            let tcp = PaxServer::builder()
                .algorithm(algorithm)
                .deploy_over(&fragmented, cluster.transport.clone())
                .expect("deploy over processes");
            for query in &queries {
                let s = sim.query_once(query).expect("simulator query");
                let t = tcp.query_once(query).expect("TCP query");
                assert_reports_match(&s, &t, &format!("{algorithm} {query}"));
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Parser lock-down: golden error messages for the widened surface syntax.
// ---------------------------------------------------------------------------

/// The widened parser's rejections are diagnosable: each malformed input
/// names its problem (these strings are the user-facing contract).
#[test]
fn golden_parse_errors_for_the_widened_syntax() {
    let cases: &[(&str, &str)] = &[
        // Unterminated attribute steps.
        ("a[@]", "unterminated attribute step"),
        ("person/@", "unterminated attribute step"),
        // Attribute steps are final-position only.
        ("a/@id/b", "must be the last step"),
        // Positions are positive integers or last().
        ("a[0]", "non-numeric position"),
        ("a[2.5]", "non-numeric position"),
        // Only the three class-X axes exist.
        ("foo::a", "bad axis"),
        ("a/preceding-sibling::b", "bad axis"),
        // Positions need a step to count against.
        (".[2]", "without a preceding label or wildcard step"),
    ];
    for (text, needle) in cases {
        let err = parse_query(text).expect_err(&format!("`{text}` must be rejected"));
        let message = err.to_string();
        assert!(
            message.contains(needle),
            "`{text}`: error `{message}` does not mention `{needle}`"
        );
    }

    // And one compile-stage rejection: counting among `//`-reachable
    // qualifier nodes is out of the fragment.
    let err = compile_text("a[.//b[2]]").expect_err("positions on descendant steps are rejected");
    assert!(err.to_string().contains("descendant-axis"), "unexpected message: {err}");
}

//! Integration tests asserting the paper's **performance guarantees** (§3.4,
//! §4) as measurable facts on the simulator, through the `PaxServer` API:
//!
//! 1. every site is visited at most three times by PaX3 and at most twice by
//!    PaX2, irrespective of the number of fragments it stores;
//! 2. the network traffic is `O(|Q|·|FT| + |ans|)` — in particular it does
//!    not grow with the size of the data;
//! 3. the total computation is comparable to the centralized evaluation of
//!    the same query over the unfragmented tree;
//! 4. the parallel computation cost is governed by the largest site load.

use paxml::prelude::*;
use paxml::xmark::{ft1, ft2, PAPER_QUERIES};

/// One classic (un-amortized) run of the configured algorithm over a fresh
/// server session.
fn run(
    algorithm: Algorithm,
    use_annotations: bool,
    fragmented: &FragmentedTree,
    sites: usize,
    query: &str,
) -> ExecReport {
    PaxServer::builder()
        .algorithm(algorithm)
        .annotations(use_annotations)
        .placement(Placement::RoundRobin)
        .sites(sites)
        .deploy(fragmented)
        .expect("valid configuration")
        .query_once(query)
        .expect("query evaluates")
}

#[test]
fn visit_bounds_hold_for_every_paper_query_and_topology() {
    let deployments: Vec<(&str, FragmentedTree)> =
        vec![("ft1x4", ft1(4, 1.0, 1).1), ("ft1x10", ft1(10, 1.0, 2).1), ("ft2", ft2(1.5, 3).1)];
    for (topology, fragmented) in &deployments {
        for (name, query) in PAPER_QUERIES {
            for use_annotations in [false, true] {
                let p3 = run(Algorithm::PaX3, use_annotations, fragmented, 10, query);
                assert!(
                    p3.max_visits_per_site() <= 3,
                    "PaX3 exceeded 3 visits on {name}/{topology} (XA={use_annotations})"
                );
                let p2 = run(Algorithm::PaX2, use_annotations, fragmented, 10, query);
                assert!(
                    p2.max_visits_per_site() <= 2,
                    "PaX2 exceeded 2 visits on {name}/{topology} (XA={use_annotations})"
                );
                assert_eq!(
                    p3.answer_origins(),
                    p2.answer_origins(),
                    "PaX3 and PaX2 disagree on {name}/{topology}"
                );
            }
        }
    }
}

#[test]
fn visits_do_not_depend_on_fragments_per_site() {
    // Two fragments per site instead of one: the visit count must not change
    // ("irrespectively of the number of fragments stored there").
    let (_, fragmented) = ft1(8, 1.0, 5);
    let query = PAPER_QUERIES[2].1; // Q3, with qualifiers
    let spread_report = run(Algorithm::PaX3, false, &fragmented, 8, query);
    let packed_report = run(Algorithm::PaX3, false, &fragmented, 4, query);
    assert_eq!(spread_report.max_visits_per_site(), packed_report.max_visits_per_site());
    assert_eq!(spread_report.answer_origins(), packed_report.answer_origins());
}

#[test]
fn traffic_scales_with_query_and_answer_not_with_data() {
    // Same fragment count, same query, 4x the data: PaX2's traffic must grow
    // at most with the answer size, never with the document size.
    let query = PAPER_QUERIES[0].1; // Q1 — answers grow with the data
    let (_, small) = ft1(8, 0.5, 9);
    let (_, large) = ft1(8, 2.0, 9);

    let small_report = run(Algorithm::PaX2, false, &small, 8, query);
    let large_report = run(Algorithm::PaX2, false, &large, 8, query);

    // Four times the data means roughly four times the *answers* for Q1; the
    // additional traffic must be explainable by those extra answers alone
    // (≤ ~100 bytes per answer item) plus a small constant slack — never by
    // the extra ~3 vMB of data that stayed on the sites.
    let delta_bytes = large_report.network_bytes() as f64 - small_report.network_bytes() as f64;
    let delta_answers = large_report.answers().len() as f64 - small_report.answers().len() as f64;
    assert!(delta_answers > 0.0, "Q1 answers should grow with the data");
    assert!(
        delta_bytes <= 100.0 * delta_answers + 0.25 * small_report.network_bytes() as f64,
        "traffic grew faster than the answer set: +{delta_bytes:.0} bytes for +{delta_answers} answers"
    );

    // The naive baseline, by contrast, ships the document itself.
    let naive_small = run(Algorithm::NaiveCentralized, false, &small, 8, query);
    let naive_large = run(Algorithm::NaiveCentralized, false, &large, 8, query);
    assert!(
        naive_large.network_bytes() as f64 > 2.5 * naive_small.network_bytes() as f64,
        "naive traffic should scale with the data"
    );
}

#[test]
fn total_computation_is_comparable_to_centralized() {
    let (tree, fragmented) = ft2(2.0, 13);
    for (name, query) in PAPER_QUERIES {
        let central = centralized::evaluate(&tree, query).unwrap();
        let report = run(Algorithm::PaX2, false, &fragmented, 10, query);
        // Elementary-operation counts must agree within a constant factor
        // (the distributed run redoes O(|Q|) work per fragment boundary).
        let ratio = report.total_ops() as f64 / central.ops as f64;
        assert!(
            ratio < 4.0,
            "{name}: distributed total computation is {ratio:.1}x the centralized cost"
        );
        assert_eq!(report.answers().len(), central.answers.len());
    }
}

#[test]
fn parallelism_reduces_perceived_time_on_skewed_sites() {
    // With an artificially slow site, the parallel time tracks the slowest
    // site (not the sum), demonstrating that the rounds really overlap.
    let (_, fragmented) = ft1(6, 1.2, 21);
    let query = PAPER_QUERIES[3].1;
    let server = PaxServer::builder()
        .algorithm(Algorithm::PaX2)
        .sites(6)
        .placement(Placement::RoundRobin)
        .site_delay(paxml::distsim::SiteId(3), std::time::Duration::from_millis(30))
        .deploy(&fragmented)
        .unwrap();
    let report = server.query_once(query).unwrap();
    let parallel = report.parallel_time();
    let total = report.total_computation_time();
    // The 30 ms delay dominates each of the two rounds the slow site joins,
    // but the other sites' work happens concurrently, so the perceived time
    // stays well below the summed busy time plus delays.
    assert!(parallel >= std::time::Duration::from_millis(30));
    assert!(parallel < total + std::time::Duration::from_millis(70));
}

#[test]
fn answers_are_shipped_exactly_once_and_only_answers() {
    // Every answer item is distinct and corresponds to a real answer of the
    // reference evaluation — "each site ships to the coordinator only
    // elements that are certainly in the answer".
    let (tree, fragmented) = ft2(1.0, 17);
    let query = PAPER_QUERIES[2].1;
    let reference = centralized::evaluate(&tree, query).unwrap();
    let report = run(Algorithm::PaX3, false, &fragmented, 10, query);
    assert_eq!(report.answers().len(), reference.answers.len());
    let mut origins = report.answer_origins();
    origins.dedup();
    assert_eq!(origins.len(), report.answers().len(), "duplicate answers were shipped");
    for item in report.answers() {
        assert_eq!(item.label, "creditcard");
    }
}

//! Online re-fragmentation: conformance, round-trips, planning, faults.
//!
//! The contract under test (see `paxml-rebalance` and
//! `PaxServer::refragment`): after **any** valid sequence of split, merge
//! and migrate operations, the live server answers every query exactly as
//! a *fresh* deployment of the resulting fragmentation would — same
//! answers, same visit counts — on both the in-process simulator and the
//! TCP transport; a round-trip (split then merge, migrate there and back)
//! is bit-identical to never having touched the deployment at all; the
//! cost-model planner reduces the max-site load on a skewed deployment;
//! and a site dying mid-migration publishes nothing — clean
//! `SiteUnreachable`, old topology serving throughout.

use paxml::prelude::*;
use paxml::rebalance::{apply_ops, rebalance, PlannerOptions, RefragOp};
use paxml::wire::ProcessCluster;
use paxml::xmark::{ft1, PAPER_QUERIES};
use paxml_distsim::SiteId;
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_paxml");
const WATCHDOG: Duration = Duration::from_secs(120);
const ALGORITHMS: [Algorithm; 3] = [Algorithm::PaX2, Algorithm::PaX3, Algorithm::NaiveCentralized];

/// Run `body` on its own thread and fail loudly if it neither returns nor
/// panics within the watchdog interval (transport tests only).
fn with_watchdog<F: FnOnce() + Send + 'static>(body: F) {
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        body();
        let _ = done_tx.send(());
    });
    match done_rx.recv_timeout(WATCHDOG) {
        Ok(()) => handle.join().expect("test body panicked after completing"),
        Err(_) => match handle.is_finished() {
            true => handle.join().expect("test body panicked"),
            false => panic!("test body hung for {WATCHDOG:?} — the transport wedged"),
        },
    }
}

/// The paper's workload queries (text only — the tuple is `(label, query)`).
fn queries() -> Vec<&'static str> {
    PAPER_QUERIES.iter().map(|(_, q)| *q).collect()
}

/// The conformance oracle: export the server's current fragmentation,
/// deploy it fresh on an idle simulator, and demand that every workload
/// query returns the same answers with the same visit bound and fragment
/// coverage on both.
fn assert_conforms_to_fresh_deploy(
    server: &PaxServer,
    algorithm: Algorithm,
    sites: usize,
    context: &str,
) {
    let exported = server.export_fragmentation().expect("export the live fragmentation");
    let fresh = PaxServer::builder()
        .algorithm(algorithm)
        .sites(sites)
        .deploy(&exported)
        .expect("the exported fragmentation must deploy");
    for query in queries() {
        let live = server.query_once(query).expect("live server query");
        let reference = fresh.query_once(query).expect("fresh deploy query");
        assert_eq!(
            live.answer_origins(),
            reference.answer_origins(),
            "{context}: answers diverged from a fresh deploy for {query}"
        );
        assert_eq!(
            live.answer_texts(),
            reference.answer_texts(),
            "{context}: answer texts diverged from a fresh deploy for {query}"
        );
        assert_eq!(
            live.max_visits_per_site(),
            reference.max_visits_per_site(),
            "{context}: visit bound diverged from a fresh deploy for {query}"
        );
        assert_eq!(
            live.queries[0].fragments_evaluated, reference.queries[0].fragments_evaluated,
            "{context}: fragment coverage diverged for {query}"
        );
    }
}

/// Answers + per-site visits of one fresh execution — the "bit-identical"
/// comparison for round-trips, where even the placement is unchanged.
fn assert_executions_match(a: &ExecReport, b: &ExecReport, context: &str) {
    for (qa, qb) in a.queries.iter().zip(&b.queries) {
        assert_eq!(qa.answers, qb.answers, "{context}: answers diverged for {}", qa.query);
    }
    assert_eq!(
        a.stats.sites.keys().collect::<Vec<_>>(),
        b.stats.sites.keys().collect::<Vec<_>>(),
        "{context}: different sites were visited"
    );
    for (site, sa) in &a.stats.sites {
        assert_eq!(sa.visits, b.stats.sites[site].visits, "{context}: visits diverged at {site:?}");
    }
}

/// A split point inside fragment 1 of an FT1 deployment: every XMark site
/// subtree has a `people` section, a real interior element.
fn people_cut(fragmented: &FragmentedTree) -> paxml::xml::NodeId {
    fragmented
        .fragment(FragmentId(1))
        .expect("FT1 has a fragment 1")
        .tree
        .find_first("people")
        .expect("every XMark site subtree has a people section")
}

/// A split, a migration of the new fragment, a second migration of an old
/// fragment, then a merge of an (unrelated) original fragment into the
/// root: after each step the live server must answer exactly like a fresh
/// deployment of its exported fragmentation — for all three algorithms.
#[test]
fn mixed_op_sequences_conform_to_a_fresh_deploy() {
    let sites = 3;
    let (_tree, fragmented) = ft1(5, 0.01, 42);
    for algorithm in ALGORITHMS {
        let server = PaxServer::builder()
            .algorithm(algorithm)
            .sites(sites)
            .deploy(&fragmented)
            .expect("deploy");
        let new_id = FragmentId(fragmented.fragment_tree.max_id().index() + 1);

        let steps: Vec<(&str, Vec<RefragOp>)> = vec![
            (
                "split",
                vec![RefragOp::Split {
                    fragment: FragmentId(1),
                    cut: people_cut(&fragmented),
                    place_on: SiteId(2).into(),
                }],
            ),
            (
                "migrate the split child",
                vec![RefragOp::Migrate { fragment: new_id, from: SiteId(2), to: SiteId(0) }],
            ),
            (
                "migrate an original",
                vec![RefragOp::Migrate { fragment: FragmentId(3), from: SiteId(0), to: SiteId(1) }],
            ),
            ("merge an original into the root", vec![RefragOp::Merge { child: FragmentId(4) }]),
        ];
        let mut version = 0u64;
        for (step, ops) in steps {
            let report =
                apply_ops(&server, &ops).unwrap_or_else(|e| panic!("{algorithm} {step}: {e}"));
            version += 1;
            assert_eq!(
                report.placement_version, version,
                "{algorithm} {step}: each applied sequence bumps the placement version once"
            );
            assert_conforms_to_fresh_deploy(
                &server,
                algorithm,
                sites,
                &format!("{algorithm} after {step}"),
            );
        }
        assert_eq!(server.server_stats().placement_version, version);
    }
}

/// The same op sequence on the simulator and on real TCP site processes:
/// the refragmented TCP cluster must stay bit-compatible with the
/// refragmented simulator (answers + per-site visits), and both must
/// conform to a fresh deploy of the exported fragmentation.
#[test]
fn refragmentation_over_tcp_matches_the_simulator() {
    with_watchdog(|| {
        let sites = 3;
        let (_tree, fragmented) = ft1(4, 0.01, 7);
        let sim = PaxServer::builder()
            .algorithm(Algorithm::PaX2)
            .sites(sites)
            .deploy(&fragmented)
            .expect("deploy simulator");
        let cluster = ProcessCluster::spawn(BIN, &fragmented, sites, Placement::RoundRobin)
            .expect("spawn site processes");
        let tcp = PaxServer::builder()
            .algorithm(Algorithm::PaX2)
            .deploy_over(&fragmented, cluster.transport.clone())
            .expect("deploy over processes");

        let ops = vec![
            RefragOp::Split {
                fragment: FragmentId(1),
                cut: people_cut(&fragmented),
                place_on: SiteId(2).into(),
            },
            RefragOp::Migrate { fragment: FragmentId(2), from: SiteId(2), to: SiteId(0) },
        ];
        let s = apply_ops(&sim, &ops).expect("simulator refragmentation");
        let t = apply_ops(&tcp, &ops).expect("TCP refragmentation");
        assert_eq!(s.installed_fragments, t.installed_fragments, "install counts diverged");
        assert_eq!(s.placement_version, t.placement_version, "topology versions diverged");

        for query in queries() {
            let a = sim.query_once(query).expect("simulator query");
            let b = tcp.query_once(query).expect("TCP query");
            assert_executions_match(&a, &b, &format!("post-refrag {query}"));
        }
        assert_conforms_to_fresh_deploy(&tcp, Algorithm::PaX2, sites, "TCP post-refrag");

        // The exported fragmentations agree fragment-for-fragment.
        let se = sim.export_fragmentation().expect("simulator export");
        let te = tcp.export_fragmentation().expect("TCP export");
        assert_eq!(se.fragment_count(), te.fragment_count(), "exports diverged in shape");
        assert_eq!(se.total_real_nodes(), te.total_real_nodes(), "exports diverged in size");
    });
}

/// A migration with a **dead destination**: the payload fetch succeeds,
/// the install round hits the killed process and fails — with a clean
/// `SiteUnreachable` naming the dead site, nothing published (epoch and
/// placement version unchanged), and the old topology serving reads the
/// whole time.
#[test]
fn migration_to_a_dead_site_publishes_nothing() {
    with_watchdog(|| {
        let sites = 3;
        let (_tree, fragmented) = ft1(4, 0.02, 21);
        let mut cluster = ProcessCluster::spawn(BIN, &fragmented, sites, Placement::RoundRobin)
            .expect("spawn site processes");
        let server = Arc::new(
            PaxServer::builder()
                .algorithm(Algorithm::PaX2)
                .deploy_over(&fragmented, cluster.transport.clone())
                .expect("deploy"),
        );
        let query = server.prepare(queries()[0]).expect("prepare");
        // Warm the residual-vector cache so reads keep completing with
        // zero site visits even while a site is down.
        let before = server.execute(&query).expect("warm the cache");
        assert_eq!(before.placement_version, 0);
        assert!(!before.answers().is_empty(), "workload sanity: answers exist");

        // Pick a fragment on a live site and a doomed destination.
        let victim = SiteId(2);
        let moved = *fragmented
            .fragment_tree
            .ids()
            .iter()
            .find(|&&f| server.deployment().site_of(f) != victim)
            .expect("some fragment lives off the doomed site");
        cluster.kill_site(victim);

        // Twice, to show the failed attempt poisons nothing.
        for attempt in 0..2 {
            let moved_home = server.deployment().site_of(moved);
            match apply_ops(
                &server,
                &[RefragOp::Migrate { fragment: moved, from: moved_home, to: victim }],
            ) {
                Err(PaxError::SiteUnreachable { site, .. }) => {
                    assert_eq!(site, victim, "attempt {attempt}: wrong site blamed");
                }
                Err(other) => panic!("attempt {attempt}: expected SiteUnreachable, got {other}"),
                Ok(_) => panic!("attempt {attempt}: migration to a dead site succeeded"),
            }
            let stats = server.server_stats();
            assert_eq!(stats.current_epoch, 0, "attempt {attempt}: an epoch was published");
            assert_eq!(stats.placement_version, 0, "attempt {attempt}: a topology was published");
            let read = server.execute(&query).expect("the old topology still serves");
            assert_eq!(read.placement_version, 0);
            assert_eq!(read.answer_origins(), before.answer_origins());
            assert_eq!(read.max_visits_per_site(), 0, "cached reads never touch a site");
        }

        // The load probe over a dead site degrades to empty instead of
        // failing, so observation-driven planning stays possible.
        let probe = server.deployment().transport().site_load(victim);
        assert_eq!(probe.fragments, vec![], "a dead site's load probe must come back empty");
    });
}

/// The planner evens out a deliberately skewed deployment: everything
/// starts on one site, one `rebalance` pass must migrate fragments off it,
/// cut the max-site-load and leave answers conformant.
#[test]
fn planner_reduces_max_site_load_on_a_skewed_deployment() {
    let sites = 4;
    let (_tree, fragmented) = ft1(8, 0.02, 13);
    let server = PaxServer::builder()
        .algorithm(Algorithm::PaX2)
        .sites(sites)
        .placement(Placement::SingleSite)
        .deploy(&fragmented)
        .expect("deploy everything on S0");
    let outcome = rebalance(&server, &PlannerOptions::default()).expect("rebalance pass");
    assert!(!outcome.ops.is_empty(), "a single-site deployment must yield migrations");
    assert!(
        outcome.max_site_bytes_after < outcome.max_site_bytes_before,
        "the pass did not reduce the max site load ({} -> {})",
        outcome.max_site_bytes_before,
        outcome.max_site_bytes_after
    );
    let report = outcome.report.expect("a non-empty plan publishes");
    assert_eq!(report.placement_version, 1);
    assert!(
        server.server_stats().site_loads.iter().filter(|l| l.fragment_count > 0).count() > 1,
        "fragments still all live on one site"
    );
    assert_conforms_to_fresh_deploy(&server, Algorithm::PaX2, sites, "post-rebalance");

    // A second pass over the now-balanced deployment must not thrash: the
    // max load never goes back up.
    let second = rebalance(&server, &PlannerOptions::default()).expect("second pass");
    assert!(
        second.max_site_bytes_after <= outcome.max_site_bytes_after,
        "a second pass made the balance worse"
    );
}

/// A bytes-moved budget of zero forbids every migration: the pass is a
/// no-op and publishes nothing.
#[test]
fn a_zero_budget_plans_nothing() {
    let (_tree, fragmented) = ft1(4, 0.01, 3);
    let server = PaxServer::builder()
        .algorithm(Algorithm::PaX2)
        .sites(3)
        .placement(Placement::SingleSite)
        .deploy(&fragmented)
        .expect("deploy");
    let options = PlannerOptions { bytes_moved_budget: Some(0), ..PlannerOptions::default() };
    let outcome = rebalance(&server, &options).expect("rebalance pass");
    assert!(outcome.ops.is_empty(), "a zero budget must not move anything");
    assert!(outcome.report.is_none(), "an empty plan must not publish");
    assert_eq!(server.server_stats().placement_version, 0);
}

/// Auto-vacuum across re-fragmentations: with a threshold configured,
/// ping-pong migrations must not accumulate superseded fragment copies on
/// the sites — the sweep runs as a side effect of publishing, no explicit
/// `vacuum` call anywhere.
#[test]
fn auto_vacuum_bounds_refragmentation_garbage() {
    let (_tree, fragmented) = ft1(4, 0.01, 5);
    let server = PaxServer::builder()
        .algorithm(Algorithm::PaX2)
        .sites(2)
        .auto_vacuum_threshold(2)
        .deploy(&fragmented)
        .expect("deploy");
    let site_versions = |server: &PaxServer| -> usize {
        let cluster = server.deployment().cluster().expect("simulator deployment");
        cluster
            .occupied_sites()
            .into_iter()
            .map(|site| cluster.inspect_site(site).version_count())
            .sum()
    };
    let one_fragment_everywhere = fragmented.fragments.len();

    for round in 0..6u64 {
        let to = SiteId((round as usize) % 2);
        let from = SiteId(((round as usize) + 1) % 2);
        apply_ops(&server, &[RefragOp::Migrate { fragment: FragmentId(1), from, to }])
            .expect("ping-pong migration");
    }
    let stats = server.server_stats();
    assert_eq!(stats.current_epoch, 6);
    assert_eq!(stats.live_epochs, 1, "no reader pins old epochs here");
    // The auto sweep runs while the publishing epoch is still pinned, so
    // each ping-pong site may keep one version the next sweep reclaims —
    // bounded garbage, against the 6 extra copies an unvacuumed run piles
    // up on top of the originals.
    assert!(
        site_versions(&server) <= one_fragment_everywhere + 4,
        "superseded copies piled up past the auto-vacuum threshold: {} versions for {} fragments",
        site_versions(&server),
        one_fragment_everywhere
    );
    // An explicit sweep still exists and finishes the job.
    server.vacuum().expect("explicit vacuum");
    assert_eq!(site_versions(&server), one_fragment_everywhere);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Split∘Merge round-trips to a no-op: splitting a random FT1 fragment
    /// at its `people` section and merging the new child straight back
    /// yields a deployment bit-identical in answers and per-site visits to
    /// a pristine server that never refragmented — all three algorithms,
    /// random XMark documents.
    #[test]
    fn split_then_merge_round_trips_bit_identically(
        seed in 0u64..1000,
        fragment_count in 3usize..6,
        victim_offset in 0usize..3,
    ) {
        let sites = 3;
        let (_tree, fragmented) = ft1(fragment_count, 0.01, seed);
        let victim = FragmentId(1 + victim_offset % (fragment_count - 1).max(1));
        let cut = fragmented
            .fragment(victim)
            .expect("victim is a real fragment")
            .tree
            .find_first("people")
            .expect("every XMark site subtree has a people section");
        let new_id = FragmentId(fragmented.fragment_tree.max_id().index() + 1);
        for algorithm in ALGORITHMS {
            let pristine = PaxServer::builder()
                .algorithm(algorithm)
                .sites(sites)
                .deploy(&fragmented)
                .expect("deploy pristine");
            let server = PaxServer::builder()
                .algorithm(algorithm)
                .sites(sites)
                .deploy(&fragmented)
                .expect("deploy");
            apply_ops(&server, &[
                RefragOp::Split { fragment: victim, cut, place_on: SiteId(0).into() },
                RefragOp::Merge { child: new_id },
            ]).expect("split then merge");
            prop_assert_eq!(server.server_stats().placement_version, 1);
            for query in queries() {
                let a = server.query_once(query).expect("round-tripped server");
                let b = pristine.query_once(query).expect("pristine server");
                assert_executions_match(&a, &b, &format!("{algorithm} split∘merge {query}"));
            }
        }
    }

    /// Migrate there-and-back round-trips to a no-op the same way.
    #[test]
    fn migrate_there_and_back_round_trips_bit_identically(
        seed in 0u64..1000,
        fragment_count in 3usize..6,
    ) {
        let sites = 3;
        let (_tree, fragmented) = ft1(fragment_count, 0.01, seed);
        for algorithm in ALGORITHMS {
            let pristine = PaxServer::builder()
                .algorithm(algorithm)
                .sites(sites)
                .deploy(&fragmented)
                .expect("deploy pristine");
            let server = PaxServer::builder()
                .algorithm(algorithm)
                .sites(sites)
                .deploy(&fragmented)
                .expect("deploy");
            let home = server.deployment().site_of(FragmentId(1));
            let away = SiteId((home.index() + 1) % sites);
            apply_ops(
                &server,
                &[RefragOp::Migrate { fragment: FragmentId(1), from: home, to: away }],
            )
            .expect("migrate away");
            apply_ops(
                &server,
                &[RefragOp::Migrate { fragment: FragmentId(1), from: away, to: home }],
            )
            .expect("migrate home");
            prop_assert_eq!(server.server_stats().placement_version, 2);
            for query in queries() {
                let a = server.query_once(query).expect("round-tripped server");
                let b = pristine.query_once(query).expect("pristine server");
                assert_executions_match(&a, &b, &format!("{algorithm} there-and-back {query}"));
            }
        }
    }
}

//! Process-level wire tests: sites are real OS processes running
//! `paxml site`, spawned from the compiled binary itself.
//!
//! Two properties are pinned here. First, the full cross-transport
//! conformance oracle on an XMark-style document: answers, visit counts
//! and byte counts over the socket transport are bit-identical to the
//! in-process simulator for all three algorithms, across single queries,
//! batches and update streams. Second, fault tolerance in the failure
//! model the paper assumes away: killing a site process produces a clean
//! `PaxError::SiteUnreachable` — no hang, no poisoned later rounds, and
//! sites that stayed up keep answering what they can.
//!
//! Every test body runs under a watchdog so a transport hang fails the
//! test instead of wedging the suite.

use paxml::core::{RetryPolicy, TcpOptions};
use paxml::prelude::*;
use paxml::wire::msg::{self, WireReply, WireRequest};
use paxml::wire::{ProcessCluster, SiteServer, TcpCluster};
use paxml_distsim::{ClusterStats, Placement, SiteId};
use paxml_xmark::{clientele_fragmentation, ft1, UpdateWorkload, PAPER_QUERIES};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_paxml");
const WATCHDOG: Duration = Duration::from_secs(120);

/// Run `body` on its own thread and fail loudly if it neither returns nor
/// panics within the watchdog interval — the shape a lost shutdown or an
/// unnoticed dead socket would take.
fn with_watchdog<F: FnOnce() + Send + 'static>(body: F) {
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        body();
        let _ = done_tx.send(());
    });
    match done_rx.recv_timeout(WATCHDOG) {
        Ok(()) => handle.join().expect("test body panicked after completing"),
        Err(_) => match handle.is_finished() {
            // The body panicked: propagate the original failure.
            true => handle.join().expect("test body panicked"),
            false => panic!("test body hung for {WATCHDOG:?} — the transport wedged"),
        },
    }
}

fn assert_stats_match(sim: &ClusterStats, tcp: &ClusterStats, context: &str) {
    assert_eq!(sim.rounds, tcp.rounds, "{context}: rounds diverged");
    assert_eq!(sim.messages, tcp.messages, "{context}: messages diverged");
    assert_eq!(sim.total_ops, tcp.total_ops, "{context}: total_ops diverged");
    assert_eq!(sim.parallel_ops, tcp.parallel_ops, "{context}: parallel_ops diverged");
    assert_eq!(
        sim.sites.keys().collect::<Vec<_>>(),
        tcp.sites.keys().collect::<Vec<_>>(),
        "{context}: different sites were visited"
    );
    for (site, s) in &sim.sites {
        let t = &tcp.sites[site];
        assert_eq!(s.visits, t.visits, "{context}: visits diverged at {site:?}");
        assert_eq!(s.ops, t.ops, "{context}: ops diverged at {site:?}");
        assert_eq!(s.bytes_received, t.bytes_received, "{context}: req bytes at {site:?}");
        assert_eq!(s.bytes_sent, t.bytes_sent, "{context}: resp bytes at {site:?}");
    }
}

fn assert_reports_match(sim: &ExecReport, tcp: &ExecReport, context: &str) {
    assert_eq!(sim.queries.len(), tcp.queries.len(), "{context}: query count");
    for (qs, qt) in sim.queries.iter().zip(&tcp.queries) {
        assert_eq!(qs.answers, qt.answers, "{context}: answers diverged for {}", qs.query);
        assert_eq!(
            qs.fragments_evaluated, qt.fragments_evaluated,
            "{context}: fragments_evaluated diverged for {}",
            qs.query
        );
    }
    assert_stats_match(&sim.stats, &tcp.stats, context);
}

#[test]
fn xmark_workload_matches_simulator_across_processes() {
    with_watchdog(|| {
        // A small XMark-style tree: 6 fragments, ~a thousand nodes.
        let (tree, fragmented) = ft1(6, 0.01, 42);
        let sites = 3;
        for algorithm in [Algorithm::NaiveCentralized, Algorithm::PaX2, Algorithm::PaX3] {
            let sim = PaxServer::builder()
                .algorithm(algorithm)
                .sites(sites)
                .placement(Placement::RoundRobin)
                .deploy(&fragmented)
                .expect("deploy simulator");
            let cluster = ProcessCluster::spawn(BIN, &fragmented, sites, Placement::RoundRobin)
                .expect("spawn site processes");
            let tcp = PaxServer::builder()
                .algorithm(algorithm)
                .deploy_over(&fragmented, cluster.transport.clone())
                .expect("deploy over processes");

            // Single queries from the paper's workload.
            // The tuple is `(label, query)` — run the queries, not the labels.
            let queries: Vec<&str> = PAPER_QUERIES.iter().map(|(_, q)| *q).collect();
            for query in &queries {
                let context = format!("{algorithm} {query}");
                let s = sim.query_once(query).expect("simulator query");
                let t = tcp.query_once(query).expect("TCP query");
                assert_reports_match(&s, &t, &context);
            }
            // One batch over the whole workload.
            let s = sim.execute_batch_text(&queries).expect("simulator batch");
            let t = tcp.execute_batch_text(&queries).expect("TCP batch");
            assert_reports_match(&s, &t, &format!("{algorithm} batch"));
            // Update rounds, then a re-execution over the updated document.
            let mut sim_load = UpdateWorkload::new(&fragmented, tree.all_nodes().count(), 9);
            let mut tcp_load = UpdateWorkload::new(&fragmented, tree.all_nodes().count(), 9);
            for round in 0..2 {
                let s = sim.apply_updates(&sim_load.next_batch(5, 2)).expect("simulator update");
                let t = tcp.apply_updates(&tcp_load.next_batch(5, 2)).expect("TCP update");
                assert_reports_match(&s, &t, &format!("{algorithm} update {round}"));
            }
            let s = sim.execute_text(queries[0]).expect("simulator re-exec");
            let t = tcp.execute_text(queries[0]).expect("TCP re-exec");
            assert_reports_match(&s, &t, &format!("{algorithm} post-update"));

            assert_stats_match(
                &sim.cumulative_stats(),
                &tcp.cumulative_stats(),
                &format!("{algorithm} cumulative"),
            );
        }
    });
}

/// A site process dies *mid-epoch-build*: the in-flight update must fail
/// with a clean `SiteUnreachable`, publish nothing — the current epoch is
/// unchanged — and readers pinned to the old epoch keep finishing from the
/// coordinator's cache the whole time, zero visits, answers intact.
#[test]
fn update_fails_mid_build_while_old_epoch_readers_finish_cleanly() {
    with_watchdog(|| {
        let (tree, fragmented) = clientele_fragmentation();
        let mut cluster = ProcessCluster::spawn(BIN, &fragmented, 3, Placement::RoundRobin)
            .expect("spawn site processes");
        let server = Arc::new(
            PaxServer::builder()
                .algorithm(Algorithm::PaX2)
                .deploy_over(&fragmented, cluster.transport.clone())
                .expect("deploy"),
        );
        let query = server
            .prepare("client[country/text()='US']/broker[market/name/text()='NASDAQ']/name")
            .expect("prepare");
        // Warm the residual-vector cache: from here on this query re-executes
        // coordinator-side with zero site visits, dead site or not.
        let before = server.execute(&query).expect("warm the cache");
        assert_eq!(before.epoch, 0);
        assert!(!before.answer_texts().is_empty(), "workload sanity: answers exist");
        assert_eq!(server.execute(&query).expect("cached").max_visits_per_site(), 0);

        // Build an update batch, then kill one of the sites it must visit.
        let batch = UpdateWorkload::new(&fragmented, tree.all_nodes().count(), 11).next_batch(5, 3);
        let doomed = server.deployment().site_of(batch[0].0);
        cluster.kill_site(doomed);

        // Readers on the old epoch run *through* the failing update.
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader = std::thread::spawn({
            let server = Arc::clone(&server);
            let query = query.clone();
            let expected = before.answer_texts();
            let done = Arc::clone(&done);
            move || {
                let mut observed = 0usize;
                while !done.load(std::sync::atomic::Ordering::Relaxed) {
                    let report = server.execute(&query).expect("old-epoch read must not fail");
                    assert_eq!(report.epoch, 0, "a failed update must not publish an epoch");
                    assert_eq!(report.answer_texts(), expected);
                    observed += 1;
                }
                observed
            }
        });

        // The epoch build reaches the dead site and fails fast — twice, to
        // show the failure does not poison later update attempts either.
        for attempt in 0..2 {
            match server.apply_updates(&batch) {
                Err(PaxError::SiteUnreachable { site, .. }) => {
                    assert_eq!(site, doomed, "attempt {attempt}: wrong site blamed");
                }
                Err(other) => panic!("attempt {attempt}: expected SiteUnreachable, got {other}"),
                Ok(_) => panic!("attempt {attempt}: update succeeded over a dead site"),
            }
        }
        done.store(true, std::sync::atomic::Ordering::Relaxed);
        assert!(reader.join().unwrap() > 0, "the reader never got to execute");

        // Nothing was published: epoch 0 is still current and still serves.
        assert_eq!(server.server_stats().current_epoch, 0);
        let after = server.execute(&query).expect("the old epoch still serves");
        assert_eq!(after.epoch, 0);
        assert_eq!(after.answer_texts(), before.answer_texts());
        assert_eq!(after.max_visits_per_site(), 0, "cached reads never touch the dead site");
    });
}

/// A site that *accepts* connections and answers the handshake but never
/// replies to a round — the nastiest failure shape, because the socket
/// looks healthy until a read blocks on it forever.
fn spawn_hung_site() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind the hung site");
    let addr = listener.local_addr().expect("local addr");
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { return };
            std::thread::spawn(move || loop {
                let Ok(request) = msg::recv::<WireRequest>(&mut stream) else { return };
                let reply = match request {
                    WireRequest::Hello { site } => WireReply::Hello { site },
                    WireRequest::Load { fragments } => {
                        WireReply::Loaded { fragments: fragments.len() }
                    }
                    // Swallow everything else — rounds, probes, shutdowns —
                    // without ever writing a byte back.
                    _ => continue,
                };
                if msg::send(&mut stream, &reply).is_err() {
                    return;
                }
            });
        }
    });
    addr
}

/// A hung site must trip the configured read deadline (not the 30 s
/// default, and never a hang), surface as a *transient* unreachable error
/// naming the peer and the in-flight operation — and with a second replica
/// per fragment, failover must then answer bit-identically to a fault-free
/// deployment.
#[test]
fn a_hung_site_trips_the_deadline_and_fails_over() {
    with_watchdog(|| {
        let (_tree, fragmented) = clientele_fragmentation();
        let query = "client[country/text()='US']/broker[market/name/text()='NASDAQ']/name";

        // The fault-free reference: same fragments, same replication, on
        // the in-process simulator.
        let reference = PaxServer::builder()
            .algorithm(Algorithm::PaX2)
            .sites(3)
            .placement(Placement::RoundRobin)
            .replication(2)
            .deploy(&fragmented)
            .expect("deploy the reference");
        let expected =
            reference.query_once(query).expect("reference answers").queries[0].answers.clone();
        assert!(!expected.is_empty(), "workload sanity: answers exist");

        // Site 0 hangs; sites 1 and 2 are real in-process site servers.
        // Under round-robin ×2 replication every fragment with its primary
        // on the hung site keeps a live copy on S1.
        let hung_addr = spawn_hung_site();
        let mut addrs = vec![hung_addr];
        for _ in 0..2 {
            let site = SiteServer::bind("127.0.0.1:0").expect("bind a site");
            addrs.push(site.local_addr().expect("site addr"));
            std::thread::spawn(move || {
                let _ = site.run();
            });
        }
        let transport = Arc::new(
            TcpCluster::connect_replicated(&fragmented, &addrs, Placement::RoundRobin, 2)
                .expect("connect (the hung site still answers the handshake)"),
        );
        let options =
            TcpOptions { read_timeout: Duration::from_millis(300), ..TcpOptions::default() };

        // One attempt, no failover: the deadline itself is under test.
        let strict = PaxServer::builder()
            .algorithm(Algorithm::PaX2)
            .tcp_options(options.clone())
            .retry_policy(RetryPolicy { max_attempts: 1, ..RetryPolicy::default() })
            .deploy_over(&fragmented, transport.clone())
            .expect("deploy the single-attempt server");
        let started = Instant::now();
        let err = strict.query_once(query).expect_err("a hung site must fail the round");
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(10),
            "the 300 ms deadline should have fired, not hung for {elapsed:?}"
        );
        assert!(err.is_transient(), "a tripped read deadline is transient weather: {err}");
        match &err {
            PaxError::SiteUnreachable { site, detail } => {
                assert_eq!(*site, SiteId(0), "the hung site takes the blame");
                assert!(
                    detail.contains(&hung_addr.to_string()),
                    "the error names the peer: {detail}"
                );
                assert!(
                    detail.contains("reply") || detail.contains("sending"),
                    "the error names the in-flight operation: {detail}"
                );
            }
            other => panic!("expected SiteUnreachable, got {other}"),
        }

        // Same transport, failover enabled: the retry quarantines the hung
        // site, re-routes every fragment to its surviving replica, and the
        // answers match the fault-free reference bit for bit.
        let server = PaxServer::builder()
            .algorithm(Algorithm::PaX2)
            .tcp_options(options)
            .deploy_over(&fragmented, transport)
            .expect("deploy the failover server");
        let report = server.query_once(query).expect("failover must answer");
        assert_eq!(
            report.queries[0].answers, expected,
            "failover answers must be bit-identical to the fault-free run"
        );
    });
}

#[test]
fn killed_site_reports_unreachable_without_hanging() {
    with_watchdog(|| {
        let (_tree, fragmented) = clientele_fragmentation();
        let mut cluster = ProcessCluster::spawn(BIN, &fragmented, 3, Placement::RoundRobin)
            .expect("spawn site processes");
        let transport = cluster.transport.clone();
        let server = PaxServer::builder()
            .algorithm(Algorithm::PaX3)
            .deploy_over(&fragmented, transport)
            .expect("deploy");
        let query = "//broker[//stock/code/text()='GOOG']/name";

        // Healthy first: the cluster answers.
        let before = server.query_once(query).expect("query before the fault");
        assert!(!before.queries[0].answers.is_empty(), "workload sanity: answers exist");

        // Kill one site's process outright.
        cluster.kill_site(SiteId(1));

        // Every subsequent round that addresses the dead site must fail
        // fast with SiteUnreachable — and keep failing cleanly, round
        // after round, rather than hanging or corrupting the transport.
        for attempt in 0..3 {
            match server.query_once(query) {
                Err(PaxError::SiteUnreachable { site, .. }) => {
                    assert_eq!(site, SiteId(1), "attempt {attempt}: wrong site blamed");
                }
                Err(other) => panic!("attempt {attempt}: expected SiteUnreachable, got {other}"),
                Ok(_) => panic!("attempt {attempt}: query succeeded over a dead site"),
            }
        }

        // Reconnecting over only the surviving processes still works: the
        // fault took down one site, not the cluster. Fragments reroute to
        // the two sites that stayed up.
        let all_addrs: Vec<_> = cluster.addresses().collect();
        let survivor_addrs = [all_addrs[0], all_addrs[2]];
        let survivors: std::collections::BTreeMap<FragmentId, SiteId> = fragmented
            .fragment_tree
            .ids()
            .iter()
            .map(|&id| (id, if id.index() == 0 { SiteId(0) } else { SiteId(1) }))
            .collect();
        let rerouted = Arc::new(
            paxml::wire::TcpCluster::connect_with_assignment(
                &fragmented,
                &survivor_addrs,
                survivors,
            )
            .expect("reconnect to survivors"),
        );
        let rerouted_server = PaxServer::builder()
            .algorithm(Algorithm::PaX3)
            .deploy_over(&fragmented, rerouted)
            .expect("deploy over survivors");
        let after = rerouted_server.query_once(query).expect("survivors still answer");
        assert_eq!(
            before.queries[0].answers, after.queries[0].answers,
            "the surviving sites must produce the same answers"
        );
    });
}

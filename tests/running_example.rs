//! Integration test walking through the paper's running example exactly as
//! the narrative does — through the `PaxServer` session API: the Fig. 1
//! clientele, the Fig. 2 fragmentation and placement, the queries of §1,
//! §2.2, Example 2.1 and Example 5.1.

use paxml::prelude::*;
use paxml::xmark::{clientele_document, clientele_fragmentation};
use paxml_distsim::SiteId;
use std::collections::BTreeMap;

/// The Fig. 2 placement: F0→S0, F1→S1, the two NASDAQ fragments→S2, Lisa→S3.
fn fig2_assignment() -> BTreeMap<FragmentId, SiteId> {
    let mut assignment = BTreeMap::new();
    assignment.insert(FragmentId(0), SiteId(0));
    assignment.insert(FragmentId(1), SiteId(1));
    assignment.insert(FragmentId(2), SiteId(2));
    assignment.insert(FragmentId(3), SiteId(2));
    assignment.insert(FragmentId(4), SiteId(3));
    assignment
}

/// A server over the Fig. 2 deployment.
fn fig2_server(fragmented: &FragmentedTree, algorithm: Algorithm, annotations: bool) -> PaxServer {
    PaxServer::builder()
        .algorithm(algorithm)
        .annotations(annotations)
        .sites(4)
        .assignment(fig2_assignment())
        .deploy(fragmented)
        .expect("valid configuration")
}

#[test]
fn introduction_boolean_query_is_true() {
    // Q = [//stock/code/text() = "GOOG"]: true iff some client trades GOOG.
    let (_, fragmented) = clientele_fragmentation();
    let server = fig2_server(&fragmented, Algorithm::PaX2, false);
    let goog = server.prepare(".[//stock/code/text()='GOOG']").unwrap();
    let report = server.execute(&goog).unwrap();
    // The Boolean query is encoded as "select the root iff the qualifier
    // holds"; a non-empty answer means `true`.
    assert_eq!(report.answers().len(), 1);
    assert_eq!(report.answers()[0].label, "clientele");

    // ... and a stock nobody trades yields `false` (empty answer) — same
    // session, no reset needed.
    let msft = server.prepare(".[//stock/code/text()='MSFT']").unwrap();
    assert!(server.execute(&msft).unwrap().answers().is_empty());
}

#[test]
fn introduction_data_selecting_query() {
    // Q' = //broker[//stock/code/text() = "GOOG"]/name — all three brokers
    // trade GOOG in Fig. 1.
    let (_, fragmented) = clientele_fragmentation();
    for annotations in [false, true] {
        let server = fig2_server(&fragmented, Algorithm::PaX3, annotations);
        let report = server.query_once("//broker[//stock/code/text()='GOOG']/name").unwrap();
        let mut texts = report.answer_texts();
        texts.sort();
        assert_eq!(texts, vec!["Bache", "CIBC", "E*trade"]);
        assert!(report.max_visits_per_site() <= 3);
    }
}

#[test]
fn section_2_query_q1_goog_but_not_yhoo() {
    let (_, fragmented) = clientele_fragmentation();
    let server = fig2_server(&fragmented, Algorithm::PaX2, false);
    let report = server
        .query_once("//broker[//stock/code/text()='GOOG' and not(//stock/code/text()='YHOO')]/name")
        .unwrap();
    let mut texts = report.answer_texts();
    texts.sort();
    // E*trade also trades YHOO, so only Bache and CIBC qualify.
    assert_eq!(texts, vec!["Bache", "CIBC"]);
    assert!(report.max_visits_per_site() <= 2);
}

#[test]
fn example_2_1_nasdaq_brokers_of_us_clients() {
    let (tree, fragmented) = clientele_fragmentation();
    let query = "client[country/text()='US']/broker[market/name/text()='NASDAQ']/name";
    let reference = centralized::evaluate(&tree, query).unwrap();
    assert_eq!(reference.answers.len(), 2);

    for annotations in [false, true] {
        for algorithm in [Algorithm::PaX3, Algorithm::PaX2] {
            let server = fig2_server(&fragmented, algorithm, annotations);
            let report = server.query_once(query).unwrap();
            let mut texts = report.answer_texts();
            texts.sort();
            assert_eq!(texts, vec!["Bache", "E*trade"]);
        }
    }
}

#[test]
fn example_5_1_annotation_pruning_keeps_two_fragments() {
    // client/name over the annotated fragment tree: only the root fragment
    // and Lisa's client fragment can contain answers.
    let (_, fragmented) = clientele_fragmentation();
    let server = fig2_server(&fragmented, Algorithm::PaX2, true);
    let report = server.query_once("client/name").unwrap();
    assert_eq!(report.queries[0].fragments_evaluated, 2);
    assert_eq!(report.fragments_total, 5);
    let mut texts = report.answer_texts();
    texts.sort();
    assert_eq!(texts, vec!["Anna", "Kim", "Lisa"]);
    // Qualifier-free + exact ancestor summaries: a single visit suffices.
    assert_eq!(report.max_visits_per_site(), 1);
}

#[test]
fn every_example_query_matches_the_centralized_reference_under_all_algorithms() {
    let tree = clientele_document();
    let (_, fragmented) = clientele_fragmentation();
    for (query, _) in paxml::xmark::CLIENTELE_QUERY_EXAMPLES {
        let reference = centralized::evaluate(&tree, query).unwrap();
        for annotations in [false, true] {
            for algorithm in [Algorithm::PaX3, Algorithm::PaX2] {
                let server = fig2_server(&fragmented, algorithm, annotations);
                let report = server.query_once(query).unwrap();
                assert_eq!(
                    report.answers().len(),
                    reference.answers.len(),
                    "{algorithm} mismatch on {query}"
                );
            }
        }
        let server = fig2_server(&fragmented, Algorithm::NaiveCentralized, false);
        let nv = server.query_once(query).unwrap();
        assert_eq!(nv.answers().len(), reference.answers.len(), "Naive mismatch on {query}");
    }
}

//! Integration test walking through the paper's running example exactly as
//! the narrative does: the Fig. 1 clientele, the Fig. 2 fragmentation and
//! placement, the queries of §1, §2.2, Example 2.1 and Example 5.1.

use paxml::prelude::*;
use paxml::xmark::{clientele_document, clientele_fragmentation};
use paxml_distsim::SiteId;
use std::collections::BTreeMap;

/// The Fig. 2 placement: F0→S0, F1→S1, the two NASDAQ fragments→S2, Lisa→S3.
fn fig2_deployment(fragmented: &FragmentedTree) -> Deployment {
    let mut assignment = BTreeMap::new();
    assignment.insert(FragmentId(0), SiteId(0));
    assignment.insert(FragmentId(1), SiteId(1));
    assignment.insert(FragmentId(2), SiteId(2));
    assignment.insert(FragmentId(3), SiteId(2));
    assignment.insert(FragmentId(4), SiteId(3));
    Deployment::with_assignment(fragmented, 4, assignment)
}

#[test]
fn introduction_boolean_query_is_true() {
    // Q = [//stock/code/text() = "GOOG"]: true iff some client trades GOOG.
    let (_, fragmented) = clientele_fragmentation();
    let mut deployment = fig2_deployment(&fragmented);
    let report =
        pax2::evaluate(&mut deployment, ".[//stock/code/text()='GOOG']", &EvalOptions::default())
            .unwrap();
    // The Boolean query is encoded as "select the root iff the qualifier
    // holds"; a non-empty answer means `true`.
    assert_eq!(report.answers.len(), 1);
    assert_eq!(report.answers[0].label, "clientele");

    // ... and a stock nobody trades yields `false` (empty answer).
    let mut deployment = fig2_deployment(&fragmented);
    let report =
        pax2::evaluate(&mut deployment, ".[//stock/code/text()='MSFT']", &EvalOptions::default())
            .unwrap();
    assert!(report.answers.is_empty());
}

#[test]
fn introduction_data_selecting_query() {
    // Q' = //broker[//stock/code/text() = "GOOG"]/name — all three brokers
    // trade GOOG in Fig. 1.
    let (_, fragmented) = clientele_fragmentation();
    for options in [EvalOptions::without_annotations(), EvalOptions::with_annotations()] {
        let mut deployment = fig2_deployment(&fragmented);
        let report =
            pax3::evaluate(&mut deployment, "//broker[//stock/code/text()='GOOG']/name", &options)
                .unwrap();
        let mut texts = report.answer_texts();
        texts.sort();
        assert_eq!(texts, vec!["Bache", "CIBC", "E*trade"]);
        assert!(report.max_visits_per_site() <= 3);
    }
}

#[test]
fn section_2_query_q1_goog_but_not_yhoo() {
    let (_, fragmented) = clientele_fragmentation();
    let mut deployment = fig2_deployment(&fragmented);
    let report = pax2::evaluate(
        &mut deployment,
        "//broker[//stock/code/text()='GOOG' and not(//stock/code/text()='YHOO')]/name",
        &EvalOptions::default(),
    )
    .unwrap();
    let mut texts = report.answer_texts();
    texts.sort();
    // E*trade also trades YHOO, so only Bache and CIBC qualify.
    assert_eq!(texts, vec!["Bache", "CIBC"]);
    assert!(report.max_visits_per_site() <= 2);
}

#[test]
fn example_2_1_nasdaq_brokers_of_us_clients() {
    let (tree, fragmented) = clientele_fragmentation();
    let query = "client[country/text()='US']/broker[market/name/text()='NASDAQ']/name";
    let reference = centralized::evaluate(&tree, query).unwrap();
    assert_eq!(reference.answers.len(), 2);

    for use_annotations in [false, true] {
        let mut deployment = fig2_deployment(&fragmented);
        let report =
            pax3::evaluate(&mut deployment, query, &EvalOptions { use_annotations }).unwrap();
        let mut texts = report.answer_texts();
        texts.sort();
        assert_eq!(texts, vec!["Bache", "E*trade"]);

        let mut deployment = fig2_deployment(&fragmented);
        let report =
            pax2::evaluate(&mut deployment, query, &EvalOptions { use_annotations }).unwrap();
        let mut texts = report.answer_texts();
        texts.sort();
        assert_eq!(texts, vec!["Bache", "E*trade"]);
    }
}

#[test]
fn example_5_1_annotation_pruning_keeps_two_fragments() {
    // client/name over the annotated fragment tree: only the root fragment
    // and Lisa's client fragment can contain answers.
    let (_, fragmented) = clientele_fragmentation();
    let mut deployment = fig2_deployment(&fragmented);
    let report =
        pax2::evaluate(&mut deployment, "client/name", &EvalOptions::with_annotations()).unwrap();
    assert_eq!(report.fragments_evaluated, 2);
    assert_eq!(report.fragments_total, 5);
    let mut texts = report.answer_texts();
    texts.sort();
    assert_eq!(texts, vec!["Anna", "Kim", "Lisa"]);
    // Qualifier-free + exact ancestor summaries: a single visit suffices.
    assert_eq!(report.max_visits_per_site(), 1);
}

#[test]
fn every_example_query_matches_the_centralized_reference_under_both_algorithms() {
    let tree = clientele_document();
    let (_, fragmented) = clientele_fragmentation();
    for (query, _) in paxml::xmark::CLIENTELE_QUERY_EXAMPLES {
        let reference = centralized::evaluate(&tree, query).unwrap();
        for use_annotations in [false, true] {
            let options = EvalOptions { use_annotations };
            let mut deployment = fig2_deployment(&fragmented);
            let p3 = pax3::evaluate(&mut deployment, query, &options).unwrap();
            assert_eq!(p3.answers.len(), reference.answers.len(), "PaX3 mismatch on {query}");
            let mut deployment = fig2_deployment(&fragmented);
            let p2 = pax2::evaluate(&mut deployment, query, &options).unwrap();
            assert_eq!(p2.answers.len(), reference.answers.len(), "PaX2 mismatch on {query}");
        }
        let mut deployment = fig2_deployment(&fragmented);
        let nv = naive::evaluate(&mut deployment, query).unwrap();
        assert_eq!(nv.answers.len(), reference.answers.len(), "Naive mismatch on {query}");
    }
}

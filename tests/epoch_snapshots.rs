//! Epoch-versioned snapshot guarantees, proven three ways.
//!
//! The server's concurrency model (see `paxml-core::server`) promises that
//! updates and reads never wait on each other: every execution pins one
//! immutable deployment **epoch** on entry, an update builds the next epoch
//! concurrently and publishes it with a single pointer swap, and dead
//! epochs retire once their last pinned execution drops. This suite pins
//! each leg of that promise:
//!
//! * **linearized snapshots** — under random interleavings of executions,
//!   batches and update streams across threads, every answer is
//!   bit-identical to a sequential replay of the exact epoch the report
//!   says it pinned — never a torn pre/post mix (property test);
//! * **wait-freedom** — a reader completes executions *while* a
//!   deliberately slowed update is in flight, instead of queueing behind
//!   it (regression test against the old writer-exclusive gate);
//! * **no epoch leaks** — after a hundred epochs of churn with overlapping
//!   readers, the live-epoch count, per-site fragment version counts and
//!   coordinator cache bytes all return to steady state.

use paxml::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// The document the generation-flip workload runs over: three brokers,
/// fragmented at the `broker` boundary so one update batch spans several
/// fragments on several sites.
fn clientele() -> XmlTree {
    parse_xml(
        "<clientele>\
           <client><country>US</country><broker><name>Etrade</name></broker></client>\
           <client><country>US</country><broker><name>Bache</name></broker></client>\
           <client><country>Canada</country><broker><name>CIBC</name></broker></client>\
         </clientele>",
    )
    .unwrap()
}

/// Text edits renaming every broker to `broker-{suffix}` — one op per
/// broker fragment, so a torn read shows up as a mixed-suffix answer set.
fn rename_ops(fragmented: &FragmentedTree, suffix: &str) -> Vec<(FragmentId, UpdateOp)> {
    let mut ops = Vec::new();
    for fragment in &fragmented.fragments {
        if fragment.root_label != "broker" {
            continue;
        }
        let name = fragment.tree.find_first("name").unwrap();
        let text = fragment.tree.children(name).next().unwrap();
        ops.push((
            fragment.id,
            UpdateOp::EditText { node: text, text: format!("broker-{suffix}") },
        ));
    }
    ops
}

/// Answers of `query` over `fragmented` on an idle, sequential server —
/// the reference every pinned-epoch read must match bit-for-bit.
fn sequential_replay(fragmented: &FragmentedTree, query: &str) -> Vec<String> {
    PaxServer::builder()
        .algorithm(Algorithm::PaX2)
        .sites(3)
        .sequential(true)
        .deploy(fragmented)
        .unwrap()
        .query_once(query)
        .unwrap()
        .answer_texts()
}

const EPOCH_QUERIES: [&str; 2] = ["//broker/name", "client[country/text()='US']/broker/name"];

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Random interleavings of prepared executions, batches and update
    /// streams across threads: every report's answers equal a sequential
    /// replay of the epoch it pinned. Expected answers for every epoch are
    /// precomputed against a mirror before any concurrency starts, so each
    /// read is checked against the one legal snapshot for its epoch — a
    /// pre/post mix within one execution can never pass.
    #[test]
    fn answers_match_a_sequential_replay_of_the_pinned_epoch(
        generations in 2u64..6,
        reader_count in 2usize..5,
        use_batches in any::<bool>(),
    ) {
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker"]).unwrap();

        // expected[e][q] = the answers of EPOCH_QUERIES[q] at epoch e;
        // ops[g - 1] is the batch that takes epoch g - 1 to epoch g.
        let mut mirror = fragmented.clone();
        let mut expected: Vec<Vec<Vec<String>>> = Vec::new();
        let mut ops: Vec<Vec<(FragmentId, UpdateOp)>> = Vec::new();
        expected.push(EPOCH_QUERIES.iter().map(|q| sequential_replay(&mirror, q)).collect());
        for generation in 1..=generations {
            let batch = rename_ops(&mirror, &format!("g{generation}"));
            for (fragment, op) in &batch {
                paxml_fragment::apply_update(&mut mirror.fragments[fragment.index()], op)
                    .unwrap();
            }
            ops.push(batch);
            expected.push(EPOCH_QUERIES.iter().map(|q| sequential_replay(&mirror, q)).collect());
        }

        let server = Arc::new(
            PaxServer::builder()
                .algorithm(Algorithm::PaX2)
                .sites(3)
                .deploy(&fragmented)
                .unwrap(),
        );
        let prepared: Vec<PreparedQuery> =
            EPOCH_QUERIES.iter().map(|q| server.prepare(q).unwrap()).collect();

        let done = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..reader_count)
            .map(|reader| {
                let server = Arc::clone(&server);
                let prepared = prepared.clone();
                let expected = expected.clone();
                let done = Arc::clone(&done);
                thread::spawn(move || {
                    let mut observed = 0usize;
                    while !done.load(Ordering::Relaxed) {
                        if use_batches && (reader + observed).is_multiple_of(3) {
                            let report = server.execute_batch(&prepared).unwrap();
                            let epoch = report.epoch as usize;
                            for (q, outcome) in report.queries.iter().enumerate() {
                                let texts: Vec<String> = outcome
                                    .answers
                                    .iter()
                                    .filter_map(|a| a.text.clone())
                                    .collect();
                                assert_eq!(
                                    texts, expected[epoch][q],
                                    "batch read of {:?} diverged from the sequential \
                                     replay of its pinned epoch {epoch}",
                                    EPOCH_QUERIES[q]
                                );
                            }
                        } else {
                            let q = (reader + observed) % prepared.len();
                            let report = server.execute(&prepared[q]).unwrap();
                            let epoch = report.epoch as usize;
                            assert_eq!(
                                report.answer_texts(),
                                expected[epoch][q],
                                "read of {:?} diverged from the sequential replay of \
                                 its pinned epoch {epoch}",
                                EPOCH_QUERIES[q]
                            );
                        }
                        observed += 1;
                    }
                    observed
                })
            })
            .collect();

        // The writer publishes one epoch per generation, concurrently with
        // every reader above.
        for (generation, batch) in ops.iter().enumerate() {
            let update = server.apply_updates(batch).unwrap();
            prop_assert_eq!(update.epoch, generation as u64 + 1, "update must publish epoch");
        }
        done.store(true, Ordering::Relaxed);
        for reader in readers {
            let observed = reader.join().unwrap();
            prop_assert!(observed > 0, "a reader never got to execute");
        }
        prop_assert_eq!(server.server_stats().current_epoch, generations);
    }
}

/// The wait-freedom regression: with a test-only hook holding the update
/// in flight for half a second *after* it has visited the dirty sites but
/// *before* it publishes, a reader must keep completing executions — each
/// pinned to the old epoch — instead of queueing behind the writer the way
/// the old writer-exclusive gate forced it to.
#[test]
fn reader_completes_executions_while_a_slowed_update_is_in_flight() {
    let tree = clientele();
    let fragmented = strategy::cut_at_labels(&tree, &["broker"]).unwrap();
    let server = Arc::new(
        PaxServer::builder().algorithm(Algorithm::PaX2).sites(3).deploy(&fragmented).unwrap(),
    );
    let query = server.prepare("//broker/name").unwrap();
    let before = server.execute(&query).unwrap();
    assert_eq!(before.epoch, 0);

    let in_build = Arc::new(AtomicBool::new(false));
    server.set_update_hook({
        let in_build = Arc::clone(&in_build);
        move || {
            in_build.store(true, Ordering::SeqCst);
            thread::sleep(Duration::from_millis(500));
        }
    });

    let update_done = Arc::new(AtomicBool::new(false));
    let writer = thread::spawn({
        let server = Arc::clone(&server);
        let update_done = Arc::clone(&update_done);
        let ops = rename_ops(&fragmented, "next");
        move || {
            let report = server.apply_updates(&ops).unwrap();
            update_done.store(true, Ordering::SeqCst);
            report
        }
    });

    // Wait (bounded) for the writer to reach the slow window.
    let entered = Instant::now();
    while !in_build.load(Ordering::SeqCst) {
        assert!(entered.elapsed() < Duration::from_secs(30), "the update never started");
        thread::yield_now();
    }

    // The update is now provably in flight; a wait-free reader completes
    // executions against its pinned epoch. Under the old gate, the first
    // execute here would block until the writer finished and this counter
    // would still be zero when `update_done` flips.
    let mut completed_in_flight = 0usize;
    while !update_done.load(Ordering::SeqCst) {
        let report = server.execute(&query).unwrap();
        match report.epoch {
            0 => {
                assert_eq!(report.answer_texts(), before.answer_texts());
                completed_in_flight += 1;
            }
            // The swap happened between the flag check and the pin; from
            // here on reads legitimately see the new epoch.
            1 => assert_eq!(report.answer_texts(), vec!["broker-next".to_string(); 3]),
            other => panic!("impossible epoch {other}"),
        }
    }
    assert!(
        completed_in_flight > 0,
        "no execution completed while the update was in flight: readers blocked on the writer"
    );

    let update = writer.join().unwrap();
    assert_eq!(update.epoch, 1, "the slowed update must still publish its epoch");
    server.clear_update_hook();

    let after = server.execute(&query).unwrap();
    assert_eq!(after.epoch, 1);
    assert_eq!(after.answer_texts(), vec!["broker-next".to_string(); 3]);
}

/// A hundred epochs of churn with overlapping readers must not leak: once
/// the readers drain and a vacuum sweeps the sites, exactly one epoch is
/// live, every site is back to one version per fragment, and the
/// coordinator's cached-vector bytes match the single-epoch baseline.
#[test]
fn epoch_churn_retires_back_to_steady_state() {
    let tree = clientele();
    let fragmented = strategy::cut_at_labels(&tree, &["broker"]).unwrap();
    let server = Arc::new(
        PaxServer::builder().algorithm(Algorithm::PaX2).sites(3).deploy(&fragmented).unwrap(),
    );
    let query = server.prepare("//broker/name").unwrap();
    server.execute(&query).unwrap();

    let site_versions = |server: &PaxServer| -> usize {
        let cluster = server.deployment().cluster().expect("simulator deployment");
        cluster
            .occupied_sites()
            .into_iter()
            .map(|site| cluster.inspect_site(site).version_count())
            .sum()
    };

    // Baseline: one update applied and swept, cache warm. Suffixes are
    // fixed-width so the cached answer *content* keeps a constant byte
    // size — any growth in `session_cache_bytes` is then a real leak, not
    // longer broker names.
    let mut mirror = fragmented.clone();
    let warmup = rename_ops(&mirror, "g001");
    for (fragment, op) in &warmup {
        paxml_fragment::apply_update(&mut mirror.fragments[fragment.index()], op).unwrap();
    }
    server.apply_updates(&warmup).unwrap();
    server.execute(&query).unwrap();
    server.vacuum().unwrap();
    let baseline = server.server_stats();
    let baseline_versions = site_versions(&server);
    assert_eq!(baseline.live_epochs, 1, "baseline: only the current epoch is live");
    assert!(baseline.session_cache_bytes > 0, "baseline: the prepared query is cached");
    assert_eq!(
        baseline_versions,
        fragmented.fragments.len(),
        "baseline: one live version per fragment"
    );

    // Churn: 100 more epochs while readers overlap every publish.
    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let server = Arc::clone(&server);
            let query = query.clone();
            let done = Arc::clone(&done);
            thread::spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    let report = server.execute(&query).unwrap();
                    let suffixes: BTreeSet<String> = report
                        .answer_texts()
                        .iter()
                        .map(|t| t.trim_start_matches("broker-").to_string())
                        .collect();
                    assert_eq!(suffixes.len(), 1, "torn read during churn");
                }
            })
        })
        .collect();
    for generation in 2..=101u32 {
        let batch = rename_ops(&mirror, &format!("g{generation:03}"));
        for (fragment, op) in &batch {
            paxml_fragment::apply_update(&mut mirror.fragments[fragment.index()], op).unwrap();
        }
        server.apply_updates(&batch).unwrap();
    }
    done.store(true, Ordering::Relaxed);
    for reader in readers {
        reader.join().unwrap();
    }

    // Drain: with no pinned readers left, one sweep returns every meter to
    // the baseline.
    server.execute(&query).unwrap();
    server.vacuum().unwrap();
    let stats = server.server_stats();
    assert_eq!(stats.current_epoch, 101);
    assert_eq!(stats.live_epochs, 1, "retired epochs must not stay live: epochs leaked");
    assert_eq!(stats.retired_epochs, 101);
    assert_eq!(
        stats.session_cache_bytes, baseline.session_cache_bytes,
        "cached-vector bytes grew across epoch churn"
    );
    assert_eq!(
        site_versions(&server),
        baseline_versions,
        "superseded fragment versions survived the vacuum"
    );
}

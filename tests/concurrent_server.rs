//! Concurrent-serving conformance: many client threads over one
//! `Arc<PaxServer>`, with fragment updates interleaved.
//!
//! What the server promises (see the `paxml-core::server` module docs):
//!
//! * **bit-identical answers** — a query executed concurrently with other
//!   queries returns exactly what it returns on an otherwise idle server;
//! * **no torn reads** — an execution interleaved with `apply_updates`
//!   observes either the pre-update or the post-update answers as a whole,
//!   never a mix of the two (an execution pins one deployment epoch on
//!   entry and reads it for its entire protocol);
//! * **race-free meters** — every `ExecReport` carries exactly its own
//!   execution's counters, and two `cumulative_stats()` snapshots
//!   bracketing a set of concurrent executions delta to precisely the sum
//!   of those executions' recorders.
//!
//! These are loom-free stress tests: they rely on real threads hammering
//! the real worker pool (the servers here are deliberately *not*
//! `sequential`), with enough iterations that an unsynchronized
//! read-during-update or crossed response channel fails deterministically
//! in practice.

use paxml::prelude::*;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// The two-client document the torn-read test flips between two states.
fn clientele() -> XmlTree {
    parse_xml(
        "<clientele>\
           <client><country>US</country><broker><name>Etrade</name></broker></client>\
           <client><country>US</country><broker><name>Bache</name></broker></client>\
           <client><country>Canada</country><broker><name>CIBC</name></broker></client>\
         </clientele>",
    )
    .unwrap()
}

/// The text-edit ops that move every broker fragment to `suffix` (one op
/// per broker fragment — a multi-fragment, multi-site update batch, so a
/// torn read would be observable as a mixed-suffix answer set).
fn rename_ops(fragmented: &FragmentedTree, suffix: &str) -> Vec<(FragmentId, UpdateOp)> {
    let mut ops = Vec::new();
    for fragment in &fragmented.fragments {
        if fragment.root_label != "broker" {
            continue;
        }
        let name = fragment.tree.find_first("name").unwrap();
        let text = fragment.tree.children(name).next().unwrap();
        ops.push((
            fragment.id,
            UpdateOp::EditText { node: text, text: format!("broker-{suffix}") },
        ));
    }
    ops
}

/// Readers hammer `//broker/name` while a writer flips *every* broker name
/// between generations. Every observed answer set must be one whole
/// generation — `{broker-gK} × 3` — never a mix of two: an execution reads
/// the one epoch it pinned on entry, so it sees pre-update or post-update
/// fragments, not both.
#[test]
fn interleaved_updates_never_produce_torn_reads() {
    let tree = clientele();
    let fragmented = strategy::cut_at_labels(&tree, &["broker"]).unwrap();
    let server = Arc::new(
        PaxServer::builder().algorithm(Algorithm::PaX2).sites(3).deploy(&fragmented).unwrap(),
    );
    let query = server.prepare("//broker/name").unwrap();
    // Generation 0, applied through the server so the test controls every
    // name the readers can legally observe.
    server.apply_updates(&rename_ops(&fragmented, "g0")).unwrap();

    let generations = 30;
    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let server = Arc::clone(&server);
            let query = query.clone();
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let mut observed = 0usize;
                while !done.load(Ordering::Relaxed) {
                    let texts = server.execute(&query).unwrap().answer_texts();
                    assert_eq!(texts.len(), 3, "an answer went missing mid-update");
                    let suffixes: BTreeSet<&str> =
                        texts.iter().map(|t| t.as_str().trim_start_matches("broker-")).collect();
                    assert_eq!(
                        suffixes.len(),
                        1,
                        "torn read: one execution saw brokers of two generations: {texts:?}"
                    );
                    observed += 1;
                }
                observed
            })
        })
        .collect();

    // The writer: after each generation, the server's answer must be
    // bit-identical to a from-scratch sequential replay over a mirror of
    // the updated fragments.
    let mut mirror = fragmented.clone();
    for generation in 1..=generations {
        let ops = rename_ops(&mirror, &format!("g{generation}"));
        for (fragment, op) in &ops {
            paxml_fragment::apply_update(&mut mirror.fragments[fragment.index()], op).unwrap();
        }
        let update = server.apply_updates(&ops).unwrap();
        assert_eq!(update.clean_site_visits(), 0);

        let replay = PaxServer::builder()
            .algorithm(Algorithm::PaX2)
            .sites(3)
            .sequential(true)
            .deploy(&mirror)
            .unwrap();
        let expected = replay.query_once("//broker/name").unwrap();
        let observed = server.execute(&query).unwrap();
        assert_eq!(
            observed.answer_texts(),
            expected.answer_texts(),
            "post-update answers diverged from the sequential replay at generation {generation}"
        );
        assert_eq!(observed.answer_origins(), expected.answer_origins());
    }
    done.store(true, Ordering::Relaxed);
    for reader in readers {
        let observed = reader.join().unwrap();
        assert!(observed > 0, "a reader never got to execute");
    }
}

/// Every algorithm, executed from many threads at once (mixing prepared,
/// batch and one-shot paths), answers bit-identically to a sequential
/// server over the same fragmentation.
#[test]
fn concurrent_executions_are_bit_identical_to_sequential_ones() {
    let tree = clientele();
    let fragmented = strategy::cut_at_labels(&tree, &["broker"]).unwrap();
    let queries = [
        "client/broker/name",
        "client[country/text()='US']/broker/name",
        "//name",
        "client[not(country/text()='US')]/broker/name",
    ];
    for algorithm in [Algorithm::NaiveCentralized, Algorithm::PaX3, Algorithm::PaX2] {
        // The reference: one sequential server, one query at a time.
        let sequential = PaxServer::builder()
            .algorithm(algorithm)
            .sites(3)
            .sequential(true)
            .deploy(&fragmented)
            .unwrap();
        let expected: Vec<Vec<String>> =
            queries.iter().map(|q| sequential.query_once(q).unwrap().answer_texts()).collect();

        let server = Arc::new(
            PaxServer::builder().algorithm(algorithm).sites(3).deploy(&fragmented).unwrap(),
        );
        let clients: Vec<_> = (0..4)
            .map(|client| {
                let server = Arc::clone(&server);
                let expected = expected.clone();
                thread::spawn(move || {
                    for round in 0..6 {
                        for (i, query) in queries.iter().enumerate() {
                            let texts = match (client + round) % 3 {
                                0 => server.execute_text(query).unwrap().answer_texts(),
                                1 => server.query_once(query).unwrap().answer_texts(),
                                _ => {
                                    let batch = server.execute_batch_text(&queries).unwrap();
                                    batch.queries[i]
                                        .answers
                                        .iter()
                                        .filter_map(|a| a.text.clone())
                                        .collect()
                                }
                            };
                            assert_eq!(
                                texts, expected[i],
                                "{algorithm} diverged on {query} under concurrency"
                            );
                        }
                    }
                })
            })
            .collect();
        for client in clients {
            client.join().unwrap();
        }
    }
}

/// `ClusterStats::delta_since` stays accurate when the counters grow from
/// many threads at once: the delta between two cumulative snapshots equals
/// the merge of every concurrent execution's own recorder.
#[test]
fn delta_since_is_accurate_under_concurrent_executions() {
    let tree = clientele();
    let fragmented = strategy::cut_at_labels(&tree, &["broker"]).unwrap();
    for algorithm in [Algorithm::NaiveCentralized, Algorithm::PaX2] {
        let server = Arc::new(
            PaxServer::builder().algorithm(algorithm).sites(3).deploy(&fragmented).unwrap(),
        );
        let baseline = server.cumulative_stats();
        let clients: Vec<_> = (0..4)
            .map(|_| {
                let server = Arc::clone(&server);
                thread::spawn(move || {
                    let mut mine = paxml::distsim::ClusterStats::default();
                    for _ in 0..10 {
                        let report = server.query_once("client/broker/name").unwrap();
                        mine.merge(&report.stats);
                    }
                    mine
                })
            })
            .collect();
        let mut merged = paxml::distsim::ClusterStats::default();
        for client in clients {
            merged.merge(&client.join().unwrap());
        }
        let delta = server.cumulative_stats().delta_since(&baseline);
        assert_eq!(delta.rounds, merged.rounds, "{algorithm}: round counters tore");
        assert_eq!(delta.messages, merged.messages);
        assert_eq!(delta.total_ops, merged.total_ops);
        assert_eq!(delta.total_bytes(), merged.total_bytes());
        for (site, stats) in &delta.sites {
            assert_eq!(
                stats.visits, merged.sites[site].visits,
                "{algorithm}: visit counters tore at {site}"
            );
        }
    }
}

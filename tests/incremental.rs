//! Property-based tests of incremental re-evaluation through the
//! `PaxServer` session API: for random XMark update streams, a prepared
//! query maintained across `apply_updates` rounds must return
//! **bit-identical answers** to a from-scratch PaX2 evaluation over the
//! updated data, while visiting **only dirty sites** (clean-site visit
//! count asserted to be 0) and serving re-executions from the cache with
//! zero visits; its traffic must scale with the number of dirty fragments —
//! not with the data size.

use paxml::prelude::*;
use paxml_fragment::FragmentId;
use paxml_xmark::{ft1, ft2, UpdateWorkload};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Queries exercising qualifiers, `//`, and pruning over the XMark schema.
const QUERIES: &[&str] = &[
    "/sites/site/people/person",
    "/sites/site/people/person[profile/age > 20 and address/country=\"US\"]/creditcard",
    "/sites//people/person[profile/age > 20 and address/country=\"US\"]/creditcard",
    "//person[address/country=\"US\"]/name",
    "/sites/site/open_auctions//annotation",
    "//people/person/name",
];

fn pax2_server(fragmented: &FragmentedTree, sites: usize, annotations: bool) -> PaxServer {
    PaxServer::builder()
        .algorithm(Algorithm::PaX2)
        .annotations(annotations)
        .placement(Placement::RoundRobin)
        .sites(sites)
        .sequential(true)
        .deploy(fragmented)
        .expect("valid configuration")
}

/// From-scratch PaX2 over the workload's mirror of the updated fragments.
/// Returns the full `AnswerItem`s (origin, fragment, label, text) so the
/// bit-identity checks catch stale cached labels/texts, not just node ids.
fn from_scratch(
    mirror: &FragmentedTree,
    query: &str,
    annotations: bool,
    sites: usize,
) -> Vec<AnswerItem> {
    pax2_server(mirror, sites, annotations).query_once(query).unwrap().answers().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, .. ProptestConfig::default() })]

    /// The acceptance property: random update streams over FT1/FT2
    /// topologies, incremental == from-scratch, zero clean-site visits.
    #[test]
    fn incremental_matches_from_scratch_and_never_visits_clean_sites(
        seed in 0u64..1000,
        use_ft2 in prop::bool::ANY,
        query_index in 0usize..QUERIES.len(),
        use_annotations in prop::bool::ANY,
        rounds in 1usize..4,
        ops_per_batch in 1usize..6,
        max_dirty in 1usize..3,
    ) {
        let (tree, fragmented) =
            if use_ft2 { ft2(0.4, seed) } else { ft1(4, 0.4, seed) };
        let query = QUERIES[query_index];
        let sites = 4;

        let server = pax2_server(&fragmented, sites, use_annotations);
        let prepared = server.prepare(query).unwrap();
        let initial = server.execute(&prepared).unwrap();
        let mut workload = UpdateWorkload::new(&fragmented, tree.all_nodes().count(), seed ^ 0xab);

        // The initial evaluation must already agree with from-scratch PaX2.
        prop_assert_eq!(
            initial.answers(),
            &from_scratch(workload.mirror(), query, use_annotations, sites)[..],
            "initial evaluation differs on {}", query
        );

        for round in 0..rounds {
            let batch = workload.next_batch(ops_per_batch, max_dirty);
            if batch.is_empty() {
                continue;
            }
            let report = server.apply_updates(&batch).unwrap();
            let outcome = report.update.clone().expect("update reports carry an update slice");

            // Every op the mirror accepted must have been accepted site-side.
            prop_assert!(outcome.rejected.is_empty(), "rejected: {:?}", outcome.rejected);
            prop_assert_eq!(outcome.applied_ops, batch.len());

            // The visit guarantee: zero visits to clean sites, at most two
            // (in fact one) to each dirty site — the update round maintains
            // the prepared query's cache in its one visit.
            prop_assert_eq!(report.clean_site_visits(), 0);
            prop_assert!(report.max_visits_per_site() <= 2);
            let total_visits: u32 = report.visits_per_site().values().sum();
            prop_assert!(
                total_visits <= 2 * outcome.dirty_sites.len() as u32,
                "visits {} exceed 2·|dirty sites| = {}",
                total_visits, 2 * outcome.dirty_sites.len()
            );

            // Bit-identical answers vs. a from-scratch evaluation of the
            // updated data — and the re-execution costs zero visits.
            let reexec = server.execute(&prepared).unwrap();
            prop_assert!(reexec.from_cache);
            prop_assert_eq!(reexec.max_visits_per_site(), 0);
            let expected = from_scratch(workload.mirror(), query, use_annotations, sites);
            prop_assert_eq!(
                reexec.answers(), &expected[..],
                "round {}: incremental differs from from-scratch on {} (XA={}, batch {:?})",
                round, query, use_annotations,
                batch.iter().map(|(f, op)| (f.index(), op.kind())).collect::<Vec<_>>()
            );
        }
    }
}

/// Traffic scales with the number of dirty fragments, not with data size:
/// the same one-fragment edit costs (almost) the same bytes on a deployment
/// four times larger, while from-scratch re-evaluation traffic grows with
/// the fragment count.
#[test]
fn incremental_traffic_is_independent_of_data_size() {
    let query = "/sites/site/people/person[profile/age > 20 and address/country=\"US\"]/creditcard";

    let bytes_for = |fragments: usize, vmb: f64| -> (u64, u64) {
        let (tree, fragmented) = ft1(fragments, vmb, 3);
        let server = pax2_server(&fragmented, fragments, false);
        let prepared = server.prepare(query).unwrap();
        server.execute(&prepared).unwrap();
        let mut workload = UpdateWorkload::new(&fragmented, tree.all_nodes().count(), 99);
        // Average a few single-dirty-fragment batches.
        let mut incremental_bytes = 0;
        let mut rounds = 0;
        for _ in 0..4 {
            let batch = workload.next_batch(2, 1);
            if batch.is_empty() {
                continue;
            }
            let report = server.apply_updates(&batch).unwrap();
            assert_eq!(report.clean_site_visits(), 0);
            incremental_bytes += report.network_bytes();
            rounds += 1;
        }
        assert!(rounds > 0);

        // From-scratch reference traffic over the same updated data.
        let scratch = pax2_server(workload.mirror(), fragments, false).query_once(query).unwrap();
        (incremental_bytes / rounds, scratch.network_bytes())
    };

    let (small_inc, small_scratch) = bytes_for(4, 0.5);
    let (large_inc, large_scratch) = bytes_for(16, 2.0);

    // From-scratch traffic grows with the fragment count (the O(|Q|·|FT|)
    // term); incremental traffic stays within a small constant of the small
    // deployment's — it pays per dirty fragment, not per fragment.
    assert!(
        large_scratch as f64 > small_scratch as f64 * 2.0,
        "from-scratch traffic should grow with |FT|: {small_scratch} -> {large_scratch}"
    );
    assert!(
        (large_inc as f64) < small_inc as f64 * 2.0,
        "incremental traffic must not scale with data size: {small_inc} -> {large_inc}"
    );
}

/// Growing the number of dirty fragments grows incremental traffic roughly
/// proportionally — the |dirty| term is what the re-evaluation pays for.
#[test]
fn incremental_traffic_scales_with_dirty_fragment_count() {
    let query = "//people/person/name";
    let (tree, fragmented) = ft1(12, 1.5, 5);
    let nodes = tree.all_nodes().count();

    let avg_bytes = |dirty: usize| -> u64 {
        let server = pax2_server(&fragmented, 12, false);
        let prepared = server.prepare(query).unwrap();
        server.execute(&prepared).unwrap();
        let mut workload = UpdateWorkload::new(&fragmented, nodes, 41);
        let mut total = 0;
        let mut rounds = 0;
        for _ in 0..4 {
            let batch = workload.next_batch(dirty * 2, dirty);
            let dirtied: BTreeSet<FragmentId> = batch.iter().map(|(f, _)| *f).collect();
            if dirtied.len() != dirty {
                continue;
            }
            let report = server.apply_updates(&batch).unwrap();
            assert_eq!(report.update.as_ref().unwrap().dirty_fragments.len(), dirty);
            total += report.network_bytes();
            rounds += 1;
        }
        assert!(rounds > 0, "no batch dirtied exactly {dirty} fragments");
        total / rounds
    };

    let one = avg_bytes(1);
    let eight = avg_bytes(8);
    assert!(
        eight > one * 3,
        "8 dirty fragments should cost several times 1 dirty fragment: {one} -> {eight}"
    );
}

//! Public-API surface test: pins the prelude exports and the `#[deprecated]`
//! compatibility shims to their exact signatures, so a PR that accidentally
//! breaks a downstream caller fails here instead of in someone's build.
//!
//! Everything in this file is a *compile-time* assertion (function-pointer
//! coercions fail to compile on any signature drift) plus one runtime smoke
//! test proving the shims still evaluate correctly — and that they now
//! report per-execution statistics.

#![allow(deprecated)] // the whole point: the shims must keep compiling

use paxml::prelude::*;
use paxml::xpath::{CompiledQuery, XPathResult};
use paxml_fragment::FragmentResult;
use std::collections::BTreeMap;
use std::time::Duration;

/// Update-batch slices, named so the pinned fn-pointer types stay readable.
type Updates<'a> = &'a [(FragmentId, UpdateOp)];

/// The deprecated free functions, pinned.
#[test]
fn deprecated_shims_compile_against_their_pinned_signatures() {
    let _: fn(&mut Deployment, &str, &EvalOptions) -> XPathResult<EvaluationReport> =
        pax2::evaluate;
    let _: fn(&mut Deployment, &CompiledQuery, &str, &EvalOptions) -> EvaluationReport =
        pax2::evaluate_compiled;
    let _: fn(&mut Deployment, &str, &EvalOptions) -> XPathResult<EvaluationReport> =
        pax3::evaluate;
    let _: fn(&mut Deployment, &CompiledQuery, &str, &EvalOptions) -> EvaluationReport =
        pax3::evaluate_compiled;
    let _: fn(&mut Deployment, &str) -> XPathResult<EvaluationReport> = naive::evaluate;
    let _: fn(&mut Deployment, &CompiledQuery, &str) -> EvaluationReport = naive::evaluate_compiled;
    let _: fn(&mut Deployment, &[String], &EvalOptions) -> XPathResult<BatchReport> =
        batch::evaluate::<String>;
    let _: fn(&mut Deployment, &[CompiledQuery], &[String], &EvalOptions) -> BatchReport =
        batch::evaluate_compiled;
    let _: fn(Deployment, &str, &EvalOptions) -> XPathResult<IncrementalEngine> =
        IncrementalEngine::new;
    let _: fn(&mut IncrementalEngine, Updates) -> FragmentResult<IncrementalReport> =
        IncrementalEngine::apply_updates;
}

/// The `PaxServer` session API, pinned.
#[test]
fn server_api_compiles_against_its_pinned_signatures() {
    let _: fn() -> PaxServerBuilder = PaxServer::builder;
    let _: fn(PaxServerBuilder, Algorithm) -> PaxServerBuilder = PaxServerBuilder::algorithm;
    let _: fn(PaxServerBuilder, bool) -> PaxServerBuilder = PaxServerBuilder::annotations;
    let _: fn(PaxServerBuilder, Placement) -> PaxServerBuilder = PaxServerBuilder::placement;
    let _: fn(PaxServerBuilder, usize) -> PaxServerBuilder = PaxServerBuilder::sites;
    let _: fn(PaxServerBuilder, bool) -> PaxServerBuilder = PaxServerBuilder::sequential;
    let _: fn(PaxServerBuilder, Duration) -> PaxServerBuilder = PaxServerBuilder::round_latency;
    let _: fn(PaxServerBuilder, &FragmentedTree) -> PaxResult<PaxServer> = PaxServerBuilder::deploy;
    // The whole serving path takes `&self`: a `PaxServer` is shared across
    // client threads (see `tests/concurrent_server.rs`); only `prepare` and
    // `apply_updates` are internally exclusive.
    let _: fn(&PaxServer, &str) -> PaxResult<PreparedQuery> = PaxServer::prepare;
    let _: fn(&PaxServer, &PreparedQuery) -> PaxResult<ExecReport> = PaxServer::execute;
    let _: fn(&PaxServer, &[PreparedQuery]) -> PaxResult<ExecReport> = PaxServer::execute_batch;
    let _: fn(&PaxServer, Updates) -> PaxResult<ExecReport> = PaxServer::apply_updates;
    let _: fn(&PaxServer, &str) -> PaxResult<ExecReport> = PaxServer::query_once;
    let _: fn(&PaxServer, &str) -> PaxResult<ExecReport> = PaxServer::execute_text;
    let _: fn(&PaxServer) -> Algorithm = PaxServer::algorithm;

    // The concurrency contract itself, pinned at compile time.
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PaxServer>();
    assert_send_sync::<PreparedQuery>();

    // The unified report's accessor surface.
    let _: fn(&ExecReport) -> u32 = ExecReport::max_visits_per_site;
    let _: fn(&ExecReport) -> u64 = ExecReport::network_bytes;
    let _: fn(&ExecReport) -> u32 = ExecReport::rounds;
    let _: fn(&ExecReport) -> u64 = ExecReport::total_ops;
    let _: fn(&ExecReport) -> u32 = ExecReport::clean_site_visits;
    let _: fn(&ExecReport) -> Duration = ExecReport::parallel_time;
    let _: fn(&ExecReport) -> String = ExecReport::summary;
    let _: fn(&ExecReport) -> EvaluationReport = ExecReport::to_evaluation_report;
    let _: fn(&ExecReport) -> BatchReport = ExecReport::to_batch_report;

    // The consolidated error type converts from every per-crate error.
    let _: fn(paxml::xml::XmlError) -> PaxError = PaxError::from;
    let _: fn(paxml::xpath::XPathError) -> PaxError = PaxError::from;
    let _: fn(paxml::fragment::FragmentError) -> PaxError = PaxError::from;
    let _: ExecMode = ExecMode::Query;
    let _: fn(&QueryOutcome) -> usize = |q| q.answers.len();
    let _: fn(&UpdateOutcome) -> usize = |u| u.dirty_fragments.len();
}

/// The shims still work — and the stats footgun is gone even through the
/// old entry points: two consecutive executions over one `&mut Deployment`
/// report per-execution (not accumulated) meters with no `reset()` call.
#[test]
fn shims_evaluate_and_report_per_execution_stats() {
    let tree = parse_xml(
        "<clientele>\
           <client><country>US</country><broker><name>Etrade</name></broker></client>\
           <client><country>Canada</country><broker><name>CIBC</name></broker></client>\
         </clientele>",
    )
    .unwrap();
    let fragmented = strategy::cut_at_labels(&tree, &["broker"]).unwrap();
    let mut deployment = Deployment::new(&fragmented, 3, Placement::RoundRobin);

    let query = "client[country/text()='US']/broker/name";
    let first = pax2::evaluate(&mut deployment, query, &EvalOptions::default()).unwrap();
    let second = pax2::evaluate(&mut deployment, query, &EvalOptions::default()).unwrap();
    assert_eq!(first.answer_texts(), vec!["Etrade".to_string()]);
    assert_eq!(second.answer_texts(), vec!["Etrade".to_string()]);
    // The regression the API redesign fixes: these used to accumulate.
    assert!(first.max_visits_per_site() > 0);
    assert_eq!(first.max_visits_per_site(), second.max_visits_per_site());
    assert_eq!(first.network_bytes(), second.network_bytes());
    assert_eq!(first.stats.rounds, second.stats.rounds);

    // Batch and incremental shims still run too.
    let batch_report =
        batch::evaluate(&mut deployment, &[query, "client/broker/name"], &EvalOptions::default())
            .unwrap();
    assert_eq!(batch_report.len(), 2);
    assert!(batch_report.max_visits_per_site() <= 2);

    let engine = IncrementalEngine::new(
        Deployment::new(&fragmented, 3, Placement::RoundRobin),
        query,
        &EvalOptions::default(),
    )
    .unwrap();
    assert_eq!(engine.answer_texts(), vec!["Etrade".to_string()]);

    // An explicit assignment keeps working through the builder, too.
    let mut assignment = BTreeMap::new();
    assignment.insert(FragmentId(0), paxml::distsim::SiteId(0));
    let server = PaxServer::builder().sites(2).assignment(assignment).deploy(&fragmented).unwrap();
    assert_eq!(server.query_once(query).unwrap().answer_texts(), vec!["Etrade".to_string()]);
}

//! End-to-end tests of the `paxml` command-line binary: they exercise the
//! exact workflow a downstream user would script (fragment a file, query it,
//! compare algorithms) by spawning the compiled binary.

use std::path::PathBuf;
use std::process::Command;

/// Path of the compiled `paxml` binary inside the cargo target directory.
fn binary() -> PathBuf {
    // Integration tests live in target/<profile>/deps; the binary sits one
    // directory up.
    let mut path = std::env::current_exe().expect("test executable path");
    path.pop();
    if path.ends_with("deps") {
        path.pop();
    }
    path.join(format!("paxml{}", std::env::consts::EXE_SUFFIX))
}

fn demo_document() -> tempfile::NamedTempfile {
    tempfile::NamedTempfile::new(
        "<clientele>\
           <client><name>Anna</name><country>US</country>\
             <broker><name>Etrade</name>\
               <market><name>NASDAQ</name><stock><code>GOOG</code><buy>374</buy></stock></market>\
             </broker></client>\
           <client><name>Lisa</name><country>Canada</country>\
             <broker><name>CIBC</name>\
               <market><name>TSE</name><stock><code>GOOG</code><buy>382</buy></stock></market>\
             </broker></client>\
         </clientele>",
    )
}

/// A tiny self-cleaning temp file (avoids adding a dev-dependency).
mod tempfile {
    use std::io::Write;
    use std::path::{Path, PathBuf};

    pub struct NamedTempfile {
        path: PathBuf,
    }

    impl NamedTempfile {
        pub fn new(contents: &str) -> Self {
            let path = std::env::temp_dir().join(format!(
                "paxml-cli-test-{}-{}.xml",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            let mut file = std::fs::File::create(&path).expect("create temp file");
            file.write_all(contents.as_bytes()).expect("write temp file");
            NamedTempfile { path }
        }

        pub fn path(&self) -> &Path {
            &self.path
        }
    }

    impl Drop for NamedTempfile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

fn run(args: &[&str]) -> (String, String, bool) {
    let output = Command::new(binary())
        .args(args)
        .output()
        .expect("the paxml binary must exist (cargo builds bins before integration tests)");
    (
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
        output.status.success(),
    )
}

#[test]
fn help_lists_the_commands() {
    let (stdout, _, ok) = run(&["help"]);
    assert!(ok);
    for needle in ["query", "fragment", "compare", "--annotations", "--cut-label"] {
        assert!(stdout.contains(needle), "help output missing {needle}");
    }
}

#[test]
fn fragment_command_prints_the_fragment_tree() {
    let doc = demo_document();
    let (stdout, _, ok) = run(&["fragment", doc.path().to_str().unwrap(), "--cut-label", "broker"]);
    assert!(ok);
    assert!(stdout.contains("3 fragments"));
    assert!(stdout.contains("client/broker"));
    assert!(stdout.contains("F0"));
    assert!(stdout.contains("F2"));
}

#[test]
fn query_command_returns_answers_and_costs() {
    let doc = demo_document();
    let (stdout, _, ok) = run(&[
        "query",
        doc.path().to_str().unwrap(),
        "client[country/text()='US']/broker/name",
        "--cut-label",
        "broker",
        "--algorithm",
        "pax3",
        "--annotations",
    ]);
    assert!(ok, "query command failed: {stdout}");
    assert!(stdout.contains("PaX3-XA"));
    assert!(stdout.contains("Etrade"));
    assert!(stdout.contains("bytes"));
}

#[test]
fn centralized_algorithm_skips_the_simulation() {
    let doc = demo_document();
    let (stdout, _, ok) =
        run(&["query", doc.path().to_str().unwrap(), "//stock/code", "--algorithm", "centralized"]);
    assert!(ok);
    assert!(stdout.contains("2 answers"));
    assert!(stdout.contains("GOOG"));
}

#[test]
fn compare_command_checks_all_algorithms_against_the_reference() {
    let doc = demo_document();
    let (stdout, _, ok) = run(&[
        "compare",
        doc.path().to_str().unwrap(),
        "//stock[buy/val() > 380]/code",
        "--cut-label",
        "client",
        "--sites",
        "3",
    ]);
    assert!(ok, "compare failed: {stdout}");
    for needle in ["PaX3-NA", "PaX2-XA", "NaiveCentralized", "reference answers: 1"] {
        assert!(stdout.contains(needle), "compare output missing {needle}: {stdout}");
    }
    assert!(stdout.contains("all algorithms returned exactly the centralized answer set"));
}

#[test]
fn malformed_input_yields_clean_errors() {
    let doc = demo_document();
    // Unknown command.
    let (_, stderr, ok) = run(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    // Unparsable query.
    let (_, stderr, ok) = run(&["query", doc.path().to_str().unwrap(), "a[["]);
    assert!(!ok);
    assert!(stderr.contains("error"));
    // Missing file.
    let (_, stderr, ok) = run(&["query", "/nonexistent/file.xml", "a"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));
    // Unknown option.
    let (_, stderr, ok) = run(&["query", doc.path().to_str().unwrap(), "a", "--bogus-option", "x"]);
    assert!(!ok);
    assert!(stderr.contains("unknown option"));
}

//! The fault-schedule acceptance suite: replicated fragments + coordinator
//! failover must make any single-site kill invisible to clients.
//!
//! Every test runs a fixed workload — cold prepared queries, an update
//! batch, a re-fragmentation, re-executions — against a `replication = 2`
//! deployment while a deterministic [`FaultPlan`] kills one site for a
//! window of rounds. The acceptance bar is the strongest one available:
//! the *client-visible transcript* (answers, epochs, applied-op counts,
//! rejections) of every faulted run must be **bit-identical** to the
//! fault-free run, with zero client-visible errors — for every choice of
//! victim site, for windows aimed at the query, update and
//! re-fragmentation phases, on both transports (in-process simulator and
//! real site processes over TCP).
//!
//! A third test pins the replayability contract: the same seeded schedule
//! over the same workload produces the same transcript, byte for byte,
//! including any error text.

use paxml::core::{RetryPolicy, Transport};
use paxml::prelude::*;
use paxml::rebalance::{apply_ops, RefragOp};
use paxml::wire::ProcessCluster;
use paxml::xmark::{clientele_fragmentation, UpdateWorkload};
use paxml_distsim::{FaultEvent, FaultKind, FaultPlan, Placement, SiteId};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_paxml");
const WATCHDOG: Duration = Duration::from_secs(120);

const SITES: usize = 3;
const REPLICAS: usize = 2;
/// Rounds a kill window stays open: wide enough to catch the retry the
/// failover issues, narrow enough that the victim revives within the run.
const WINDOW: u64 = 6;

const QUERIES: [&str; 2] = [
    "client[country/text()='US']/broker[market/name/text()='NASDAQ']/name",
    "//broker[//stock/code/text()='GOOG']/name",
];

/// Run `body` on its own thread and fail loudly if it neither returns nor
/// panics within the watchdog interval.
fn with_watchdog<F: FnOnce() + Send + 'static>(body: F) {
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        body();
        let _ = done_tx.send(());
    });
    match done_rx.recv_timeout(WATCHDOG) {
        Ok(()) => handle.join().expect("test body panicked after completing"),
        Err(_) => match handle.is_finished() {
            true => handle.join().expect("test body panicked"),
            false => panic!("test body hung for {WATCHDOG:?} — the transport wedged"),
        },
    }
}

/// One kill window for `victim` starting at round tick `from`.
fn kill(victim: SiteId, from: u64) -> FaultPlan {
    FaultPlan::scripted(vec![FaultEvent {
        site: victim,
        from_round: from,
        to_round: from + WINDOW,
        kind: FaultKind::Kill,
    }])
}

/// The fixed workload, with every client-visible outcome appended to the
/// transcript. Any error panics: the suite's contract is **zero**
/// client-visible errors under a single-site kill. `tick` reads the
/// transport's fault clock so the caller learns where the update and
/// re-fragmentation phases start.
fn run_workload(
    server: &PaxServer,
    nodes: usize,
    tick: &dyn Fn() -> u64,
) -> (Vec<String>, u64, u64) {
    let (_tree, fragmented) = clientele_fragmentation();
    let mut log = Vec::new();
    let prepared: Vec<PreparedQuery> =
        QUERIES.iter().map(|q| server.prepare(q).expect("prepare")).collect();
    for (query, p) in QUERIES.iter().zip(&prepared) {
        let report = server.execute(p).expect("cold execution must survive the schedule");
        log.push(format!("cold {query}: {:?} @e{}", report.answer_texts(), report.epoch));
    }

    let update_tick = tick();
    let batch = UpdateWorkload::new(&fragmented, nodes, 13).next_batch(4, 2);
    let report = server.apply_updates(&batch).expect("the update must survive the schedule");
    let outcome = report.update.as_ref().expect("an update reports an outcome");
    log.push(format!(
        "update: applied {} rejected {:?} @e{}",
        outcome.applied_ops, outcome.rejected, report.epoch
    ));
    for (query, p) in QUERIES.iter().zip(&prepared) {
        let report = server.execute(p).expect("post-update execution");
        log.push(format!("updated {query}: {:?} @e{}", report.answer_texts(), report.epoch));
    }

    let refrag_tick = tick();
    // Move fragment 1's primary copy off S1 (its replicas are {S1, S2}
    // under round-robin ×2, so S0 keeps the copies apart).
    let ops = [RefragOp::Migrate { fragment: FragmentId(1), from: SiteId(1), to: SiteId(0) }];
    let report = apply_ops(server, &ops).expect("the migration must survive the schedule");
    log.push(format!("refrag: @e{} v{}", report.epoch, report.placement_version));
    for (query, p) in QUERIES.iter().zip(&prepared) {
        let report = server.execute(p).expect("post-refrag execution");
        log.push(format!("moved {query}: {:?} @e{}", report.answer_texts(), report.epoch));
    }
    (log, update_tick, refrag_tick)
}

fn sim_server() -> PaxServer {
    let (_tree, fragmented) = clientele_fragmentation();
    PaxServer::builder()
        .algorithm(Algorithm::PaX2)
        .sites(SITES)
        .placement(Placement::RoundRobin)
        .replication(REPLICAS)
        .deploy(&fragmented)
        .expect("deploy the replicated simulator")
}

/// Fault-free reference transcript plus the ticks where the update and
/// re-fragmentation phases start. An *empty* plan is installed so the
/// round clock advances exactly as it will in the faulted runs.
fn sim_reference(nodes: usize) -> (Vec<String>, u64, u64) {
    let server = sim_server();
    server.deployment().transport().set_fault_plan(Some(FaultPlan::scripted(Vec::new())));
    let tick =
        || server.deployment().transport().as_cluster().expect("simulator").current_fault_tick();
    run_workload(&server, nodes, &tick)
}

#[test]
fn any_single_site_kill_is_invisible_on_the_simulator() {
    with_watchdog(|| {
        let (tree, _fragmented) = clientele_fragmentation();
        let nodes = tree.all_nodes().count();
        let (reference, update_tick, refrag_tick) = sim_reference(nodes);
        assert!(!reference.is_empty(), "workload sanity: the transcript has entries");

        for victim in 0..SITES {
            for (phase, from) in [("queries", 0), ("update", update_tick), ("refrag", refrag_tick)]
            {
                let server = sim_server();
                server.deployment().transport().set_fault_plan(Some(kill(SiteId(victim), from)));
                let (transcript, _, _) = run_workload(&server, nodes, &|| 0);
                assert_eq!(
                    transcript, reference,
                    "killing S{victim} during the {phase} phase changed the client transcript"
                );
            }
        }
    });
}

#[test]
fn any_single_site_kill_is_invisible_over_tcp() {
    with_watchdog(|| {
        let (tree, fragmented) = clientele_fragmentation();
        let nodes = tree.all_nodes().count();
        // The simulator is the conformance oracle: its fault-free
        // transcript is what every TCP run — faulted or not — must equal.
        let (reference, update_tick, refrag_tick) = sim_reference(nodes);

        // A kill case: (victim site, window start tick, phase label);
        // `None` is the fault-free conformance run.
        type KillCase = Option<(usize, u64, &'static str)>;
        let mut runs: Vec<(KillCase, Vec<String>)> = Vec::new();
        let mut cases: Vec<KillCase> = vec![None];
        for victim in 0..SITES {
            cases.push(Some((victim, update_tick, "update")));
        }
        // Round out phase coverage without spawning 3×3 process clusters:
        // every site gets its turn as victim, and every phase gets a kill.
        cases.push(Some((0, 0, "queries")));
        cases.push(Some((1, refrag_tick, "refrag")));
        for case in cases {
            let cluster = ProcessCluster::spawn_replicated(
                BIN,
                &fragmented,
                SITES,
                Placement::RoundRobin,
                REPLICAS,
            )
            .expect("spawn replicated site processes");
            let plan = match case {
                Some((victim, from, _)) => kill(SiteId(victim), from),
                None => FaultPlan::scripted(Vec::new()),
            };
            cluster.transport.set_fault_plan(Some(plan));
            let server = PaxServer::builder()
                .algorithm(Algorithm::PaX2)
                .deploy_over(&fragmented, cluster.transport.clone())
                .expect("deploy over processes");
            let (transcript, _, _) = run_workload(&server, nodes, &|| 0);
            runs.push((case, transcript));
            drop(server);
        }
        for (case, transcript) in runs {
            match case {
                None => assert_eq!(
                    transcript, reference,
                    "the fault-free TCP transcript must equal the simulator's"
                ),
                Some((victim, _, phase)) => assert_eq!(
                    transcript, reference,
                    "killing S{victim} during the {phase} phase over TCP changed the transcript"
                ),
            }
        }
    });
}

/// The replayability contract: a seeded schedule over a fixed workload is
/// deterministic down to the error text. Probing is disabled (one-hour
/// cooldown) so readmission timing — the one wall-clock-dependent knob —
/// cannot make two replays diverge.
#[test]
fn a_seeded_fault_schedule_replays_bit_identically() {
    with_watchdog(|| {
        let (tree, _fragmented) = clientele_fragmentation();
        let nodes = tree.all_nodes().count();
        let plan = FaultPlan::random_kills(0xC0FFEE, SITES, 40, 4, 3);
        assert!(!plan.events().is_empty(), "the seed must schedule something");
        assert_eq!(
            plan,
            FaultPlan::random_kills(0xC0FFEE, SITES, 40, 4, 3),
            "the same seed must build the same schedule"
        );

        let transcript = |plan: &FaultPlan| -> Vec<String> {
            let (_tree, fragmented) = clientele_fragmentation();
            let server = PaxServer::builder()
                .algorithm(Algorithm::PaX2)
                .sites(SITES)
                .placement(Placement::RoundRobin)
                .replication(REPLICAS)
                .retry_policy(RetryPolicy {
                    probe_cooldown: Duration::from_secs(3600),
                    ..RetryPolicy::default()
                })
                .deploy(&fragmented)
                .expect("deploy");
            server.deployment().transport().set_fault_plan(Some(plan.clone()));
            let prepared: Vec<PreparedQuery> =
                QUERIES.iter().map(|q| server.prepare(q).expect("prepare")).collect();
            let mut workload = UpdateWorkload::new(&fragmented, nodes, 29);
            let mut log = Vec::new();
            // Random kill windows may overlap two sites at once, leaving
            // some fragment with no live replica — errors are then
            // *expected*, and the contract is that they replay verbatim.
            for round in 0..4 {
                for p in &prepared {
                    log.push(match server.execute(p) {
                        Ok(report) => {
                            format!("{:?} @e{}", report.answer_texts(), report.epoch)
                        }
                        Err(err) => format!("error: {err}"),
                    });
                }
                log.push(match server.apply_updates(&workload.next_batch(3, 2)) {
                    Ok(report) => format!("update {round} @e{}", report.epoch),
                    Err(err) => format!("update {round} error: {err}"),
                });
            }
            log
        };

        let first = transcript(&plan);
        let second = transcript(&plan);
        assert_eq!(first, second, "one seed, one transcript");
    });
}

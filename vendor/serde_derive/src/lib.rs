//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes the paxml workspace uses — structs (named, tuple, unit) and enums
//! (unit, tuple and struct variants), with ordinary generic parameters —
//! using only the compiler-provided `proc_macro` API (no syn/quote, so no
//! network dependency). Code generation goes through strings, which keeps
//! the parser small; the input grammar is the tiny subset of Rust items this
//! workspace actually derives on.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    /// Verbatim generic parameter list, without the angle brackets (may be
    /// empty), e.g. `V: Ord, const N: usize`.
    generics_decl: String,
    /// Parameter names only, for the `for Name<...>` position.
    generic_args: Vec<String>,
    /// Names of the *type* parameters (the ones that need bounds).
    type_params: Vec<String>,
    /// Verbatim `where` predicates, without the `where` keyword.
    where_preds: String,
    body: Body,
}

#[derive(Debug)]
enum Body {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Split a token slice on top-level commas, treating `<`/`>` puncts as
/// nesting (groups already nest via the token tree).
fn split_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for token in tokens {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    out.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(token.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Skip attributes (`#[...]`, including expanded doc comments) and a
/// visibility qualifier at the start of a token slice; return the index of
/// the first remaining token.
fn skip_attrs_and_vis(tokens: &[TokenTree]) -> usize {
    let mut i = 0;
    loop {
        match (tokens.get(i), tokens.get(i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            (Some(TokenTree::Ident(ident)), next) if ident.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = next {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

fn first_ident(tokens: &[TokenTree]) -> Option<String> {
    tokens.iter().find_map(|t| match t {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    })
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    tokens.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(" ")
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    split_commas(&tokens)
        .iter()
        .filter(|chunk| !chunk.is_empty())
        .filter_map(|chunk| {
            let start = skip_attrs_and_vis(chunk);
            first_ident(&chunk[start..])
        })
        .collect()
}

fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    split_commas(&tokens).iter().filter(|chunk| !chunk.is_empty()).count()
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    split_commas(&tokens)
        .iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let start = skip_attrs_and_vis(chunk);
            let name = match &chunk[start] {
                TokenTree::Ident(i) => i.to_string(),
                other => panic!("expected enum variant name, found {other}"),
            };
            let shape = match chunk.get(start + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantShape::Tuple(count_tuple_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantShape::Named(parse_named_fields(g))
                }
                _ => VariantShape::Unit,
            };
            Variant { name, shape }
        })
        .collect()
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens);

    let is_enum = match &tokens[i] {
        TokenTree::Ident(ident) if ident.to_string() == "struct" => false,
        TokenTree::Ident(ident) if ident.to_string() == "enum" => true,
        other => panic!("derive expects a struct or enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(ident) => ident.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;

    // Generic parameter list.
    let mut generics: Vec<TokenTree> = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            i += 1;
            let mut depth = 1i32;
            while depth > 0 {
                match &tokens[i] {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                generics.push(tokens[i].clone());
                i += 1;
            }
        }
    }

    let mut generic_args = Vec::new();
    let mut type_params = Vec::new();
    for param in split_commas(&generics) {
        if param.is_empty() {
            continue;
        }
        match &param[0] {
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                if let Some(TokenTree::Ident(ident)) = param.get(1) {
                    generic_args.push(format!("'{ident}"));
                }
            }
            TokenTree::Ident(ident) if ident.to_string() == "const" => {
                if let Some(TokenTree::Ident(name)) = param.get(1) {
                    generic_args.push(name.to_string());
                }
            }
            TokenTree::Ident(ident) => {
                generic_args.push(ident.to_string());
                type_params.push(ident.to_string());
            }
            other => panic!("unsupported generic parameter starting with {other}"),
        }
    }

    // Optional where clause (between generics and the body), then the body.
    let mut where_tokens: Vec<TokenTree> = Vec::new();
    let mut body = None;
    let mut saw_where = false;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(ident) if ident.to_string() == "where" => {
                saw_where = true;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                body = Some(if is_enum {
                    Body::Enum(parse_variants(g))
                } else {
                    Body::Named(parse_named_fields(g))
                });
                break;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis && !saw_where => {
                body = Some(Body::Tuple(count_tuple_fields(g)));
                break;
            }
            TokenTree::Punct(p) if p.as_char() == ';' => {
                if body.is_none() {
                    body = Some(Body::Unit);
                }
                break;
            }
            other => {
                if saw_where {
                    where_tokens.push(other.clone());
                }
            }
        }
        i += 1;
    }
    // A tuple struct may be followed by a where clause and `;` — the loop
    // above already stopped at the parenthesis group, which is correct for
    // serialization purposes (the where clause is carried separately only
    // for braced bodies; tuple structs in this workspace do not use one).

    Input {
        name,
        generics_decl: tokens_to_string(&generics),
        generic_args,
        type_params,
        where_preds: tokens_to_string(&where_tokens),
        body: body.expect("could not find the struct/enum body"),
    }
}

impl Input {
    fn impl_header(
        &self,
        trait_for: &str,
        bound: Option<&str>,
        extra_param: Option<&str>,
    ) -> String {
        let mut decl_parts = Vec::new();
        if let Some(extra) = extra_param {
            decl_parts.push(extra.to_string());
        }
        if !self.generics_decl.is_empty() {
            decl_parts.push(self.generics_decl.clone());
        }
        let decl = if decl_parts.is_empty() {
            String::new()
        } else {
            format!("<{}>", decl_parts.join(", "))
        };
        let args = if self.generic_args.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generic_args.join(", "))
        };
        let mut preds: Vec<String> = Vec::new();
        if let Some(bound) = bound {
            for param in &self.type_params {
                preds.push(format!("{param}: {bound}"));
            }
        }
        if !self.where_preds.is_empty() {
            preds.push(self.where_preds.clone());
        }
        let where_clause =
            if preds.is_empty() { String::new() } else { format!(" where {}", preds.join(", ")) };
        format!("impl{decl} {trait_for} for {}{args}{where_clause}", self.name)
    }
}

/// Derive `serde::Serialize` structurally.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let body = match &input.body {
        Body::Unit => format!("serializer.serialize_unit_struct(\"{name}\")"),
        Body::Tuple(1) => {
            format!("serializer.serialize_newtype_struct(\"{name}\", &self.0)")
        }
        Body::Tuple(n) => {
            let mut code = format!(
                "{{ use ::serde::ser::SerializeTupleStruct as _; \
                 let mut st = serializer.serialize_tuple_struct(\"{name}\", {n})?; "
            );
            for i in 0..*n {
                code.push_str(&format!("st.serialize_field(&self.{i})?; "));
            }
            code.push_str("st.end() }");
            code
        }
        Body::Named(fields) => {
            let mut code = format!(
                "{{ use ::serde::ser::SerializeStruct as _; \
                 let mut st = serializer.serialize_struct(\"{name}\", {})?; ",
                fields.len()
            );
            for field in fields {
                code.push_str(&format!("st.serialize_field(\"{field}\", &self.{field})?; "));
            }
            code.push_str("st.end() }");
            code
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (index, variant) in variants.iter().enumerate() {
                let vname = &variant.name;
                match &variant.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => serializer.serialize_unit_variant(\"{name}\", {index}u32, \"{vname}\"),\n"
                    )),
                    VariantShape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(f0) => serializer.serialize_newtype_variant(\"{name}\", {index}u32, \"{vname}\", f0),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let mut arm = format!(
                            "{name}::{vname}({}) => {{ use ::serde::ser::SerializeTupleVariant as _; \
                             let mut st = serializer.serialize_tuple_variant(\"{name}\", {index}u32, \"{vname}\", {n})?; ",
                            binders.join(", ")
                        );
                        for b in &binders {
                            arm.push_str(&format!("st.serialize_field({b})?; "));
                        }
                        arm.push_str("st.end() },\n");
                        arms.push_str(&arm);
                    }
                    VariantShape::Named(fields) => {
                        let mut arm = format!(
                            "{name}::{vname} {{ {} }} => {{ use ::serde::ser::SerializeStructVariant as _; \
                             let mut st = serializer.serialize_struct_variant(\"{name}\", {index}u32, \"{vname}\", {})?; ",
                            fields.join(", "),
                            fields.len()
                        );
                        for field in fields {
                            arm.push_str(&format!("st.serialize_field(\"{field}\", {field})?; "));
                        }
                        arm.push_str("st.end() },\n");
                        arms.push_str(&arm);
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let header =
        input.impl_header("::serde::ser::Serialize", Some("::serde::ser::Serialize"), None);
    let code = format!(
        "#[automatically_derived]\n{header} {{\n\
         fn serialize<__S: ::serde::ser::Serializer>(&self, serializer: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
    );
    code.parse().expect("derived Serialize impl parses")
}

/// Derive `serde::de::Deserialize` structurally: fields decode in
/// declaration order, enum variants dispatch on the variant index — the
/// exact mirror of what [`derive_serialize`] emits, so any value
/// round-trips through a format whose reader and writer agree on the
/// primitive layout.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let name = &input.name;
    let field = "::serde::de::Deserialize::deserialize(deserializer)?";
    let named_body = |fields: &[String]| -> String {
        let inits: Vec<String> = fields.iter().map(|f| format!("{f}: {field}")).collect();
        format!("{{ {} }}", inits.join(", "))
    };
    let tuple_body = |n: usize| -> String {
        let inits: Vec<String> = (0..n).map(|_| field.to_string()).collect();
        format!("({})", inits.join(", "))
    };
    let body = match &input.body {
        Body::Unit => format!("::core::result::Result::Ok({name})"),
        Body::Tuple(n) => {
            format!("::core::result::Result::Ok({name}{})", tuple_body(*n))
        }
        Body::Named(fields) => {
            format!("::core::result::Result::Ok({name}{})", named_body(fields))
        }
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (index, variant) in variants.iter().enumerate() {
                let vname = &variant.name;
                let value = match &variant.shape {
                    VariantShape::Unit => format!("{name}::{vname}"),
                    VariantShape::Tuple(n) => format!("{name}::{vname}{}", tuple_body(*n)),
                    VariantShape::Named(fields) => {
                        format!("{name}::{vname}{}", named_body(fields))
                    }
                };
                arms.push_str(&format!("{index}u32 => ::core::result::Result::Ok({value}),\n"));
            }
            format!(
                "match deserializer.read_variant_tag()? {{\n{arms}\
                 other => ::core::result::Result::Err(\
                 <__D::Error as ::serde::de::Error>::custom(\
                 format!(\"invalid variant index {{other}} for enum {name}\"))),\n}}"
            )
        }
    };
    let header = input.impl_header(
        "::serde::de::Deserialize<'de>",
        Some("::serde::de::Deserialize<'de>"),
        Some("'de"),
    );
    let code = format!(
        "#[automatically_derived]\n{header} {{\n\
         fn deserialize<__D: ::serde::de::Deserializer<'de>>(deserializer: &mut __D) \
         -> ::core::result::Result<Self, __D::Error> {{\n{body}\n}}\n}}\n"
    );
    code.parse().expect("derived Deserialize impl parses")
}

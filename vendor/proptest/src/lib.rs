//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest the paxml workspace's property tests
//! use: composable [`Strategy`] values (ranges, `Just`, tuples, unions,
//! `prop::collection::vec`, `prop::sample::select`, simple `"[a-z]{1,5}"`
//! string patterns, `prop_map`, `prop_recursive`), the [`proptest!`] runner
//! macro with `ProptestConfig { cases, .. }`, and the `prop_assert*` macros.
//!
//! Differences from crates.io proptest: generation is driven by a fixed
//! per-test deterministic seed (reproducible runs, no persistence files) and
//! there is **no shrinking** — on failure the offending inputs are printed
//! in full instead.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// The deterministic RNG driving generation (SplitMix64).
pub struct TestRng(u64);

impl TestRng {
    /// Seed from a test name (stable across runs and platforms).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        TestRng(h ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating random values of one type.
pub trait Strategy: Clone {
    /// The generated type.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U + Clone>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `self` generates the leaves, `branch`
    /// wraps an inner strategy into composite values, up to `depth` levels.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _branch_size: u32,
        branch: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive { leaf: self.boxed(), branch: Rc::new(move |inner| branch(inner).boxed()), depth }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait StrategyDyn<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> StrategyDyn<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn StrategyDyn<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U + Clone> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    leaf: BoxedStrategy<T>,
    branch: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Recursive { leaf: self.leaf.clone(), branch: Rc::clone(&self.branch), depth: self.depth }
    }
}

impl<T: Debug + 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        if self.depth == 0 || rng.below(4) == 0 {
            self.leaf.generate(rng)
        } else {
            let sub = Recursive {
                leaf: self.leaf.clone(),
                branch: Rc::clone(&self.branch),
                depth: self.depth - 1,
            }
            .boxed();
            (self.branch)(sub).generate(rng)
        }
    }
}

/// Always generates a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64;
                    (start as i128 + rng.below(span.saturating_add(1)) as i128) as $ty
                }
            }
        )*
    };
}

impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// `&'static str` patterns of the shape `[<class>]{m,n}` (a character class
/// with single chars and `a-z` ranges plus a repetition count) generate
/// matching random strings; any other pattern generates itself literally.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_pattern(self) {
            Some((chars, min, max)) => {
                let len = min + rng.below((max - min + 1) as u64) as usize;
                (0..len).map(|_| chars[rng.below(chars.len() as u64) as usize]).collect()
            }
            None => (*self).to_string(),
        }
    }
}

fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = counts.split_once(',')?;
    let (min, max) = (min.trim().parse().ok()?, max.trim().parse().ok()?);
    let mut chars = Vec::new();
    let src: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < src.len() {
        if i + 2 < src.len() && src[i + 1] == '-' {
            let (lo, hi) = (src[i], src[i + 2]);
            chars.extend((lo..=hi).filter(|c| c.is_ascii()));
            i += 3;
        } else {
            chars.push(src[i]);
            i += 1;
        }
    }
    if chars.is_empty() || min > max {
        return None;
    }
    Some((chars, min, max))
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))+) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+
    };
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Uniform choice between boxed alternatives — what [`prop_oneof!`] builds.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the (non-empty) list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { options: self.options.clone() }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

/// Generates `bool` uniformly (`prop::bool::ANY`, `any::<bool>()`).
#[derive(Clone, Copy)]
pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Size specification for [`prop::collection::vec`]: an exact length or a
/// half-open range of lengths.
#[derive(Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { min: exact, max_exclusive: exact + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec size range");
        SizeRange { min: range.start, max_exclusive: range.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        SizeRange { min: *range.start(), max_exclusive: *range.end() + 1 }
    }
}

/// Strategy for vectors of values from an element strategy.
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Uniform choice from a fixed list of values (`prop::sample::select`).
#[derive(Clone)]
pub struct Select<T: Clone + Debug> {
    options: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

/// Types with a canonical strategy, usable via [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

impl Arbitrary for bool {
    type Strategy = BoolAny;
    fn arbitrary() -> BoolAny {
        BoolAny
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Arbitrary for $ty {
                type Strategy = RangeInclusive<$ty>;
                fn arbitrary() -> RangeInclusive<$ty> {
                    <$ty>::MIN..=<$ty>::MAX
                }
            }
        )*
    };
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

/// The canonical strategy for a type: `any::<bool>()` etc.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// The `prop::` namespace mirrored from proptest.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, VecStrategy};
        /// Vectors of `size` elements drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::Select;
        use std::fmt::Debug;
        /// Uniform choice from `options`.
        pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
            Select { options }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::BoolAny;
        /// Uniform `bool`.
        pub const ANY: BoolAny = BoolAny;
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Error a property body can return (`Result<(), TestCaseError>` helpers,
/// `?` inside `proptest!` bodies). The stand-in's `prop_assert*` macros
/// panic instead of constructing one, but helper signatures still name it.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "property failed: {}", self.0)
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for proptest compatibility; the stand-in never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for proptest compatibility; failures are printed, never
    /// persisted to a regression file.
    pub fork: bool,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0, fork: false }
    }
}

/// The property-test runner macro. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///     #[test]
///     fn my_property(x in 0usize..10, flag in prop::bool::ANY) {
///         prop_assert!(x < 10 || flag);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let inputs = {
                        let mut s = ::std::string::String::new();
                        $(s.push_str(&::std::format!(
                            "  {} = {:?}\n", stringify!($arg), &$arg
                        ));)+
                        s
                    };
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::std::result::Result<(), $crate::TestCaseError> {
                                $body
                                ::std::result::Result::Ok(())
                            }
                        )
                    );
                    match outcome {
                        ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                        ::std::result::Result::Ok(::std::result::Result::Err(e)) => {
                            ::std::eprintln!(
                                "proptest: case {}/{} of `{}` failed with inputs:\n{}",
                                case + 1, config.cases, stringify!($name), inputs
                            );
                            ::std::panic!("{}", e);
                        }
                        ::std::result::Result::Err(payload) => {
                            ::std::eprintln!(
                                "proptest: case {}/{} of `{}` failed with inputs:\n{}",
                                case + 1, config.cases, stringify!($name), inputs
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assert inside a property (panics, aborting the case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { ::std::assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { ::std::assert!($cond, $($fmt)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { ::std::assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { ::std::assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { ::std::assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { ::std::assert_ne!($a, $b, $($fmt)*) };
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        let strat = prop::collection::vec((0usize..10, prop::bool::ANY), 2..5);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|(n, _)| *n < 10));
        }
    }

    #[test]
    fn string_patterns_match_their_class() {
        let mut rng = crate::TestRng::from_name("strings");
        for _ in 0..200 {
            let s = "[a-c]{1,3}".generate(&mut rng);
            assert!((1..=3).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn recursion_terminates() {
        #[derive(Clone, Debug)]
        #[allow(dead_code)] // the payloads exist to exercise generation only
        enum T {
            Leaf(bool),
            Node(Vec<T>),
        }
        let strat = any::<bool>()
            .prop_map(T::Leaf)
            .prop_recursive(4, 64, 4, |inner| prop::collection::vec(inner, 0..4).prop_map(T::Node));
        let mut rng = crate::TestRng::from_name("recursion");
        for _ in 0..100 {
            let _ = strat.generate(&mut rng);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
        #[test]
        fn runner_executes_cases(x in 0usize..100, label in prop::sample::select(vec!["a", "b"])) {
            prop_assert!(x < 100);
            prop_assert_ne!(label, "c");
        }
    }
}

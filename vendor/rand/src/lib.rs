//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset used by `paxml-xmark`'s generator: a deterministic
//! seedable RNG ([`rngs::StdRng`], an xoshiro256++ instance seeded via
//! SplitMix64) plus [`Rng::gen_range`] over integer and float ranges and
//! [`Rng::gen_bool`]. The streams differ from crates.io rand, but every use
//! in this workspace only requires determinism for a fixed seed, which holds.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a `u64` seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Types that can be drawn uniformly from a range (mirrors rand's trait of
/// the same name so `gen_range` infers `T` from the range argument).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_exclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

fn uniform_below(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling to avoid modulo bias (bias is irrelevant for the
    // workload generator, but it is cheap to be exact).
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_uniform {
    ($($ty:ty),* $(,)?) => {
        $(
            impl SampleUniform for $ty {
                fn sample_exclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                    assert!(lo < hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    (lo as i128 + uniform_below(rng, span) as i128) as $ty
                }
                fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $ty;
                    }
                    (lo as i128 + uniform_below(rng, span + 1) as i128) as $ty
                }
            }
        )*
    };
}

impl_int_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_exclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
        Self::sample_exclusive(lo, hi.max(lo + f64::EPSILON), rng)
    }
}

impl SampleUniform for f32 {
    fn sample_exclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
        f64::sample_exclusive(lo as f64, hi as f64, rng) as f32
    }
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
        f64::sample_inclusive(lo as f64, hi as f64, rng) as f32
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(1.0..4.0)`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let a_vals: Vec<i32> = (0..32).map(|_| a.gen_range(0..1_000_000)).collect();
        let c_vals: Vec<i32> = (0..32).map(|_| c.gen_range(0..1_000_000)).collect();
        assert_ne!(a_vals, c_vals);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let v = rng.gen_range(1..=4usize);
            assert!((1..=4).contains(&v));
            let f = rng.gen_range(1.0..200.0);
            assert!((1.0..200.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.4)).count();
        assert!((3_000..5_000).contains(&hits), "p=0.4 gave {hits}/10000");
    }
}

//! Serialization traits mirroring `serde::ser` and impls for std types.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt::Display;
use std::time::Duration;

/// Error trait required of a serializer's error type.
pub trait Error: Sized + std::error::Error {
    /// Build an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data structure that can be serialized.
pub trait Serialize {
    /// Serialize `self` with the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can serialize any `Serialize` value.
pub trait Serializer: Sized {
    /// Output type produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Type returned by `serialize_seq`.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned by `serialize_tuple`.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned by `serialize_tuple_struct`.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned by `serialize_tuple_variant`.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned by `serialize_map`.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned by `serialize_struct`.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Type returned by `serialize_struct_variant`.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serialize a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serialize an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serialize a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serialize a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a byte slice.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize `Option::Some(value)`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serialize `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit struct.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serialize a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype struct.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serialize a newtype enum variant.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begin serializing a variable-length sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begin serializing a fixed-length tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begin serializing a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begin serializing a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begin serializing a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begin serializing a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begin serializing a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// Returned from `Serializer::serialize_seq`.
pub trait SerializeSeq {
    /// Output type, matching the serializer's.
    type Ok;
    /// Error type, matching the serializer's.
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned from `Serializer::serialize_tuple`.
pub trait SerializeTuple {
    /// Output type, matching the serializer's.
    type Ok;
    /// Error type, matching the serializer's.
    type Error: Error;
    /// Serialize one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned from `Serializer::serialize_tuple_struct`.
pub trait SerializeTupleStruct {
    /// Output type, matching the serializer's.
    type Ok;
    /// Error type, matching the serializer's.
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned from `Serializer::serialize_tuple_variant`.
pub trait SerializeTupleVariant {
    /// Output type, matching the serializer's.
    type Ok;
    /// Error type, matching the serializer's.
    type Error: Error;
    /// Serialize one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the tuple variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned from `Serializer::serialize_map`.
pub trait SerializeMap {
    /// Output type, matching the serializer's.
    type Ok;
    /// Error type, matching the serializer's.
    type Error: Error;
    /// Serialize one key.
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serialize one value.
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finish the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned from `Serializer::serialize_struct`.
pub trait SerializeStruct {
    /// Output type, matching the serializer's.
    type Ok;
    /// Error type, matching the serializer's.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// Returned from `Serializer::serialize_struct_variant`.
pub trait SerializeStructVariant {
    /// Output type, matching the serializer's.
    type Ok;
    /// Error type, matching the serializer's.
    type Error: Error;
    /// Serialize one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finish the struct variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------------

macro_rules! impl_primitive {
    ($($ty:ty => $method:ident),* $(,)?) => {
        $(
            impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.$method(*self)
                }
            }
        )*
    };
}

impl_primitive! {
    bool => serialize_bool,
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
    u64 => serialize_u64,
    f32 => serialize_f32,
    f64 => serialize_f64,
    char => serialize_char,
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}

fn serialize_iter<S: Serializer, T: Serialize>(
    serializer: S,
    len: usize,
    iter: impl Iterator<Item = T>,
) -> Result<S::Ok, S::Error> {
    let mut seq = serializer.serialize_seq(Some(len))?;
    for item in iter {
        seq.serialize_element(&item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut tuple = serializer.serialize_tuple(N)?;
        for item in self {
            tuple.serialize_element(item)?;
        }
        tuple.end()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

impl<T: Serialize, H> Serialize for HashSet<T, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(serializer, self.len(), self.iter())
    }
}

fn serialize_map_iter<'a, S: Serializer, K: Serialize + 'a, V: Serialize + 'a>(
    serializer: S,
    len: usize,
    iter: impl Iterator<Item = (&'a K, &'a V)>,
) -> Result<S::Ok, S::Error> {
    let mut map = serializer.serialize_map(Some(len))?;
    for (k, v) in iter {
        map.serialize_key(k)?;
        map.serialize_value(v)?;
    }
    map.end()
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_iter(serializer, self.len(), self.iter())
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_map_iter(serializer, self.len(), self.iter())
    }
}

macro_rules! impl_tuple {
    ($($len:literal => ($($name:ident . $idx:tt),+))+) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    let mut tuple = serializer.serialize_tuple($len)?;
                    $(tuple.serialize_element(&self.$idx)?;)+
                    tuple.end()
                }
            }
        )+
    };
}

impl_tuple! {
    1 => (A.0)
    2 => (A.0, B.1)
    3 => (A.0, B.1, C.2)
    4 => (A.0, B.1, C.2, D.3)
    5 => (A.0, B.1, C.2, D.3, E.4)
}

impl Serialize for Duration {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut st = serializer.serialize_struct("Duration", 2)?;
        st.serialize_field("secs", &self.as_secs())?;
        st.serialize_field("nanos", &self.subsec_nanos())?;
        st.end()
    }
}

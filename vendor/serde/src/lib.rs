//! An offline stand-in for the `serde` crate.
//!
//! The paxml workspace builds without network access, so this crate provides
//! exactly the serde surface the workspace uses:
//!
//! * the [`ser::Serialize`] / [`ser::Serializer`] traits (plus the compound
//!   `Serialize*` traits) — enough for `paxml-distsim`'s byte-counting
//!   serializer to measure any message type;
//! * a structural [`Deserialize`] marker trait (derived but never driven by
//!   a data format in this workspace);
//! * `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive`
//!   proc-macro crate;
//! * `Serialize` impls for the std types the message types are built from.
//!
//! It is API-compatible with real serde for this subset, so swapping the
//! workspace back to crates.io serde is a one-line change in `Cargo.toml`.

pub mod ser;

pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};

/// Structural deserialization marker.
///
/// The workspace derives `Deserialize` on its message types to keep them
/// round-trip-ready, but never drives them from a data format (the simulator
/// passes values in-process and only *measures* their serialized size), so
/// no deserializer machinery is needed.
pub trait Deserialize<'de>: Sized {}

//! An offline stand-in for the `serde` crate.
//!
//! The paxml workspace builds without network access, so this crate provides
//! exactly the serde surface the workspace uses:
//!
//! * the [`ser::Serialize`] / [`ser::Serializer`] traits (plus the compound
//!   `Serialize*` traits) — enough for `paxml-distsim`'s byte-counting
//!   serializer to measure any message type;
//! * the [`de::Deserialize`] / [`de::Deserializer`] traits — a method-based
//!   (non-visitor) reader interface sufficient for `paxml-wire`'s binary
//!   codec to decode any message type (see the [`de`] module docs for how
//!   this deviates from real serde and why);
//! * `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive`
//!   proc-macro crate;
//! * `Serialize`/`Deserialize` impls for the std types the message types
//!   are built from.
//!
//! It is API-compatible with real serde for the `Serialize` subset, so
//! swapping the workspace back to crates.io serde is a one-line change in
//! `Cargo.toml` plus a rewrite of the (small, self-contained) decoder in
//! `paxml-wire` to the visitor API.

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
pub use serde_derive::{Deserialize, Serialize};

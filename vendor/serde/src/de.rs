//! Deserialization traits mirroring the shape of [`crate::ser`], and impls
//! for the std types the workspace's message types are built from.
//!
//! Unlike real serde's visitor-based `Deserializer`, this stand-in uses a
//! small *method-based* reader interface: the data formats in this workspace
//! are self-describing only up to their Rust types (the wire layout carries
//! no field names or type tags beyond enum variant indices), so a decoder
//! always knows statically which primitive comes next and can simply ask for
//! it. The nine reader methods below correspond one-to-one to the byte
//! categories `paxml-distsim`'s counting serializer charges: primitives,
//! strings/bytes (varint length + payload), option tags, sequence/map
//! lengths, and enum variant tags. Swapping back to crates.io serde would
//! replace this module wholesale, which is why it is kept separate from
//! [`crate::ser`].

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt::Display;
use std::hash::{BuildHasher, Hash};
use std::time::Duration;

/// Error trait required of a deserializer's error type.
pub trait Error: Sized + std::error::Error {
    /// Build an error from a display-able message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data format that a `Deserialize` type can read itself back out of.
///
/// All methods take `&mut self`: a deserializer is a cursor over its input
/// and is threaded through the decode of a whole value tree.
pub trait Deserializer<'de> {
    /// Error type.
    type Error: Error;

    /// Read a `bool`.
    fn read_bool(&mut self) -> Result<bool, Self::Error>;
    /// Read an `i8`.
    fn read_i8(&mut self) -> Result<i8, Self::Error>;
    /// Read an `i16`.
    fn read_i16(&mut self) -> Result<i16, Self::Error>;
    /// Read an `i32`.
    fn read_i32(&mut self) -> Result<i32, Self::Error>;
    /// Read an `i64`.
    fn read_i64(&mut self) -> Result<i64, Self::Error>;
    /// Read a `u8`.
    fn read_u8(&mut self) -> Result<u8, Self::Error>;
    /// Read a `u16`.
    fn read_u16(&mut self) -> Result<u16, Self::Error>;
    /// Read a `u32`.
    fn read_u32(&mut self) -> Result<u32, Self::Error>;
    /// Read a `u64`.
    fn read_u64(&mut self) -> Result<u64, Self::Error>;
    /// Read an `f32`.
    fn read_f32(&mut self) -> Result<f32, Self::Error>;
    /// Read an `f64`.
    fn read_f64(&mut self) -> Result<f64, Self::Error>;
    /// Read a `char`.
    fn read_char(&mut self) -> Result<char, Self::Error>;
    /// Read an owned string.
    fn read_string(&mut self) -> Result<String, Self::Error>;
    /// Read an owned byte buffer.
    fn read_byte_buf(&mut self) -> Result<Vec<u8>, Self::Error>;
    /// Read a unit value (no bytes on the wire).
    fn read_unit(&mut self) -> Result<(), Self::Error>;
    /// Read an `Option` tag: `false` for `None`, `true` for `Some` (the
    /// payload follows).
    fn read_option_tag(&mut self) -> Result<bool, Self::Error>;
    /// Read the element count of a sequence or map.
    fn read_len(&mut self) -> Result<usize, Self::Error>;
    /// Read an enum variant index.
    fn read_variant_tag(&mut self) -> Result<u32, Self::Error>;
}

/// A data structure that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Read `Self` out of the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: &mut D) -> Result<Self, D::Error>;
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types (mirroring the Serialize impls in `ser`).
// ---------------------------------------------------------------------------

macro_rules! impl_primitive {
    ($($ty:ty => $method:ident),* $(,)?) => {
        $(
            impl<'de> Deserialize<'de> for $ty {
                fn deserialize<D: Deserializer<'de>>(de: &mut D) -> Result<Self, D::Error> {
                    de.$method()
                }
            }
        )*
    };
}

impl_primitive! {
    bool => read_bool,
    i8 => read_i8,
    i16 => read_i16,
    i32 => read_i32,
    i64 => read_i64,
    u8 => read_u8,
    u16 => read_u16,
    u32 => read_u32,
    u64 => read_u64,
    f32 => read_f32,
    f64 => read_f64,
    char => read_char,
    String => read_string,
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(de: &mut D) -> Result<Self, D::Error> {
        Ok(de.read_i64()? as isize)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(de: &mut D) -> Result<Self, D::Error> {
        Ok(de.read_u64()? as usize)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(de: &mut D) -> Result<Self, D::Error> {
        de.read_unit()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(de: &mut D) -> Result<Self, D::Error> {
        Ok(Box::new(T::deserialize(de)?))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::rc::Rc<T> {
    fn deserialize<D: Deserializer<'de>>(de: &mut D) -> Result<Self, D::Error> {
        Ok(std::rc::Rc::new(T::deserialize(de)?))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {
    fn deserialize<D: Deserializer<'de>>(de: &mut D) -> Result<Self, D::Error> {
        Ok(std::sync::Arc::new(T::deserialize(de)?))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(de: &mut D) -> Result<Self, D::Error> {
        if de.read_option_tag()? {
            Ok(Some(T::deserialize(de)?))
        } else {
            Ok(None)
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(de: &mut D) -> Result<Self, D::Error> {
        let len = de.read_len()?;
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(T::deserialize(de)?);
        }
        Ok(out)
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(de: &mut D) -> Result<Self, D::Error> {
        // Serialized as a fixed-length tuple: no length prefix on the wire.
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::deserialize(de)?);
        }
        out.try_into().map_err(|_| D::Error::custom("array length mismatch"))
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(de: &mut D) -> Result<Self, D::Error> {
        let len = de.read_len()?;
        let mut out = BTreeSet::new();
        for _ in 0..len {
            out.insert(T::deserialize(de)?);
        }
        Ok(out)
    }
}

impl<'de, T: Deserialize<'de> + Eq + Hash, H: BuildHasher + Default> Deserialize<'de>
    for HashSet<T, H>
{
    fn deserialize<D: Deserializer<'de>>(de: &mut D) -> Result<Self, D::Error> {
        let len = de.read_len()?;
        let mut out = HashSet::with_capacity_and_hasher(len.min(4096), H::default());
        for _ in 0..len {
            out.insert(T::deserialize(de)?);
        }
        Ok(out)
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(de: &mut D) -> Result<Self, D::Error> {
        let len = de.read_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::deserialize(de)?;
            let v = V::deserialize(de)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<'de, K: Deserialize<'de> + Eq + Hash, V: Deserialize<'de>, H: BuildHasher + Default>
    Deserialize<'de> for HashMap<K, V, H>
{
    fn deserialize<D: Deserializer<'de>>(de: &mut D) -> Result<Self, D::Error> {
        let len = de.read_len()?;
        let mut out = HashMap::with_capacity_and_hasher(len.min(4096), H::default());
        for _ in 0..len {
            let k = K::deserialize(de)?;
            let v = V::deserialize(de)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident),+))+) => {
        $(
            impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
                fn deserialize<__D: Deserializer<'de>>(de: &mut __D) -> Result<Self, __D::Error> {
                    Ok(($($name::deserialize(de)?,)+))
                }
            }
        )+
    };
}

impl_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

impl<'de> Deserialize<'de> for Duration {
    fn deserialize<D: Deserializer<'de>>(de: &mut D) -> Result<Self, D::Error> {
        let secs = de.read_u64()?;
        let nanos = de.read_u32()?;
        Ok(Duration::new(secs, nanos))
    }
}

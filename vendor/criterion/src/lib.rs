//! Offline stand-in for the `criterion` crate.
//!
//! Provides the measurement surface the paxml benches use — benchmark
//! groups, `bench_function`/`bench_with_input`, `Bencher::iter` and
//! `Bencher::iter_custom`, `BenchmarkId`, `Throughput` — with a simple
//! mean/min/max wall-clock reporter instead of criterion's statistical
//! machinery. `--quick`-grade numbers, deterministic scheduling, no deps.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion-style.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Measurement marker types.
pub mod measurement {
    /// Wall-clock time (the only measurement the stand-in supports).
    pub struct WallTime;
}

/// Identifier of a single benchmark within a group.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: function.into(), parameter: Some(parameter.to_string()) }
    }

    /// A benchmark id from a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { function: String::new(), parameter: Some(parameter.to_string()) }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId { function: function.to_string(), parameter: None }
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId { function, parameter: None }
    }
}

/// Throughput annotation for a group (reported as elements or bytes / sec).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; runs and times the measured code.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `f`, called `iters` times.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Measure with a custom timing function: `f` receives the iteration
    /// count and returns the total measured duration.
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        self.elapsed = f(self.iters);
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(
        &mut self,
        name: impl Into<String>,
    ) -> BenchmarkGroup<'_, measurement::WallTime> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            criterion: self,
            sample_size: None,
            warm_up_time: None,
            measurement_time: None,
            throughput: None,
            _marker: std::marker::PhantomData,
        }
    }

    /// Run a benchmark outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let (sample_size, warm_up, measurement) =
            (self.sample_size, self.warm_up_time, self.measurement_time);
        run_benchmark(&id.into().render(), sample_size, warm_up, measurement, None, f);
        self
    }
}

/// A group of related benchmarks with shared configuration.
pub struct BenchmarkGroup<'a, M> {
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
    warm_up_time: Option<Duration>,
    measurement_time: Option<Duration>,
    throughput: Option<Throughput>,
    _marker: std::marker::PhantomData<M>,
}

impl<'a, M> BenchmarkGroup<'a, M> {
    /// Number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Warm-up period before measuring.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = Some(t);
        self
    }

    /// Target measurement period per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = Some(t);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let (s, w, m, t) = self.effective();
        run_benchmark(&id.into().render(), s, w, m, t, f);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let (s, w, m, t) = self.effective();
        run_benchmark(&id.into().render(), s, w, m, t, |b| f(b, input));
        self
    }

    /// Finish the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}

    fn effective(&self) -> (usize, Duration, Duration, Option<Throughput>) {
        (
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.warm_up_time.unwrap_or(self.criterion.warm_up_time),
            self.measurement_time.unwrap_or(self.criterion.measurement_time),
            self.throughput,
        )
    }
}

fn run_benchmark(
    name: &str,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Warm-up: run single iterations until the warm-up budget is spent, and
    // use the observed speed to pick an iteration count per sample.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut warm_elapsed = Duration::ZERO;
    while warm_start.elapsed() < warm_up {
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut bencher);
        warm_iters += 1;
        warm_elapsed += bencher.elapsed.max(Duration::from_nanos(1));
    }
    let per_iter =
        if warm_iters == 0 { Duration::from_millis(1) } else { warm_elapsed / warm_iters as u32 };
    let budget_per_sample = measurement / sample_size.max(1) as u32;
    let iters =
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut bencher);
        samples.push(bencher.elapsed / iters as u32);
    }
    samples.sort();
    let min = samples[0];
    let max = samples[samples.len() - 1];
    let mean: Duration = samples.iter().sum::<Duration>() / samples.len() as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!(
        "{name:<40} [{min:>12.3?} {mean:>12.3?} {max:>12.3?}]  ({sample_size} samples x {iters} iters){rate}"
    );
}

/// Define a group-running function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from criterion groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Batch multi-query evaluation: many queries, one deployment, shared
//! site visits.
//!
//! The paper's guarantees are stated per query: PaX2 visits every site at
//! most twice and ships `O(|Q|·|FT| + |answer|)` bytes. Under the load this
//! repository aims at — many concurrent queries over the *same* deployment —
//! evaluating queries one at a time multiplies the round count by the batch
//! size: `N` queries cost up to `2N` coordinator rounds and `2N` visits per
//! site. This module amortizes those visits across the batch:
//!
//! 1. **One combined visit.** The coordinator merges every query's
//!    first-stage payload addressed to a site into a single
//!    [`BatchCombinedRequest`]. Each
//!    site takes every needed fragment out of its store once and runs the
//!    per-query combined pre/post-order passes over it, emitting *per-query*
//!    residual Boolean vectors (the queries' vector spaces never mix — each
//!    query's candidate state is kept in a per-query scratch slot).
//! 2. **Coordinator unification per query.** `evalFT` (qualifier and
//!    selection unification) runs independently per query over the shared
//!    fragment tree, exactly as in single-query PaX2.
//! 3. **One collection visit.** The resolved variable values of every query
//!    are merged per site into a single
//!    [`BatchCollectRequest`]; sites
//!    resolve all candidate sets and ship each query's answers.
//!
//! The *whole batch* therefore respects PaX2's bound: **no site is visited
//! more than twice, no matter how many queries the batch carries** —
//! asserted by [`BatchReport::max_visits_per_site`] and the crate's tests.
//! Network traffic stays `O(Σᵢ|Qᵢ|·|FT| + Σᵢ|answerᵢ|)`, and the per-site
//! worker pool of `paxml-distsim` does the work of a round without
//! re-spawning threads, so batch throughput scales with batch size.
//!
//! # Example
//!
//! ```
//! use paxml_core::server::PaxServer;
//! use paxml_fragment::strategy::cut_at_labels;
//! use paxml_xml::TreeBuilder;
//!
//! let tree = TreeBuilder::new("clientele")
//!     .open("client").leaf("country", "US")
//!         .open("broker").leaf("name", "E*trade").close()
//!     .close()
//!     .open("client").leaf("country", "Canada")
//!         .open("broker").leaf("name", "CIBC").close()
//!     .close()
//!     .build();
//! let fragmented = cut_at_labels(&tree, &["broker"]).unwrap();
//! let mut server = PaxServer::builder().sites(3).deploy(&fragmented).unwrap();
//!
//! let report = server.execute_batch_text(&[
//!     "client[country/text()='US']/broker/name",
//!     "client/broker/name",
//!     "//broker[name/text()='CIBC']",
//! ]).unwrap();
//!
//! assert_eq!(report.len(), 3);
//! let texts = |i: usize| -> Vec<&str> {
//!     report.queries[i].answers.iter().filter_map(|a| a.text.as_deref()).collect()
//! };
//! assert_eq!(texts(0), vec!["E*trade"]);
//! assert_eq!(texts(1), vec!["E*trade", "CIBC"]);
//! // The entire batch kept PaX2's visit bound.
//! assert!(report.max_visits_per_site() <= 2);
//! ```

use crate::deployment::{Deployment, ExecCtx};
use crate::error::PaxResult;
use crate::protocol::{
    BatchCollectEntry, BatchCollectRequest, BatchCombinedEntry, BatchCombinedRequest,
    CombinedFragmentInput, InitVector,
};
use crate::prune::{analyze_with_trie, AnnotationAnalysis};
use crate::report::{Algorithm, AnswerItem, EvaluationReport, ExecMode, ExecReport, QueryOutcome};
use crate::transport::ProtocolRequest;
use crate::unify::{unify_qualifiers, unify_selection, DenseAssignment};
use crate::vars::PaxVar;
use crate::EvalOptions;
use paxml_boolex::{BitVector, CompactVector};
use paxml_distsim::{ClusterStats, SiteId};
use paxml_fragment::FragmentId;
use paxml_xpath::eval::{initial_vector, QualVectors};
use paxml_xpath::{compile_text, CompiledQuery, XPathResult};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// The outcome of one batched evaluation: per-query reports plus the
/// batch-level meters.
///
/// The cluster counters (visits, rounds, bytes, ops) are measured for the
/// batch as a whole — visits are *shared* between queries, which is the
/// point — so each per-query [`EvaluationReport`] carries the same
/// [`ClusterStats`]. Per-query fields (answers, fragments evaluated,
/// coordinator ops) are exact per query.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One report per query, in input order.
    pub reports: Vec<EvaluationReport>,
    /// The batch-level cluster counters (also attached to every report).
    pub stats: ClusterStats,
    /// Was the XPath-annotation optimization enabled?
    pub annotations_used: bool,
    /// Coordinator-side unification work summed over the batch.
    pub coordinator_ops: u64,
    /// Wall-clock time of the whole batch as seen by the coordinator.
    pub elapsed: Duration,
}

impl BatchReport {
    /// Number of queries in the batch.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Maximum number of visits any site received *for the whole batch* —
    /// ≤ 2, PaX2's single-query bound, regardless of batch size.
    pub fn max_visits_per_site(&self) -> u32 {
        self.stats.max_visits_per_site()
    }

    /// Total bytes moved over the (simulated) network for the whole batch.
    pub fn network_bytes(&self) -> u64 {
        self.stats.total_bytes()
    }

    /// Total computation over all sites plus the coordinator's unification
    /// work, for the whole batch.
    pub fn total_ops(&self) -> u64 {
        self.stats.total_ops + self.coordinator_ops
    }

    /// Coordinator rounds the batch needed (≤ 2).
    pub fn rounds(&self) -> u32 {
        self.stats.rounds
    }

    /// Answers summed over the batch.
    pub fn total_answers(&self) -> usize {
        self.reports.iter().map(|r| r.answers.len()).sum()
    }

    /// Queries per second of coordinator wall-clock time.
    pub fn queries_per_second(&self) -> f64 {
        if self.elapsed.is_zero() {
            return f64::INFINITY;
        }
        self.reports.len() as f64 / self.elapsed.as_secs_f64()
    }

    /// One-line human-readable summary of the whole batch.
    pub fn summary(&self) -> String {
        format!(
            "PaX2-batch{}: {} queries, {} answers, {} rounds, {} visits max/site, {} bytes, {} ops, {:.0} q/s",
            if self.annotations_used { "-XA" } else { "-NA" },
            self.len(),
            self.total_answers(),
            self.rounds(),
            self.max_visits_per_site(),
            self.network_bytes(),
            self.total_ops(),
            self.queries_per_second(),
        )
    }
}

/// Per-query planning state carried between the two batch stages.
struct QueryPlan {
    analysis: AnnotationAnalysis,
    root_init: Vec<bool>,
    /// Fragments whose answers are not certain after the combined pass and
    /// need the collection visit.
    finals_pending: Vec<FragmentId>,
}

/// Evaluate a batch of queries over the deployment with PaX2, sharing site
/// visits across the batch.
///
/// Queries are compiled up front; the first compile error aborts the batch.
#[deprecated(note = "use `PaxServer::prepare` + `execute_batch` instead")]
pub fn evaluate<S: AsRef<str>>(
    deployment: &mut Deployment,
    queries: &[S],
    options: &EvalOptions,
) -> XPathResult<BatchReport> {
    let compiled: Vec<CompiledQuery> =
        queries.iter().map(|q| compile_text(q.as_ref())).collect::<XPathResult<_>>()?;
    let refs: Vec<&CompiledQuery> = compiled.iter().collect();
    let texts: Vec<String> = queries.iter().map(|q| q.as_ref().to_string()).collect();
    let report = run(deployment, &refs, &texts, options, paxml_distsim::LATEST_EPOCH)
        .expect("the in-process simulator transport cannot fail");
    Ok(report.to_batch_report())
}

/// Evaluate a batch of already-compiled queries with PaX2. `texts` are the
/// original query strings, used only for the per-query reports; one per
/// compiled query.
///
/// # Panics
///
/// Panics when `compiled` and `texts` have different lengths.
#[deprecated(note = "use `PaxServer::prepare` + `execute_batch` instead")]
pub fn evaluate_compiled(
    deployment: &mut Deployment,
    compiled: &[CompiledQuery],
    texts: &[String],
    options: &EvalOptions,
) -> BatchReport {
    let refs: Vec<&CompiledQuery> = compiled.iter().collect();
    run(deployment, &refs, texts, options, paxml_distsim::LATEST_EPOCH)
        .expect("the in-process simulator transport cannot fail")
        .to_batch_report()
}

/// The batched PaX2 driver, reported as a unified [`ExecReport`] (mode
/// [`ExecMode::Batch`]) whose cluster meters cover exactly this batch.
///
/// # Panics
///
/// Panics when `compiled` and `texts` have different lengths.
pub(crate) fn run(
    deployment: &Deployment,
    compiled: &[&CompiledQuery],
    texts: &[String],
    options: &EvalOptions,
    epoch: u64,
) -> PaxResult<ExecReport> {
    assert_eq!(compiled.len(), texts.len(), "a batch run needs one query text per compiled query");
    let start = Instant::now();
    let mut ctx = ExecCtx::pinned(deployment, epoch, 0);
    let topology = ctx.topology();
    let ft = topology.fragment_tree.clone();
    let query_count = compiled.len();
    // One scratch slot per query of the batch, unique across concurrent
    // executions, so interleaved batches never mix candidate state.
    let slot_base = deployment.allocate_slots(query_count.max(1));
    let mut coordinator_ops_per_query: Vec<u64> = vec![0; query_count];
    let mut answers: Vec<Vec<AnswerItem>> = vec![Vec::new(); query_count];

    // ------------------------------------------------ Stage 1 (combined, 1 visit)
    // Plan every query, merging the per-site payloads into one request per
    // site for the whole batch.
    let mut plans: Vec<QueryPlan> = Vec::with_capacity(query_count);
    let mut site_entries: BTreeMap<SiteId, Vec<BatchCombinedEntry>> = BTreeMap::new();
    for (query_index, query) in compiled.iter().enumerate() {
        let analysis = if options.use_annotations {
            // One shared trie for the whole batch: the per-query analysis
            // walks distinct label paths, not per-fragment chains.
            analyze_with_trie(query, &topology.path_trie(&deployment.root_label))
        } else {
            AnnotationAnalysis::keep_all(&ft)
        };
        let root_init: Vec<bool> = initial_vector(query, &deployment.root_label);
        let mut finals_pending: Vec<FragmentId> = Vec::new();
        for (&site, fragments) in &ctx.group_by_site(analysis.relevant.iter().copied())? {
            let mut inputs = BTreeMap::new();
            for &fragment in fragments {
                let init = if fragment == FragmentId::ROOT {
                    InitVector::Exact(BitVector::from_bools(&root_init))
                } else if let Some(exact) = analysis.exact_init.get(&fragment) {
                    InitVector::Exact(BitVector::from_bools(exact))
                } else {
                    InitVector::Unknown
                };
                let collect_now = matches!(init, InitVector::Exact(_)) && !query.has_qualifiers();
                if !collect_now {
                    finals_pending.push(fragment);
                }
                inputs.insert(
                    fragment,
                    CombinedFragmentInput {
                        init,
                        root_is_context: fragment == FragmentId::ROOT && !query.absolute,
                        collect_answers_now: collect_now,
                    },
                );
            }
            site_entries.entry(site).or_default().push(BatchCombinedEntry {
                query_index,
                slot: slot_base + query_index,
                query: (*query).clone(),
                fragments: inputs,
            });
        }
        finals_pending.sort();
        plans.push(QueryPlan { analysis, root_init, finals_pending });
    }

    let requests: BTreeMap<SiteId, ProtocolRequest> = site_entries
        .into_iter()
        .map(|(site, entries)| {
            (site, ProtocolRequest::BatchCombined(BatchCombinedRequest { entries }))
        })
        .collect();
    let responses = ctx.round(requests)?;

    // Scatter the merged responses back out per query.
    let mut roots: Vec<BTreeMap<FragmentId, QualVectors<PaxVar>>> =
        vec![BTreeMap::new(); query_count];
    let mut virtuals: Vec<BTreeMap<FragmentId, CompactVector<PaxVar>>> =
        vec![BTreeMap::new(); query_count];
    for response in responses.into_values() {
        for slice in response.into_batch_combined()?.per_query {
            roots[slice.query_index].extend(slice.roots);
            virtuals[slice.query_index].extend(slice.virtuals);
            answers[slice.query_index].extend(slice.answers);
        }
    }

    // ------------------------------------------- Coordinator: unify per query
    let mut site_collect: BTreeMap<SiteId, Vec<BatchCollectEntry>> = BTreeMap::new();
    for (query_index, (query, plan)) in compiled.iter().zip(&plans).enumerate() {
        let mut assignment = DenseAssignment::new(ft.len());
        if query.has_qualifiers() {
            coordinator_ops_per_query[query_index] += (ft.len() * query.qvect_len()) as u64;
            unify_qualifiers(&ft, &roots[query_index], query.qvect_len(), &mut assignment);
        }
        if plan.finals_pending.is_empty() {
            continue;
        }
        coordinator_ops_per_query[query_index] += (ft.len() * query.init_len()) as u64;
        unify_selection(&ft, &virtuals[query_index], &plan.root_init, &mut assignment);
        for (&site, fragments) in &ctx.group_by_site(plan.finals_pending.iter().copied())? {
            let mut per_fragment = BTreeMap::new();
            for &fragment in fragments {
                per_fragment.insert(
                    fragment,
                    assignment.restrict_for_fragment(fragment, ft.children(fragment)),
                );
            }
            site_collect.entry(site).or_default().push(BatchCollectEntry {
                query_index,
                slot: slot_base + query_index,
                fragments: per_fragment,
            });
        }
    }

    // ---------------------------------------------- Stage 2 (collect, 1 visit)
    if !site_collect.is_empty() {
        let requests: BTreeMap<SiteId, ProtocolRequest> = site_collect
            .into_iter()
            .map(|(site, entries)| {
                (site, ProtocolRequest::BatchCollect(BatchCollectRequest { entries }))
            })
            .collect();
        let responses = ctx.round(requests)?;
        for response in responses.into_values() {
            for slice in response.into_batch_collect()?.per_query {
                answers[slice.query_index].extend(slice.answers);
            }
        }
    }

    // ------------------------------------------------------------- Reports
    let elapsed = start.elapsed();
    let stats = ctx.stats;
    let mut outcomes = Vec::with_capacity(query_count);
    for (query_index, mut query_answers) in answers.into_iter().enumerate() {
        query_answers.sort();
        query_answers.dedup();
        outcomes.push(QueryOutcome {
            query: texts[query_index].clone(),
            answers: query_answers,
            fragments_evaluated: plans[query_index].analysis.relevant.len(),
            coordinator_ops: coordinator_ops_per_query[query_index],
        });
    }
    Ok(ExecReport {
        algorithm: Algorithm::PaX2,
        annotations_used: options.use_annotations,
        mode: ExecMode::Batch,
        queries: outcomes,
        update: None,
        fragments_total: ft.len(),
        stats,
        coordinator_ops: coordinator_ops_per_query.iter().sum(),
        elapsed,
        from_cache: false,
        epoch,
        placement_version: topology.version,
    })
}

impl ExecReport {
    /// View this batch execution as the legacy [`BatchReport`]: one
    /// [`EvaluationReport`] per query, each carrying the batch-level
    /// cluster meters (visits are shared across the batch).
    pub fn to_batch_report(&self) -> BatchReport {
        BatchReport {
            reports: self
                .queries
                .iter()
                .map(|outcome| EvaluationReport {
                    algorithm: self.algorithm,
                    annotations_used: self.annotations_used,
                    query: outcome.query.clone(),
                    answers: outcome.answers.clone(),
                    fragments_evaluated: outcome.fragments_evaluated,
                    fragments_total: self.fragments_total,
                    stats: self.stats.clone(),
                    coordinator_ops: outcome.coordinator_ops,
                    elapsed: self.elapsed,
                })
                .collect(),
            stats: self.stats.clone(),
            annotations_used: self.annotations_used,
            coordinator_ops: self.coordinator_ops,
            elapsed: self.elapsed,
        }
    }
}

#[cfg(test)]
#[allow(deprecated)] // the legacy shims stay covered until they are removed
mod tests {
    use super::*;
    use crate::pax2;
    use paxml_distsim::Placement;
    use paxml_fragment::{fragment_at, strategy};
    use paxml_xml::{TreeBuilder, XmlTree};

    fn clientele() -> XmlTree {
        TreeBuilder::new("clientele")
            .open("client")
            .leaf("name", "Anna")
            .leaf("country", "US")
            .open("broker")
            .leaf("name", "E*trade")
            .open("market")
            .leaf("name", "NASDAQ")
            .open("stock")
            .leaf("code", "YHOO")
            .leaf("buy", "$33")
            .leaf("qt", "40")
            .close()
            .close()
            .close()
            .close()
            .open("client")
            .leaf("name", "Lisa")
            .leaf("country", "Canada")
            .open("broker")
            .leaf("name", "CIBC")
            .open("market")
            .leaf("name", "TSE")
            .open("stock")
            .leaf("code", "GOOG")
            .leaf("buy", "$382")
            .leaf("qt", "90")
            .close()
            .close()
            .close()
            .close()
            .build()
    }

    fn query_battery() -> Vec<&'static str> {
        vec![
            "client/name",
            "client/broker/name",
            "//name",
            "//stock/code",
            "client[country/text()='US']/broker/name",
            "client[not(country/text()='US')]/name",
            "//broker[//stock/code/text()='GOOG']/name",
            "//stock[qt >= 50]/code",
            "*/*/name",
            "nonexistent/path",
        ]
    }

    #[test]
    fn batch_matches_per_query_evaluation_and_keeps_the_visit_bound() {
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker", "market"]).unwrap();
        let queries = query_battery();
        for use_annotations in [false, true] {
            let options = EvalOptions { use_annotations };
            let mut d = Deployment::new(&fragmented, 4, Placement::RoundRobin);
            let batch = evaluate(&mut d, &queries, &options).unwrap();
            assert_eq!(batch.len(), queries.len());
            assert!(batch.max_visits_per_site() <= 2, "batch broke the PaX2 bound");
            assert!(batch.rounds() <= 2);
            for (query, report) in queries.iter().zip(&batch.reports) {
                let mut single = Deployment::new(&fragmented, 4, Placement::RoundRobin);
                let expected = pax2::evaluate(&mut single, query, &options).unwrap();
                assert_eq!(
                    report.answer_origins(),
                    expected.answer_origins(),
                    "batch disagrees with single-query PaX2 on {query} (XA={use_annotations})"
                );
            }
        }
    }

    #[test]
    fn batch_traffic_beats_sequential_rounds() {
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker", "market"]).unwrap();
        let queries = query_battery();

        let mut d = Deployment::new(&fragmented, 4, Placement::RoundRobin);
        let batch = evaluate(&mut d, &queries, &EvalOptions::default()).unwrap();

        // The same queries one at a time: up to 2 rounds *per query* and a
        // visit count that scales with the batch size.
        let mut single = Deployment::new(&fragmented, 4, Placement::RoundRobin);
        let mut total_rounds = 0;
        let mut max_visits = 0;
        for query in &queries {
            single.reset();
            let report = pax2::evaluate(&mut single, query, &EvalOptions::default()).unwrap();
            total_rounds += report.stats.rounds;
            max_visits += report.max_visits_per_site();
        }
        assert!(batch.rounds() <= 2);
        assert!(total_rounds > batch.rounds() * 3);
        assert!(max_visits > batch.max_visits_per_site() * 3);
    }

    #[test]
    fn batch_report_exposes_batch_meters() {
        let tree = clientele();
        let fragmented = fragment_at(&tree, &[tree.find_first("broker").unwrap()]).unwrap();
        let mut d = Deployment::new(&fragmented, 2, Placement::RoundRobin);
        let batch =
            evaluate(&mut d, &["client/name", "//stock/code"], &EvalOptions::default()).unwrap();
        assert_eq!(batch.len(), 2);
        assert!(!batch.is_empty());
        assert!(batch.network_bytes() > 0);
        assert!(batch.total_ops() > 0);
        assert!(batch.total_answers() > 0);
        assert!(batch.queries_per_second() > 0.0);
        let summary = batch.summary();
        assert!(summary.contains("PaX2-batch"));
        assert!(summary.contains("2 queries"));
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let tree = clientele();
        let fragmented = fragment_at(&tree, &[]).unwrap();
        let mut d = Deployment::new(&fragmented, 1, Placement::SingleSite);
        let batch = evaluate(&mut d, &[] as &[&str], &EvalOptions::default()).unwrap();
        assert!(batch.is_empty());
        assert_eq!(batch.rounds(), 0);
        assert_eq!(batch.max_visits_per_site(), 0);
    }

    #[test]
    fn compile_errors_abort_the_batch() {
        let tree = clientele();
        let fragmented = fragment_at(&tree, &[]).unwrap();
        let mut d = Deployment::new(&fragmented, 1, Placement::SingleSite);
        assert!(evaluate(&mut d, &["client/name", "client[", "//name"], &EvalOptions::default())
            .is_err());
    }

    #[test]
    fn reusing_a_deployment_resets_batch_stats() {
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker"]).unwrap();
        let mut d = Deployment::new(&fragmented, 3, Placement::RoundRobin);
        let first = evaluate(&mut d, &["client/name"], &EvalOptions::default()).unwrap();
        let second = evaluate(&mut d, &["client/name"], &EvalOptions::default()).unwrap();
        assert_eq!(first.max_visits_per_site(), second.max_visits_per_site());
        assert_eq!(first.network_bytes(), second.network_bytes());
    }
}

//! # paxml-core — the algorithms of "Distributed Query Evaluation with Performance Guarantees"
//!
//! This crate implements the paper's contribution on top of the workspace
//! substrates:
//!
//! | Module | Paper section | What it does |
//! |--------|---------------|--------------|
//! | [`pax3`] | §3 | The three-stage partial-evaluation algorithm (≤ 3 visits/site). |
//! | [`pax2`] | §4 | The two-stage algorithm (≤ 2 visits/site). |
//! | [`batch`] | §4 (extended) | Batched multi-query PaX2: N queries share site visits, ≤ 2 visits/site for the whole batch. |
//! | [`incremental`] | beyond the paper | Re-evaluation under fragment updates: cached per-fragment vectors, dirty-cone `evalFT`, zero visits to clean sites. |
//! | [`prune`] | §5 | The XPath-annotation optimization (fragment pruning + exact stack initialization). |
//! | [`naive`] | §3 | The NaiveCentralized ship-everything baseline. |
//! | [`protocol`] / [`unify`] | §3.1–3.3 | The coordinator↔site messages, the per-site tasks, and the `evalFT` unification procedures. |
//! | [`server`] | the public API | The [`PaxServer`] session: prepared queries, every mode behind one handle, one [`ExecReport`]. |
//!
//! ```
//! use paxml_core::{server::PaxServer, Algorithm};
//! use paxml_distsim::Placement;
//! use paxml_fragment::strategy::cut_at_labels;
//! use paxml_xml::TreeBuilder;
//!
//! // A tiny clientele document, fragmented at every broker, spread over 3 sites.
//! let tree = TreeBuilder::new("clientele")
//!     .open("client").leaf("country", "US")
//!         .open("broker").leaf("name", "E*trade").close()
//!     .close()
//!     .open("client").leaf("country", "Canada")
//!         .open("broker").leaf("name", "CIBC").close()
//!     .close()
//!     .build();
//! let fragmented = cut_at_labels(&tree, &["broker"]).unwrap();
//! let mut server = PaxServer::builder()
//!     .algorithm(Algorithm::PaX2)
//!     .sites(3)
//!     .placement(Placement::RoundRobin)
//!     .deploy(&fragmented)
//!     .unwrap();
//!
//! let query = server.prepare("client[country/text()='US']/broker/name").unwrap();
//! let report = server.execute(&query).unwrap();
//! assert_eq!(report.answer_texts(), vec!["E*trade".to_string()]);
//! assert!(report.max_visits_per_site() <= 2);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod batch;
mod deployment;
mod error;
pub mod incremental;
pub mod naive;
pub mod pax2;
pub mod pax3;
pub mod protocol;
pub mod prune;
mod report;
pub mod server;
pub mod transport;
pub mod unify;
mod vars;

pub use batch::BatchReport;
pub use deployment::{Deployment, ExecCtx, Topology};
pub use error::{PaxError, PaxResult};
#[allow(deprecated)]
pub use incremental::IncrementalEngine;
pub use incremental::IncrementalReport;
pub use paxml_distsim::LATEST_EPOCH;
pub use prune::{analyze_with_trie, AnnotationAnalysis, PathTrie};
pub use report::{
    answer_item, Algorithm, AnswerItem, EvaluationReport, ExecMode, ExecReport, QueryOutcome,
    UpdateOutcome,
};
pub use server::{
    PaxServer, PaxServerBuilder, PrepareSetStats, PreparedQuery, RefragBase, RefragReport,
    RetryPolicy, ServerStats, SiteLoad, TopologyChange,
};
pub use transport::{
    dispatch, injected_fault_error, EpochRequest, ProtocolRequest, ProtocolResponse, TcpOptions,
    Transport, VacuumOutcome,
};
pub use vars::{PaxVar, QualVecKind};

/// Options shared by the distributed algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalOptions {
    /// Use the XPath-annotation optimization of §5 (the "XA" curves of the
    /// experimental study). Off by default ("NA").
    pub use_annotations: bool,
}

impl EvalOptions {
    /// The "NA" configuration (no annotations).
    pub fn without_annotations() -> Self {
        EvalOptions { use_annotations: false }
    }

    /// The "XA" configuration (annotations enabled).
    pub fn with_annotations() -> Self {
        EvalOptions { use_annotations: true }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxml_distsim::Placement;
    use paxml_fragment::{fragment_at, strategy, FragmentedTree};
    use paxml_xml::{NodeId, TreeBuilder, XmlTree};
    use paxml_xpath::{centralized, compile_text};

    /// The classic engine drivers, compiled on the fly (the internal
    /// equivalents of `PaxServer::query_once` for each algorithm).
    fn eval_pax3(d: &mut Deployment, q: &str, o: &EvalOptions) -> ExecReport {
        pax3::run(d, &compile_text(q).unwrap(), q, o, LATEST_EPOCH).unwrap()
    }
    fn eval_pax2(d: &mut Deployment, q: &str, o: &EvalOptions) -> ExecReport {
        pax2::run(d, &compile_text(q).unwrap(), q, o, LATEST_EPOCH).unwrap()
    }
    fn eval_naive(d: &mut Deployment, q: &str) -> ExecReport {
        naive::run(d, &compile_text(q).unwrap(), q, LATEST_EPOCH).unwrap()
    }

    /// The Fig. 1 clientele document.
    fn clientele() -> XmlTree {
        TreeBuilder::new("clientele")
            .open("client")
            .leaf("name", "Anna")
            .leaf("country", "US")
            .open("broker")
            .leaf("name", "E*trade")
            .open("market")
            .leaf("name", "NYSE")
            .open("stock")
            .leaf("code", "IBM")
            .leaf("buy", "$80")
            .leaf("qt", "50")
            .close()
            .close()
            .open("market")
            .leaf("name", "NASDAQ")
            .open("stock")
            .leaf("code", "YHOO")
            .leaf("buy", "$33")
            .leaf("qt", "40")
            .close()
            .open("stock")
            .leaf("code", "GOOG")
            .leaf("buy", "$374")
            .leaf("qt", "75")
            .close()
            .close()
            .close()
            .close()
            .open("client")
            .leaf("name", "Kim")
            .leaf("country", "US")
            .open("broker")
            .leaf("name", "Bache")
            .open("market")
            .leaf("name", "NASDAQ")
            .open("stock")
            .leaf("code", "GOOG")
            .leaf("buy", "$370")
            .leaf("qt", "40")
            .close()
            .close()
            .close()
            .close()
            .open("client")
            .leaf("name", "Lisa")
            .leaf("country", "Canada")
            .open("broker")
            .leaf("name", "CIBC")
            .open("market")
            .leaf("name", "TSE")
            .open("stock")
            .leaf("code", "GOOG")
            .leaf("buy", "$382")
            .leaf("qt", "90")
            .close()
            .close()
            .close()
            .close()
            .build()
    }

    /// The Fig. 1 fragmentation (five fragments).
    fn fig1_fragmentation(tree: &XmlTree) -> FragmentedTree {
        let brokers = tree.find_all("broker");
        let markets = tree.find_all("market");
        let clients = tree.find_all("client");
        fragment_at(tree, &[brokers[0], markets[1], clients[2], markets[2]]).unwrap()
    }

    /// Queries exercising every feature of the class X.
    fn query_battery() -> Vec<&'static str> {
        vec![
            "client/name",
            "client/broker/name",
            "/clientele/client/country",
            "//name",
            "//market/name",
            "//stock/code",
            "client//code",
            "client[country/text()='US']/broker[market/name/text()='NASDAQ']/name",
            "client[not(country/text()='US')]/name",
            "//stock[buy/val() > 380]/code",
            "//stock[qt >= 50]/code",
            "//broker[//stock/code/text()='GOOG']/name",
            "//broker[//stock/code/text()='GOOG' and not(//stock/code/text()='YHOO')]/name",
            "client[broker[market/name/text()='TSE']]/name",
            "*/*/name",
            ".[//code/text()='GOOG']",
            "client[country/text()='US' or country/text()='Canada']/name",
            "//*[code/text()='GOOG']/buy",
            "nonexistent/path",
            "/wrongroot/client/name",
            "//clientele/client/name",
        ]
    }

    /// Reference answers from the centralized evaluator on the original tree.
    fn reference(tree: &XmlTree, query: &str) -> Vec<NodeId> {
        let mut a = centralized::evaluate(tree, query).unwrap().answers;
        a.sort();
        a
    }

    fn check_all_algorithms(tree: &XmlTree, fragmented: &FragmentedTree, sites: usize) {
        for query in query_battery() {
            let expected = reference(tree, query);
            for use_annotations in [false, true] {
                let options = EvalOptions { use_annotations };
                let mut d = Deployment::new(fragmented, sites, Placement::RoundRobin);
                let p3 = eval_pax3(&mut d, query, &options);
                assert_eq!(
                    p3.answer_origins(),
                    expected,
                    "PaX3 (XA={use_annotations}) disagrees on {query}"
                );
                assert!(
                    p3.max_visits_per_site() <= 3,
                    "PaX3 visited a site more than 3 times on {query}"
                );

                let mut d = Deployment::new(fragmented, sites, Placement::RoundRobin);
                let p2 = eval_pax2(&mut d, query, &options);
                assert_eq!(
                    p2.answer_origins(),
                    expected,
                    "PaX2 (XA={use_annotations}) disagrees on {query}"
                );
                assert!(
                    p2.max_visits_per_site() <= 2,
                    "PaX2 visited a site more than 2 times on {query}"
                );
            }
            let mut d = Deployment::new(fragmented, sites, Placement::RoundRobin);
            let naive = eval_naive(&mut d, query);
            assert_eq!(naive.answer_origins(), expected, "Naive disagrees on {query}");
            assert_eq!(naive.max_visits_per_site(), 1);
        }
    }

    #[test]
    fn all_algorithms_agree_on_the_fig1_fragmentation() {
        let tree = clientele();
        let fragmented = fig1_fragmentation(&tree);
        check_all_algorithms(&tree, &fragmented, 4);
    }

    #[test]
    fn all_algorithms_agree_when_every_client_is_a_fragment() {
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["client"]).unwrap();
        check_all_algorithms(&tree, &fragmented, 3);
    }

    #[test]
    fn all_algorithms_agree_on_a_deep_fragmentation() {
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker", "market", "stock"]).unwrap();
        check_all_algorithms(&tree, &fragmented, 5);
    }

    #[test]
    fn all_algorithms_agree_without_fragmentation() {
        let tree = clientele();
        let fragmented = fragment_at(&tree, &[]).unwrap();
        check_all_algorithms(&tree, &fragmented, 1);
    }

    #[test]
    fn all_algorithms_agree_when_all_fragments_share_one_site() {
        let tree = clientele();
        let fragmented = fig1_fragmentation(&tree);
        for query in ["client/name", "//broker[//stock/code/text()='GOOG']/name"] {
            let expected = reference(&tree, query);
            let mut d = Deployment::new(&fragmented, 1, Placement::SingleSite);
            let p3 = eval_pax3(&mut d, query, &EvalOptions::default());
            assert_eq!(p3.answer_origins(), expected);
            assert!(p3.max_visits_per_site() <= 3);
            let mut d = Deployment::new(&fragmented, 1, Placement::SingleSite);
            let p2 = eval_pax2(&mut d, query, &EvalOptions::default());
            assert_eq!(p2.answer_origins(), expected);
            assert!(p2.max_visits_per_site() <= 2);
        }
    }

    #[test]
    fn qualifier_free_queries_need_fewer_visits() {
        let tree = clientele();
        let fragmented = fig1_fragmentation(&tree);

        // PaX3 without annotations: Stage 1 skipped => 2 visits.
        let mut d = Deployment::new(&fragmented, 4, Placement::RoundRobin);
        let report = eval_pax3(&mut d, "client/broker/name", &EvalOptions::default());
        assert_eq!(report.max_visits_per_site(), 2);

        // PaX3 with annotations: exact init vectors => Stage 3 skipped => 1 visit.
        let mut d = Deployment::new(&fragmented, 4, Placement::RoundRobin);
        let report = eval_pax3(&mut d, "client/broker/name", &EvalOptions::with_annotations());
        assert_eq!(report.max_visits_per_site(), 1);

        // PaX2 with annotations on a qualifier-free query: a single visit.
        let mut d = Deployment::new(&fragmented, 4, Placement::RoundRobin);
        let report = eval_pax2(&mut d, "client/broker/name", &EvalOptions::with_annotations());
        assert_eq!(report.max_visits_per_site(), 1);

        // With qualifiers PaX3 needs all three stages.
        let mut d = Deployment::new(&fragmented, 4, Placement::RoundRobin);
        let report =
            eval_pax3(&mut d, "client[country/text()='US']/broker/name", &EvalOptions::default());
        assert_eq!(report.max_visits_per_site(), 3);

        // ... while PaX2 stays at two.
        let mut d = Deployment::new(&fragmented, 4, Placement::RoundRobin);
        let report =
            eval_pax2(&mut d, "client[country/text()='US']/broker/name", &EvalOptions::default());
        assert_eq!(report.max_visits_per_site(), 2);
    }

    #[test]
    fn annotations_prune_irrelevant_fragments() {
        let tree = clientele();
        let fragmented = fig1_fragmentation(&tree);
        // Example 5.1: client/name only needs the root fragment and the
        // client fragment.
        let mut d = Deployment::new(&fragmented, 4, Placement::RoundRobin);
        let without = eval_pax2(&mut d, "client/name", &EvalOptions::default());
        let mut d = Deployment::new(&fragmented, 4, Placement::RoundRobin);
        let with = eval_pax2(&mut d, "client/name", &EvalOptions::with_annotations());
        assert_eq!(without.answer_origins(), with.answer_origins());
        assert_eq!(without.queries[0].fragments_evaluated, 5);
        assert_eq!(with.queries[0].fragments_evaluated, 2);
        assert!(with.total_ops() < without.total_ops());
        assert!(with.network_bytes() < without.network_bytes());
    }

    #[test]
    fn partial_evaluation_ships_far_less_than_the_naive_baseline() {
        // On a document whose size dwarfs the query, the naive baseline must
        // ship ~everything while PaX2's traffic stays O(|Q|·|FT| + |ans|).
        // Eight large "clientele" fragments of ~660 nodes each.
        let base = clientele();
        let clients = base.find_all("client");
        let mut unit = XmlTree::with_root_element("clientele");
        let unit_root = unit.root();
        for _ in 0..10 {
            for &c in &clients {
                unit.graft_tree(unit_root, &base, c).unwrap();
            }
        }
        let mut builder = TreeBuilder::new("portfolio");
        for _ in 0..8 {
            builder = builder.subtree(&unit);
        }
        let tree = builder.build();
        let fragmented = strategy::cut_at_labels(&tree, &["clientele"]).unwrap();
        let query =
            "clientele/client[country/text()='US']/broker[market/name/text()='NASDAQ']/name";

        let mut d = Deployment::new(&fragmented, 8, Placement::RoundRobin);
        let naive = eval_naive(&mut d, query);
        let mut d = Deployment::new(&fragmented, 8, Placement::RoundRobin);
        let pax = eval_pax2(&mut d, query, &EvalOptions::default());

        assert_eq!(naive.answer_origins(), pax.answer_origins());
        assert_eq!(pax.answers().len(), 8 * 10 * 2); // NASDAQ brokers of US clients
        assert!(
            naive.network_bytes() > 3 * pax.network_bytes(),
            "naive={} pax2={}",
            naive.network_bytes(),
            pax.network_bytes()
        );
    }

    #[test]
    fn network_traffic_is_independent_of_irrelevant_data_size() {
        // Growing the document with data that does not change the answer
        // must not change PaX2's traffic by more than a constant factor
        // (the O(|Q|·|FT| + |ans|) bound).
        let base = clientele();
        let mut grown_builder = TreeBuilder::new("clientele");
        for _ in 0..1 {
            grown_builder = grown_builder.subtree(&base);
        }
        // Add many clients in a country that never matches.
        grown_builder = grown_builder.with(|t, root| {
            for i in 0..200 {
                let c = t.append_element(root, "client");
                t.append_leaf(c, "name", format!("Bot{i}"));
                t.append_leaf(c, "country", "Nowhere");
            }
        });
        let grown = grown_builder.build();

        let query = "client[country/text()='US']/name";
        let small_frag = strategy::cut_at_labels(&base, &["client"]).unwrap();
        let grown_frag = strategy::cut_at_labels(&grown, &["client"]).unwrap();

        let mut d_small = Deployment::new(&small_frag, 4, Placement::RoundRobin);
        let small_report = eval_pax2(&mut d_small, query, &EvalOptions::default());
        let mut d_grown = Deployment::new(&grown_frag, 4, Placement::RoundRobin);
        let grown_report = eval_pax2(&mut d_grown, query, &EvalOptions::default());

        // Same answers (the US clients of the original subtree), roughly
        // |FT|-proportional traffic: the grown tree has ~200 more fragments,
        // so allow that factor but nothing proportional to the ~2000 extra
        // nodes of data.
        let per_fragment_small =
            small_report.network_bytes() as f64 / small_frag.fragment_count() as f64;
        let per_fragment_grown =
            grown_report.network_bytes() as f64 / grown_frag.fragment_count() as f64;
        assert!(
            per_fragment_grown < per_fragment_small * 3.0,
            "per-fragment traffic grew with data size: {per_fragment_small:.0} -> {per_fragment_grown:.0}"
        );
    }

    #[test]
    fn reports_expose_cost_meters() {
        let tree = clientele();
        let fragmented = fig1_fragmentation(&tree);
        let mut d = Deployment::new(&fragmented, 4, Placement::RoundRobin);
        let report =
            eval_pax3(&mut d, "client[country/text()='US']/broker/name", &EvalOptions::default());
        assert!(report.total_ops() > 0);
        assert!(report.network_bytes() > 0);
        assert!(
            report.parallel_time() <= report.total_computation_time().max(report.parallel_time())
        );
        assert!(report.summary().contains("PaX3"));
        assert_eq!(report.fragments_total, 5);
    }

    #[test]
    fn executions_leave_no_scratch_parked_on_any_site() {
        // Per-execution scratch slots are never reused, so anything an
        // execution parks site-side and fails to take back accumulates
        // forever on a long-lived deployment. Regression: PaX3's qualifier
        // stage used to park per-node vectors for annotation-pruned
        // fragments that the selection stage never visited.
        use paxml_distsim::SiteId;
        let tree = clientele();
        let fragmented = fig1_fragmentation(&tree);
        let mut d = Deployment::new(&fragmented, 4, Placement::RoundRobin);
        for query in ["client[country/text()='US']/name", "//stock[qt >= 50]/code", "client/name"] {
            for options in [EvalOptions::without_annotations(), EvalOptions::with_annotations()] {
                for _ in 0..3 {
                    eval_pax3(&mut d, query, &options);
                    eval_pax2(&mut d, query, &options);
                }
            }
        }
        for site in 0..4 {
            assert_eq!(d.transport().scratch_len(SiteId(site)), 0, "scratch leaked at site {site}");
        }
    }

    #[test]
    fn sequential_and_parallel_deployments_agree() {
        let tree = clientele();
        let fragmented = fig1_fragmentation(&tree);
        let query = "//broker[//stock/code/text()='GOOG']/name";
        let mut par = Deployment::new(&fragmented, 4, Placement::RoundRobin);
        let mut seq = Deployment::new(&fragmented, 4, Placement::RoundRobin).sequential();
        let a = eval_pax2(&mut par, query, &EvalOptions::default());
        let b = eval_pax2(&mut seq, query, &EvalOptions::default());
        assert_eq!(a.answer_origins(), b.answer_origins());
        assert_eq!(a.stats.messages, b.stats.messages);
    }
}

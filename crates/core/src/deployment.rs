//! A deployment: the transport to the sites plus the coordinator-side
//! metadata (the fragment tree and its annotations).
//!
//! The coordinator (query site `S_Q`) knows the fragment tree `FT` — which
//! fragment is a sub-fragment of which, where each fragment lives, and the
//! optional XPath annotations — but never the fragment *data*; all data
//! access goes through the messaging layer so that traffic and visits are
//! accounted faithfully. The messaging layer itself is pluggable: by
//! default a deployment owns an in-process simulated [`Cluster`], but any
//! [`Transport`] (such as `paxml-wire`'s TCP cluster of real site
//! processes) can stand in — the drivers only ever see the trait.

use crate::error::{PaxError, PaxResult};
use crate::prune::PathTrie;
use crate::transport::{EpochRequest, ProtocolRequest, ProtocolResponse, Transport};
use paxml_distsim::{Cluster, ClusterStats, Placement, ReplicaSet, SiteId, LATEST_EPOCH};
use paxml_fragment::{FragmentId, FragmentTree, FragmentedTree};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// One immutable version of the deployment's *topology*: the fragment tree
/// (with its §5 annotations) plus the fragment→site placement map, tagged
/// with a monotonically increasing version.
///
/// Before online re-fragmentation, the topology was a constant captured at
/// deploy time. Now every execution resolves the topology **as of its
/// pinned epoch** via [`Deployment::topology_at`], so a reader that pinned
/// epoch `N` keeps routing fragments to the sites that held them at `N`
/// even while a re-fragmentation publishes epoch `N+1` with fragments moved
/// elsewhere — the topology is versioned by exactly the same MVCC scheme as
/// the fragment data itself.
#[derive(Debug, Clone)]
pub struct Topology {
    /// The fragment tree `FT` with its annotations.
    pub fragment_tree: FragmentTree,
    /// Which sites store each fragment — an ordered [`ReplicaSet`] per
    /// fragment, primary first. Unreplicated deployments hold solo sets.
    pub placement: BTreeMap<FragmentId, ReplicaSet>,
    /// Version counter: 0 for the deploy-time topology, bumped by every
    /// published re-fragmentation. Carried on `ExecReport` so callers can
    /// assert which topology served a read.
    pub version: u64,
    /// The label-path trie over the fragment annotations, built lazily on
    /// first use and then shared by every query evaluated under this
    /// topology version (the annotation analysis is `O(|distinct paths|)`
    /// through it instead of `O(Σ chain lengths)` per query).
    path_trie: OnceLock<Arc<PathTrie>>,
}

impl PartialEq for Topology {
    fn eq(&self, other: &Self) -> bool {
        // The trie cache is derived state: whether it has been built yet
        // must not affect topology identity.
        self.fragment_tree == other.fragment_tree
            && self.placement == other.placement
            && self.version == other.version
    }
}

impl Topology {
    /// Assemble a topology version. The path trie starts unbuilt.
    pub fn new(
        fragment_tree: FragmentTree,
        placement: BTreeMap<FragmentId, ReplicaSet>,
        version: u64,
    ) -> Topology {
        Topology { fragment_tree, placement, version, path_trie: OnceLock::new() }
    }

    /// The label-path trie for this topology version, built on first call
    /// and cached: concurrent queries share one `Arc`. `root_label` is the
    /// document root element's label (constant per deployment, so passing
    /// it per call cannot change the cached value).
    pub fn path_trie(&self, root_label: &str) -> Arc<PathTrie> {
        Arc::clone(
            self.path_trie
                .get_or_init(|| Arc::new(PathTrie::build(&self.fragment_tree, root_label))),
        )
    }
    /// The *primary* site storing a fragment (the first replica).
    ///
    /// # Panics
    /// Panics if the fragment is not part of this topology — routing a
    /// fragment through the wrong epoch's topology is a coordinator bug.
    pub fn site_of(&self, fragment: FragmentId) -> SiteId {
        self.replicas_of(fragment).primary()
    }

    /// All sites storing a fragment, primary first.
    ///
    /// # Panics
    /// Panics if the fragment is not part of this topology.
    pub fn replicas_of(&self, fragment: FragmentId) -> &ReplicaSet {
        self.placement.get(&fragment).expect("every fragment of a topology version has a placement")
    }

    /// Number of fragments in this topology.
    pub fn fragment_count(&self) -> usize {
        self.fragment_tree.len()
    }

    /// Group a set of fragments by their *primary* site. Health-aware
    /// executions route through `ExecCtx::group_by_site` instead, which
    /// falls over to secondary replicas when the primary is out.
    pub fn group_by_site(
        &self,
        fragments: impl IntoIterator<Item = FragmentId>,
    ) -> BTreeMap<SiteId, Vec<FragmentId>> {
        let mut out: BTreeMap<SiteId, Vec<FragmentId>> = BTreeMap::new();
        for f in fragments {
            out.entry(self.site_of(f)).or_default().push(f);
        }
        out
    }

    /// The sites that hold at least one fragment copy under this topology.
    pub fn occupied_sites(&self) -> BTreeSet<SiteId> {
        self.placement.values().flat_map(|set| set.sites().iter().copied()).collect()
    }
}

/// The epoch range over which one fragment copy is known to be outdated.
///
/// A copy goes stale when an update (or re-fragmentation install) could not
/// reach its site: every epoch from `stale_from` on reads wrong data there.
/// A later repair re-installs the copy as of epoch `repaired_at`, closing
/// the range — readers pinned inside `[stale_from, repaired_at)` must still
/// avoid the copy (the repair installed only the *current* snapshot, not
/// the missed intermediate versions), readers at or after `repaired_at` may
/// use it again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleRange {
    /// First epoch (inclusive) at which the copy is outdated.
    pub stale_from: u64,
    /// Epoch at which the copy was re-installed from a live replica, if it
    /// has been.
    pub repaired_at: Option<u64>,
}

impl StaleRange {
    /// Is the copy unusable for a reader pinned at `epoch`?
    pub fn covers(&self, epoch: u64) -> bool {
        self.stale_from <= epoch && self.repaired_at.is_none_or(|r| epoch < r)
    }
}

/// Coordinator-side health bookkeeping for the sites: fault strikes,
/// quarantine, and per-copy staleness.
///
/// The state machine per site is `live → (strike…) → quarantined →
/// (probe ok) → live`: a transient fault records a strike, enough strikes
/// quarantine the site (the router stops choosing its copies), and after a
/// cooldown the server probes it — readmission clears the strikes.
/// Staleness is tracked per *(fragment, site)* copy, not per site: a
/// readmitted site serves again immediately for copies that never missed a
/// write, while copies that did stay off the routing path until repaired.
///
/// All methods take `&self`: the tracker is shared by every concurrent
/// execution of a server and synchronizes internally.
#[derive(Debug, Default)]
pub struct SiteHealth {
    inner: Mutex<HealthState>,
}

#[derive(Debug, Default)]
struct HealthState {
    /// Consecutive transient faults per site since the last readmission.
    strikes: BTreeMap<SiteId, u32>,
    /// Quarantined sites with the time of quarantine entry (or of the last
    /// failed probe — the probe cooldown restarts on every failure).
    quarantined: BTreeMap<SiteId, Instant>,
    /// Copies that missed a write, with the epoch range they are unusable
    /// for.
    stale: BTreeMap<(FragmentId, SiteId), StaleRange>,
}

impl SiteHealth {
    fn lock(&self) -> std::sync::MutexGuard<'_, HealthState> {
        self.inner.lock().expect("the health lock is never poisoned")
    }

    /// Record a transient fault at `site`; once `quarantine_after` strikes
    /// accumulate, the site is quarantined.
    pub fn record_fault(&self, site: SiteId, quarantine_after: u32) {
        let mut state = self.lock();
        let strikes = state.strikes.entry(site).or_insert(0);
        *strikes += 1;
        if *strikes >= quarantine_after.max(1) {
            state.quarantined.entry(site).or_insert_with(Instant::now);
        }
    }

    /// Is the site currently quarantined?
    pub fn is_quarantined(&self, site: SiteId) -> bool {
        self.lock().quarantined.contains_key(&site)
    }

    /// All currently quarantined sites.
    pub fn quarantined_sites(&self) -> BTreeSet<SiteId> {
        self.lock().quarantined.keys().copied().collect()
    }

    /// Quarantined sites whose cooldown has elapsed — due for a liveness
    /// probe.
    pub fn due_for_probe(&self, cooldown: Duration) -> Vec<SiteId> {
        let state = self.lock();
        state
            .quarantined
            .iter()
            .filter(|(_, since)| since.elapsed() >= cooldown)
            .map(|(&site, _)| site)
            .collect()
    }

    /// A probe failed: keep the site quarantined and restart its cooldown.
    pub fn probe_failed(&self, site: SiteId) {
        if let Some(since) = self.lock().quarantined.get_mut(&site) {
            *since = Instant::now();
        }
    }

    /// A probe succeeded: readmit the site and clear its strikes. Stale
    /// copies it holds stay off the routing path until repaired.
    pub fn readmit(&self, site: SiteId) {
        let mut state = self.lock();
        state.quarantined.remove(&site);
        state.strikes.remove(&site);
    }

    /// Record that the copy of `fragment` at `site` missed the write that
    /// produced `epoch`. If the copy is already stale and unrepaired the
    /// earlier range stands; a repaired copy going stale again opens a new
    /// range.
    pub fn mark_stale(&self, fragment: FragmentId, site: SiteId, epoch: u64) {
        let mut state = self.lock();
        match state.stale.get_mut(&(fragment, site)) {
            Some(range) if range.repaired_at.is_none() => {
                range.stale_from = range.stale_from.min(epoch);
            }
            _ => {
                state
                    .stale
                    .insert((fragment, site), StaleRange { stale_from: epoch, repaired_at: None });
            }
        }
    }

    /// Is the copy of `fragment` at `site` unusable at `epoch`?
    pub fn is_stale_at(&self, fragment: FragmentId, site: SiteId, epoch: u64) -> bool {
        self.lock().stale.get(&(fragment, site)).is_some_and(|range| range.covers(epoch))
    }

    /// Every copy currently stale with no repair recorded.
    pub fn unrepaired_stale(&self) -> Vec<(FragmentId, SiteId)> {
        self.lock()
            .stale
            .iter()
            .filter(|(_, range)| range.repaired_at.is_none())
            .map(|(&key, _)| key)
            .collect()
    }

    /// Record that the copy of `fragment` at `site` was re-installed from a
    /// live replica as of `epoch`.
    pub fn mark_repaired(&self, fragment: FragmentId, site: SiteId, epoch: u64) {
        if let Some(range) = self.lock().stale.get_mut(&(fragment, site)) {
            range.repaired_at = Some(epoch);
        }
    }

    /// Drop staleness bookkeeping for copies of `fragment` (the fragment
    /// left the placement entirely, e.g. merged away).
    pub fn forget_fragment(&self, fragment: FragmentId) {
        self.lock().stale.retain(|(f, _), _| *f != fragment);
    }
}

/// How a deployment reaches its sites.
enum TransportHold {
    /// The in-process simulator (owned; configurable until shared).
    Sim(Arc<Cluster>),
    /// Any other transport (e.g. TCP to real site processes).
    Custom(Arc<dyn Transport>),
}

impl TransportHold {
    fn get(&self) -> &dyn Transport {
        match self {
            TransportHold::Sim(cluster) => cluster.as_ref(),
            TransportHold::Custom(transport) => transport.as_ref(),
        }
    }
}

/// A deployment of one fragmented document over a set of sites.
pub struct Deployment {
    /// The transport to the simulated or real sites.
    transport: TransportHold,
    /// The fragment tree **at deploy time** (kept for the deprecated
    /// unversioned API surface; epoch-aware callers use
    /// [`Deployment::topology_at`], which reflects re-fragmentations).
    pub fragment_tree: FragmentTree,
    /// Label of the original tree's root element (stored in the root
    /// fragment; needed by the annotation analysis).
    pub root_label: String,
    /// Cumulative number of real nodes across all fragments.
    pub total_nodes: usize,
    /// Topology versions, each tagged with the first epoch it serves,
    /// ascending. Append-only: [`Deployment::publish_topology`] pushes the
    /// next version before the epoch pointer swaps, so a reader that pins
    /// epoch `N+1` always finds `N+1`'s topology here.
    topologies: RwLock<Vec<(u64, Arc<Topology>)>>,
    /// Site health bookkeeping shared by every execution: strikes,
    /// quarantine, stale copies.
    health: SiteHealth,
}

impl Deployment {
    fn assemble(transport: TransportHold, fragmented: &FragmentedTree) -> Deployment {
        // Capture the deploy-time placement from the transport once; from
        // here on, routing is resolved through topology versions and the
        // transport's own static assignment is never consulted again (it
        // cannot know about fragments created by later splits).
        let placement: BTreeMap<FragmentId, ReplicaSet> = fragmented
            .fragment_tree
            .ids()
            .iter()
            .map(|&f| (f, transport.get().replicas_of(f)))
            .collect();
        let initial = Arc::new(Topology::new(fragmented.fragment_tree.clone(), placement, 0));
        Deployment {
            transport,
            fragment_tree: fragmented.fragment_tree.clone(),
            root_label: fragmented.root_fragment().root_label.clone(),
            total_nodes: fragmented.total_real_nodes(),
            topologies: RwLock::new(vec![(0, initial)]),
            health: SiteHealth::default(),
        }
    }

    /// Deploy a fragmented tree over `site_count` simulated sites.
    pub fn new(fragmented: &FragmentedTree, site_count: usize, placement: Placement) -> Self {
        Self::assemble(
            TransportHold::Sim(Arc::new(Cluster::new(fragmented, site_count, placement))),
            fragmented,
        )
    }

    /// Deploy over simulated sites with every fragment stored on
    /// `replication` sites (primary chosen by `placement`, secondaries on
    /// the next sites round-robin).
    pub fn replicated(
        fragmented: &FragmentedTree,
        site_count: usize,
        placement: Placement,
        replication: usize,
    ) -> Self {
        Self::assemble(
            TransportHold::Sim(Arc::new(Cluster::replicated(
                fragmented,
                site_count,
                placement,
                replication,
            ))),
            fragmented,
        )
    }

    /// Deploy with an explicit fragment→site assignment (simulated sites).
    pub fn with_assignment(
        fragmented: &FragmentedTree,
        site_count: usize,
        assignment: BTreeMap<FragmentId, SiteId>,
    ) -> Self {
        Self::assemble(
            TransportHold::Sim(Arc::new(Cluster::with_assignment(
                fragmented, site_count, assignment,
            ))),
            fragmented,
        )
    }

    /// Deploy every fragment onto one simulated site (degenerate baseline).
    pub fn single_site(fragmented: &FragmentedTree) -> Self {
        Self::new(fragmented, 1, Placement::SingleSite)
    }

    /// Run over an externally-built transport (e.g. a TCP cluster whose
    /// site processes have already loaded their fragments). The
    /// coordinator-side metadata still comes from the fragmented tree; the
    /// fragment *data* is wherever the transport put it.
    pub fn over_transport(fragmented: &FragmentedTree, transport: Arc<dyn Transport>) -> Self {
        Self::assemble(TransportHold::Custom(transport), fragmented)
    }

    /// Charge a fixed latency per coordinator round (simulated network RTT).
    /// No-op on non-simulator transports, which have real latency.
    pub fn with_round_latency(mut self, latency: Duration) -> Self {
        self.configure_sim(|cluster| cluster.round_latency = latency);
        self
    }

    /// Run rounds sequentially (deterministic) instead of thread-per-site.
    /// No-op on non-simulator transports.
    pub fn sequential(mut self) -> Self {
        self.configure_sim(|cluster| cluster.sequential = true);
        self
    }

    /// Apply a simulator-only configuration tweak. Only possible before the
    /// deployment is shared (builder phase); silently skipped on custom
    /// transports.
    pub(crate) fn configure_sim(&mut self, tweak: impl FnOnce(&mut Cluster)) {
        if let TransportHold::Sim(cluster) = &mut self.transport {
            let cluster = Arc::get_mut(cluster)
                .expect("simulator knobs are set in the builder phase, before sharing");
            tweak(cluster);
        }
    }

    /// The transport this deployment talks to its sites through.
    pub fn transport(&self) -> &dyn Transport {
        self.transport.get()
    }

    /// The in-process simulator cluster, when that is the transport
    /// (test instrumentation and simulator-only reporting).
    pub fn cluster(&self) -> Option<&Cluster> {
        self.transport().as_cluster()
    }

    /// Number of sites behind the transport.
    pub fn site_count(&self) -> usize {
        self.transport().site_count()
    }

    /// The topology serving `epoch`: the newest version whose first epoch
    /// is at or before it ([`LATEST_EPOCH`] resolves to the newest).
    pub fn topology_at(&self, epoch: u64) -> Arc<Topology> {
        let topologies = self.topologies.read().expect("topology lock poisoned");
        topologies
            .iter()
            .rev()
            .find(|(first, _)| *first <= epoch)
            .map(|(_, t)| Arc::clone(t))
            .unwrap_or_else(|| Arc::clone(&topologies[0].1))
    }

    /// The newest published topology.
    pub fn current_topology(&self) -> Arc<Topology> {
        self.topology_at(LATEST_EPOCH)
    }

    /// Publish the next topology version, serving epochs from
    /// `first_epoch` on. Called by the server's re-fragmentation path
    /// *before* the epoch pointer swaps, so by the time any reader can pin
    /// `first_epoch` its topology is already resolvable.
    pub(crate) fn publish_topology(&self, first_epoch: u64, topology: Arc<Topology>) {
        let mut topologies = self.topologies.write().expect("topology lock poisoned");
        debug_assert!(topologies.last().is_none_or(|(first, _)| *first < first_epoch));
        topologies.push((first_epoch, topology));
    }

    /// The *primary* site storing a fragment **under the newest topology**.
    /// Pinned executions should route through [`Deployment::topology_at`]
    /// instead.
    pub fn site_of(&self, fragment: FragmentId) -> SiteId {
        self.current_topology().site_of(fragment)
    }

    /// The health tracker shared by every execution over this deployment.
    pub fn health(&self) -> &SiteHealth {
        &self.health
    }

    /// Pick the replica of `fragment` a reader pinned at `epoch` should
    /// visit: the first copy (primary-first order) whose site is not
    /// quarantined and whose data is not stale at `epoch`. With no faults
    /// recorded this is always the primary, so fault-free meters are
    /// bit-identical to unreplicated routing.
    pub fn choose_replica(
        &self,
        topology: &Topology,
        fragment: FragmentId,
        epoch: u64,
    ) -> PaxResult<SiteId> {
        let replicas = topology.replicas_of(fragment);
        for &site in replicas.sites() {
            if !self.health.is_quarantined(site) && !self.health.is_stale_at(fragment, site, epoch)
            {
                return Ok(site);
            }
        }
        // Every copy is out. Blame the primary — with replication factor 1
        // this is exactly the site whose death the caller observed, which
        // keeps single-copy failure reporting unchanged.
        Err(PaxError::SiteUnreachable {
            site: replicas.primary(),
            detail: format!(
                "no live replica of fragment {} at epoch {epoch}: all of {replicas} are \
                 quarantined or stale",
                fragment.index()
            ),
        })
    }

    /// Hand out `n` scratch slots unique across concurrent executions.
    pub fn allocate_slots(&self, n: usize) -> usize {
        self.transport().allocate_slots(n)
    }

    /// A consistent snapshot of the cumulative meters since deployment.
    pub fn stats(&self) -> ClusterStats {
        self.transport().stats()
    }

    /// Number of fragments under the newest topology.
    pub fn fragment_count(&self) -> usize {
        self.current_topology().fragment_count()
    }

    /// Group a set of fragments by the site that stores them under the
    /// newest topology. Pinned executions should use
    /// [`Topology::group_by_site`] on their epoch's topology instead.
    pub fn group_by_site(
        &self,
        fragments: impl IntoIterator<Item = FragmentId>,
    ) -> BTreeMap<SiteId, Vec<FragmentId>> {
        self.current_topology().group_by_site(fragments)
    }

    /// Reset statistics and per-site scratch state between query runs.
    pub fn reset(&mut self) {
        self.transport().reset();
    }
}

/// A borrowed execution context: one execution's private view of a shared
/// deployment.
///
/// Every algorithm driver runs against an `ExecCtx` instead of a
/// `&mut Deployment`. The context borrows the deployment *shared* — any
/// number of executions may run concurrently over one deployment — and owns
/// this execution's [`ClusterStats`] recorder: [`ExecCtx::round`] forwards
/// to [`Transport::round_recorded`], so [`ExecCtx::stats`] accumulates the
/// visits/bytes/ops of **this execution only** while the transport's
/// cumulative counters grow in the background. This is what lets
/// per-execution reports stay exact without racing `delta_since` snapshots
/// of a shared counter.
///
/// Every context is **pinned to one deployment epoch**: each round wraps its
/// requests in an [`EpochRequest`] envelope carrying the pinned epoch (and a
/// retirement watermark), so all visits of an execution read one consistent
/// set of fragment snapshots no matter how many updates publish mid-flight.
/// [`ExecCtx::new`] pins [`LATEST_EPOCH`] — the unversioned semantics the
/// deprecated free-function drivers rely on; a `PaxServer` pins the epoch
/// current at execution entry via [`ExecCtx::pinned`].
pub struct ExecCtx<'a> {
    deployment: &'a Deployment,
    /// The epoch every round of this execution reads.
    epoch: u64,
    /// The retirement watermark shipped with every round (0 retires
    /// nothing; update rounds carry the coordinator's min-live epoch).
    retire_below: u64,
    /// Memoized per-fragment replica choice. PaX parks per-site scratch
    /// between its two visits, so *both* rounds of one execution must hit
    /// the same copy of each fragment even if health state changes
    /// mid-execution — the first resolution wins for the execution's whole
    /// lifetime.
    route: BTreeMap<FragmentId, SiteId>,
    /// The cluster meters of this execution only.
    pub stats: ClusterStats,
}

impl<'a> ExecCtx<'a> {
    /// Start an execution over a shared deployment with a fresh recorder,
    /// reading the newest fragment snapshots ([`LATEST_EPOCH`]).
    pub fn new(deployment: &'a Deployment) -> Self {
        Self::pinned(deployment, LATEST_EPOCH, 0)
    }

    /// Start an execution pinned to `epoch`, shipping `retire_below` as the
    /// retirement watermark on every round.
    pub fn pinned(deployment: &'a Deployment, epoch: u64, retire_below: u64) -> Self {
        ExecCtx {
            deployment,
            epoch,
            retire_below,
            route: BTreeMap::new(),
            stats: ClusterStats::default(),
        }
    }

    /// The replica site this execution visits for `fragment`: the first
    /// live copy under the execution's epoch, memoized so every later round
    /// of this execution routes identically (PaX's parked scratch lives at
    /// that site). Fails when no copy of the fragment is live.
    pub fn site_for(&mut self, fragment: FragmentId) -> PaxResult<SiteId> {
        if let Some(&site) = self.route.get(&fragment) {
            return Ok(site);
        }
        let topology = self.deployment.topology_at(self.epoch);
        let site = self.deployment.choose_replica(&topology, fragment, self.epoch)?;
        self.route.insert(fragment, site);
        Ok(site)
    }

    /// Group fragments by the replica site this execution visits for each
    /// — the health-aware, memoized counterpart of
    /// [`Topology::group_by_site`]. Every driver routes its rounds through
    /// this.
    pub fn group_by_site(
        &mut self,
        fragments: impl IntoIterator<Item = FragmentId>,
    ) -> PaxResult<BTreeMap<SiteId, Vec<FragmentId>>> {
        let mut out: BTreeMap<SiteId, Vec<FragmentId>> = BTreeMap::new();
        for f in fragments {
            out.entry(self.site_for(f)?).or_default().push(f);
        }
        Ok(out)
    }

    /// The shared deployment this execution runs over.
    pub fn deployment(&self) -> &'a Deployment {
        self.deployment
    }

    /// The epoch this execution is pinned to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The topology as of this execution's pinned epoch — the fragment
    /// tree and placement every round of this execution routes by.
    pub fn topology(&self) -> Arc<Topology> {
        self.deployment.topology_at(self.epoch)
    }

    /// One coordinator round, recorded into this execution's meters (and
    /// the transport's cumulative ones). Fails only on remote transports
    /// (a site process died); the in-process simulator cannot fail.
    pub fn round(
        &mut self,
        requests: BTreeMap<SiteId, ProtocolRequest>,
    ) -> PaxResult<BTreeMap<SiteId, ProtocolResponse>> {
        let requests: BTreeMap<SiteId, EpochRequest> = requests
            .into_iter()
            .map(|(site, body)| {
                (site, EpochRequest { epoch: self.epoch, retire_below: self.retire_below, body })
            })
            .collect();
        self.deployment.transport().round_recorded(&mut self.stats, requests)
    }

    /// Visit every occupied site with the same request, recorded into this
    /// execution's meters.
    pub fn broadcast(
        &mut self,
        request: ProtocolRequest,
    ) -> PaxResult<BTreeMap<SiteId, ProtocolResponse>> {
        let requests: BTreeMap<SiteId, ProtocolRequest> = self
            .deployment
            .transport()
            .occupied_sites()
            .into_iter()
            .map(|site| (site, request.clone()))
            .collect();
        self.round(requests)
    }

    /// Visit **every** site with the same request, occupied or not.
    /// Retirement sweeps use this: after a migration, the *old* site of a
    /// moved fragment may hold garbage versions even though the current
    /// topology places nothing there.
    pub fn broadcast_all(
        &mut self,
        request: ProtocolRequest,
    ) -> PaxResult<BTreeMap<SiteId, ProtocolResponse>> {
        let requests: BTreeMap<SiteId, ProtocolRequest> =
            (0..self.deployment.site_count()).map(|site| (SiteId(site), request.clone())).collect();
        self.round(requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxml_fragment::strategy::cut_children_of_root;
    use paxml_xml::TreeBuilder;

    fn fragmented() -> FragmentedTree {
        let tree = TreeBuilder::new("sites")
            .open("site")
            .leaf("a", "1")
            .close()
            .open("site")
            .leaf("a", "2")
            .close()
            .open("site")
            .leaf("a", "3")
            .close()
            .build();
        cut_children_of_root(&tree).unwrap()
    }

    #[test]
    fn deployment_exposes_metadata() {
        let f = fragmented();
        let d = Deployment::new(&f, 2, Placement::RoundRobin);
        assert_eq!(d.fragment_count(), 4);
        assert_eq!(d.root_label, "sites");
        assert_eq!(d.total_nodes, f.total_real_nodes());
        let groups = d.group_by_site(vec![FragmentId(0), FragmentId(1), FragmentId(2)]);
        assert_eq!(groups[&SiteId(0)], vec![FragmentId(0), FragmentId(2)]);
        assert_eq!(groups[&SiteId(1)], vec![FragmentId(1)]);
    }

    #[test]
    fn builder_style_options() {
        let f = fragmented();
        let d =
            Deployment::single_site(&f).with_round_latency(Duration::from_millis(1)).sequential();
        assert_eq!(d.site_count(), 1);
        let cluster = d.cluster().expect("a default deployment is simulator-backed");
        assert!(cluster.sequential);
        assert_eq!(cluster.round_latency, Duration::from_millis(1));
    }

    #[test]
    fn a_custom_transport_is_reachable_through_the_trait_surface() {
        // The simulator itself, held behind `Arc<dyn Transport>`: exercises
        // the custom-transport arm end to end.
        let f = fragmented();
        let cluster: Arc<dyn Transport> = Arc::new(Cluster::new(&f, 2, Placement::RoundRobin));
        let d = Deployment::over_transport(&f, cluster);
        assert!(d.cluster().is_some(), "as_cluster sees through the Arc");
        assert_eq!(d.site_count(), 2);
        let mut ctx = ExecCtx::new(&d);
        let responses = ctx.broadcast(ProtocolRequest::Fetch).unwrap();
        let shipped: usize =
            responses.into_values().map(|r| r.into_fragments().unwrap().len()).sum();
        assert_eq!(shipped, d.fragment_count());
    }
}

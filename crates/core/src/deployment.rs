//! A deployment: the simulated cluster plus the coordinator-side metadata
//! (the fragment tree and its annotations).
//!
//! The coordinator (query site `S_Q`) knows the fragment tree `FT` — which
//! fragment is a sub-fragment of which, where each fragment lives, and the
//! optional XPath annotations — but never the fragment *data*; all data
//! access goes through the messaging layer so that traffic and visits are
//! accounted faithfully.

use paxml_distsim::{Cluster, ClusterStats, Placement, SiteId, SiteLocal};
use paxml_fragment::{FragmentId, FragmentTree, FragmentedTree};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Duration;

/// A simulated deployment of one fragmented document over a set of sites.
pub struct Deployment {
    /// The simulated sites and their statistics.
    pub cluster: Cluster,
    /// The fragment tree (coordinator metadata).
    pub fragment_tree: FragmentTree,
    /// Label of the original tree's root element (stored in the root
    /// fragment; needed by the annotation analysis).
    pub root_label: String,
    /// Cumulative number of real nodes across all fragments.
    pub total_nodes: usize,
}

impl Deployment {
    /// Deploy a fragmented tree over `site_count` sites.
    pub fn new(fragmented: &FragmentedTree, site_count: usize, placement: Placement) -> Self {
        Deployment {
            cluster: Cluster::new(fragmented, site_count, placement),
            fragment_tree: fragmented.fragment_tree.clone(),
            root_label: fragmented.root_fragment().root_label.clone(),
            total_nodes: fragmented.total_real_nodes(),
        }
    }

    /// Deploy with an explicit fragment→site assignment.
    pub fn with_assignment(
        fragmented: &FragmentedTree,
        site_count: usize,
        assignment: BTreeMap<FragmentId, SiteId>,
    ) -> Self {
        Deployment {
            cluster: Cluster::with_assignment(fragmented, site_count, assignment),
            fragment_tree: fragmented.fragment_tree.clone(),
            root_label: fragmented.root_fragment().root_label.clone(),
            total_nodes: fragmented.total_real_nodes(),
        }
    }

    /// Deploy every fragment onto one site (degenerate baseline).
    pub fn single_site(fragmented: &FragmentedTree) -> Self {
        Self::new(fragmented, 1, Placement::SingleSite)
    }

    /// Charge a fixed latency per coordinator round (simulated network RTT).
    pub fn with_round_latency(mut self, latency: Duration) -> Self {
        self.cluster.round_latency = latency;
        self
    }

    /// Run rounds sequentially (deterministic) instead of thread-per-site.
    pub fn sequential(mut self) -> Self {
        self.cluster.sequential = true;
        self
    }

    /// Number of fragments in the deployment.
    pub fn fragment_count(&self) -> usize {
        self.fragment_tree.len()
    }

    /// Group a set of fragments by the site that stores them.
    pub fn group_by_site(
        &self,
        fragments: impl IntoIterator<Item = FragmentId>,
    ) -> BTreeMap<SiteId, Vec<FragmentId>> {
        let mut out: BTreeMap<SiteId, Vec<FragmentId>> = BTreeMap::new();
        for f in fragments {
            out.entry(self.cluster.site_of(f)).or_default().push(f);
        }
        out
    }

    /// Reset statistics and per-site scratch state between query runs.
    pub fn reset(&mut self) {
        self.cluster.reset();
    }
}

/// A borrowed execution context: one execution's private view of a shared
/// deployment.
///
/// Every algorithm driver runs against an `ExecCtx` instead of a
/// `&mut Deployment`. The context borrows the deployment *shared* — any
/// number of executions may run concurrently over one deployment — and owns
/// this execution's [`ClusterStats`] recorder: [`ExecCtx::round`] forwards
/// to [`Cluster::round_recorded`], so [`ExecCtx::stats`] accumulates the
/// visits/bytes/ops of **this execution only** while the cluster's
/// cumulative counters grow in the background. This is what lets
/// per-execution reports stay exact without racing `delta_since` snapshots
/// of a shared counter.
pub struct ExecCtx<'a> {
    deployment: &'a Deployment,
    /// The cluster meters of this execution only.
    pub stats: ClusterStats,
}

impl<'a> ExecCtx<'a> {
    /// Start an execution over a shared deployment with a fresh recorder.
    pub fn new(deployment: &'a Deployment) -> Self {
        ExecCtx { deployment, stats: ClusterStats::default() }
    }

    /// The shared deployment this execution runs over.
    pub fn deployment(&self) -> &'a Deployment {
        self.deployment
    }

    /// One coordinator round, recorded into this execution's meters (and
    /// the cluster's cumulative ones).
    pub fn round<Req, Resp, F>(
        &mut self,
        requests: BTreeMap<SiteId, Req>,
        task: F,
    ) -> BTreeMap<SiteId, Resp>
    where
        Req: Serialize + Send + 'static,
        Resp: Serialize + Send + 'static,
        F: Fn(&mut SiteLocal, Req) -> Resp + Send + Sync + 'static,
    {
        self.deployment.cluster.round_recorded(&mut self.stats, requests, task)
    }

    /// Visit every occupied site with the same request, recorded into this
    /// execution's meters.
    pub fn broadcast<Req, Resp, F>(&mut self, request: Req, task: F) -> BTreeMap<SiteId, Resp>
    where
        Req: Serialize + Send + Clone + 'static,
        Resp: Serialize + Send + 'static,
        F: Fn(&mut SiteLocal, Req) -> Resp + Send + Sync + 'static,
    {
        self.deployment.cluster.broadcast_recorded(&mut self.stats, request, task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxml_fragment::strategy::cut_children_of_root;
    use paxml_xml::TreeBuilder;

    fn fragmented() -> FragmentedTree {
        let tree = TreeBuilder::new("sites")
            .open("site")
            .leaf("a", "1")
            .close()
            .open("site")
            .leaf("a", "2")
            .close()
            .open("site")
            .leaf("a", "3")
            .close()
            .build();
        cut_children_of_root(&tree).unwrap()
    }

    #[test]
    fn deployment_exposes_metadata() {
        let f = fragmented();
        let d = Deployment::new(&f, 2, Placement::RoundRobin);
        assert_eq!(d.fragment_count(), 4);
        assert_eq!(d.root_label, "sites");
        assert_eq!(d.total_nodes, f.total_real_nodes());
        let groups = d.group_by_site(vec![FragmentId(0), FragmentId(1), FragmentId(2)]);
        assert_eq!(groups[&SiteId(0)], vec![FragmentId(0), FragmentId(2)]);
        assert_eq!(groups[&SiteId(1)], vec![FragmentId(1)]);
    }

    #[test]
    fn builder_style_options() {
        let f = fragmented();
        let d =
            Deployment::single_site(&f).with_round_latency(Duration::from_millis(1)).sequential();
        assert_eq!(d.cluster.site_count(), 1);
        assert!(d.cluster.sequential);
        assert_eq!(d.cluster.round_latency, Duration::from_millis(1));
    }
}

//! The XPath-annotation optimization of §5.
//!
//! The fragment tree `FT` carries, on every edge, the label path connecting
//! the two fragment roots in the original tree. Before evaluating the
//! selection path (Stage 2 of PaX3, Stage 1 of PaX2), the coordinator walks
//! those annotations to decide
//!
//! 1. **which fragments are relevant** — a fragment that can neither contain
//!    answer nodes nor contribute to the qualifier of a potentially-matching
//!    node is skipped entirely (Example 5.1: for `client/name`, fragments
//!    `F1`, `F2`, `F3` of the running example are ruled out);
//! 2. **the exact initial stack vector** of every relevant fragment when the
//!    query has *no qualifiers*: the annotation describes the ancestors of
//!    the fragment root precisely, so the top-down pass can start from
//!    concrete truth values instead of variables, every answer is certain,
//!    and the final answer-collection visit can be merged into the same
//!    round (this is why `PaX3-XA` needs one visit fewer for Q1 in Fig. 9).

use paxml_fragment::{FragmentId, FragmentTree};
use paxml_xpath::{CompiledQuery, SelItem};
use std::collections::{BTreeMap, BTreeSet};

/// A trie over the label paths from the document root to every fragment
/// root.
///
/// [`analyze`] recomputes the whole root-to-fragment label chain for every
/// fragment, so fragmentations in which many fragments hang off the same
/// ancestor path (the common case: cut every `client`, every `broker`, …)
/// pay for each shared prefix once *per fragment*. The trie merges those
/// chains: each distinct prefix is one node, each fragment is registered on
/// the node its root path ends at, and [`analyze_with_trie`] walks the trie
/// once, computing every prefix's `SV` vector exactly once — `O(|distinct
/// paths| · |Q|)` instead of `O(Σ path lengths · |Q|)`.
///
/// The trie depends only on the fragment tree and the document root label,
/// not on any query, so a deployment builds it once per topology version
/// (see `Topology::path_trie`) and shares it across all prepared queries.
#[derive(Debug, Clone, PartialEq)]
pub struct PathTrie {
    /// Nodes in creation order; node 0 is the document root element.
    nodes: Vec<TrieNode>,
}

/// One distinct label path in a [`PathTrie`].
#[derive(Debug, Clone, PartialEq)]
struct TrieNode {
    /// The element label this node adds to its parent's path.
    label: String,
    /// Child nodes, keyed by their label (deterministic iteration order).
    children: BTreeMap<String, usize>,
    /// Fragments whose root sits exactly at this label path.
    fragments: Vec<FragmentId>,
}

impl PathTrie {
    /// Build the trie for a fragment tree. `root_label` is the label of the
    /// original tree's root element (the path of every fragment starts
    /// there). The root fragment itself is not registered — it is always
    /// relevant and handled specially by the analysis.
    pub fn build(ft: &FragmentTree, root_label: &str) -> PathTrie {
        let mut nodes = vec![TrieNode {
            label: root_label.to_string(),
            children: BTreeMap::new(),
            fragments: Vec::new(),
        }];
        for &fragment in ft.ids() {
            if fragment == FragmentId::ROOT {
                continue;
            }
            let mut at = 0usize;
            for step in ft.annotation_from_root(fragment).steps() {
                at = match nodes[at].children.get(step) {
                    Some(&next) => next,
                    None => {
                        let next = nodes.len();
                        nodes.push(TrieNode {
                            label: step.clone(),
                            children: BTreeMap::new(),
                            fragments: Vec::new(),
                        });
                        nodes[at].children.insert(step.clone(), next);
                        next
                    }
                };
            }
            nodes[at].fragments.push(fragment);
        }
        PathTrie { nodes }
    }

    /// Number of distinct label paths (trie nodes), including the root.
    /// `analyze_with_trie` computes exactly this many `SV` vectors, against
    /// the sum of all chain lengths for [`analyze`].
    pub fn distinct_paths(&self) -> usize {
        self.nodes.len()
    }
}

/// [`analyze`], but over a prebuilt [`PathTrie`]: produces the **identical**
/// [`AnnotationAnalysis`] while computing each distinct root-to-fragment
/// label prefix's `SV` vector only once.
pub fn analyze_with_trie(query: &CompiledQuery, trie: &PathTrie) -> AnnotationAnalysis {
    let mut relevant: BTreeSet<FragmentId> = BTreeSet::new();
    let mut exact_init: BTreeMap<FragmentId, Vec<bool>> = BTreeMap::new();
    let no_qualifiers = !query.has_qualifiers() && !query.has_positions();
    let qualifier_positions = qualifier_positions(query);

    relevant.insert(FragmentId::ROOT);
    if no_qualifiers {
        exact_init.insert(FragmentId::ROOT, document_vector(query));
    }

    // DFS carrying (trie node, depth, parent SV, cumulative qualifier-feed).
    // `feeds` is true when *some* prefix on the path so far optimistically
    // matches a qualifier-bearing selection prefix — fragments below such a
    // node can influence that qualifier and must stay.
    let mut stack: Vec<(usize, usize, Vec<bool>, bool)> =
        vec![(0, 0, document_vector(query), false)];
    while let Some((at, depth, parent_sv, parent_feeds)) = stack.pop() {
        let node = &trie.nodes[at];
        let sv = step_vector(query, &parent_sv, &node.label, depth);
        let feeds = parent_feeds || qualifier_positions.iter().any(|&pos| sv[pos]);
        let may_contain_answers = sv.iter().any(|&b| b);
        if may_contain_answers || feeds {
            for &fragment in &node.fragments {
                relevant.insert(fragment);
                if no_qualifiers {
                    exact_init.insert(fragment, parent_sv.clone());
                }
            }
        }
        for &child in node.children.values() {
            stack.push((child, depth + 1, sv.clone(), feeds));
        }
    }

    AnnotationAnalysis { relevant, exact_init, can_skip_final_stage: no_qualifiers }
}

/// Outcome of analysing the annotated fragment tree for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnotationAnalysis {
    /// Fragments that must participate in the selection evaluation.
    pub relevant: BTreeSet<FragmentId>,
    /// When the query has no qualifiers: the exact initial `SV` vector
    /// (ancestor summary) of every fragment, derived purely from the
    /// annotations. Empty when the query has qualifiers, in which case the
    /// fragments start from variables as usual.
    pub exact_init: BTreeMap<FragmentId, Vec<bool>>,
    /// True when candidate answers cannot arise (exact init vectors are
    /// available), so the dedicated answer-collection stage can be skipped.
    pub can_skip_final_stage: bool,
}

impl AnnotationAnalysis {
    /// The trivial analysis that keeps every fragment and knows nothing —
    /// what the algorithms use when annotations are disabled ("NA" curves).
    pub fn keep_all(ft: &FragmentTree) -> Self {
        AnnotationAnalysis {
            relevant: ft.ids().iter().copied().collect(),
            exact_init: BTreeMap::new(),
            can_skip_final_stage: false,
        }
    }
}

/// Analyse the annotated fragment tree for `query`. `root_label` is the
/// label of the original tree's root element (stored in the root fragment).
pub fn analyze(query: &CompiledQuery, ft: &FragmentTree, root_label: &str) -> AnnotationAnalysis {
    let mut relevant: BTreeSet<FragmentId> = BTreeSet::new();
    let mut exact_init: BTreeMap<FragmentId, Vec<bool>> = BTreeMap::new();
    // Exact init vectors can only be derived from the annotations when the
    // query has neither qualifiers nor positional predicates: positional
    // facts depend on actual sibling order, which labels alone cannot give.
    // (Relevance pruning stays available for positional queries — ignoring
    // the positional constraints is optimistic, hence sound.)
    let no_qualifiers = !query.has_qualifiers() && !query.has_positions();

    let qualifier_positions = qualifier_positions(query);

    relevant.insert(FragmentId::ROOT);
    if no_qualifiers {
        exact_init.insert(FragmentId::ROOT, document_vector(query));
    }

    for &fragment in ft.ids() {
        if fragment == FragmentId::ROOT {
            continue;
        }
        // The chain of labels from the root element down to this fragment's
        // root (both inclusive).
        let mut chain: Vec<String> = vec![root_label.to_string()];
        chain.extend(ft.annotation_from_root(fragment).steps().iter().cloned());

        let vectors = chain_vectors(query, &chain);
        let at_root_of_fragment = vectors.last().expect("chain is never empty");

        // (a) The fragment may contain answer nodes: some prefix of the
        //     selection path is (optimistically) matched at its root, so a
        //     completion inside the fragment is possible.
        let may_contain_answers = at_root_of_fragment.iter().any(|&b| b);

        // (b) The fragment may contribute to a qualifier of a node above it:
        //     some ancestor on the chain (any chain position) optimistically
        //     matches a qualifier-bearing prefix; the qualifier looks
        //     downward, i.e. possibly into this fragment.
        let may_feed_a_qualifier =
            qualifier_positions.iter().any(|&pos| vectors.iter().any(|sv| sv[pos]));

        if may_contain_answers || may_feed_a_qualifier {
            relevant.insert(fragment);
            if no_qualifiers {
                // The exact ancestor summary of the fragment root is the SV
                // vector of its parent: the second-to-last chain vector.
                let parent_vector = if vectors.len() >= 2 {
                    vectors[vectors.len() - 2].clone()
                } else {
                    document_vector(query)
                };
                exact_init.insert(fragment, parent_vector);
            }
        }
    }

    AnnotationAnalysis { relevant, exact_init, can_skip_final_stage: no_qualifiers }
}

/// The `SV` vector of the implicit document node, as plain booleans.
fn document_vector(query: &CompiledQuery) -> Vec<bool> {
    let mut sv = vec![false; query.svect_len()];
    if query.absolute {
        sv[0] = true;
        for (idx, item) in query.sel_items.iter().enumerate() {
            match item {
                SelItem::DescendantOrSelf => sv[idx + 1] = sv[idx],
                _ => break,
            }
        }
    }
    sv
}

/// Selection items that carry qualifiers: position j means the qualifier
/// applies to nodes matched by prefix j (SVect entry j).
fn qualifier_positions(query: &CompiledQuery) -> Vec<usize> {
    query
        .sel_items
        .iter()
        .enumerate()
        .filter_map(|(idx, item)| match item {
            SelItem::SelfQualifier(_) => Some(idx), // applies to prefix `idx` (entry idx)
            _ => None,
        })
        .collect()
}

/// The optimistic `SV` vector of an element with `label` at `depth` below
/// the document node, given its parent's vector. Qualifier items are assumed
/// true (we cannot evaluate them from labels alone), which is exactly what
/// keeps the pruning sound; when the query has no qualifiers the vector is
/// exact.
fn step_vector(query: &CompiledQuery, parent: &[bool], label: &str, depth: usize) -> Vec<bool> {
    let mut sv = vec![false; query.svect_len()];
    // Entry 0: the context marker — true at the root element for relative
    // queries.
    sv[0] = !query.absolute && depth == 0;
    for (idx, item) in query.sel_items.iter().enumerate() {
        let i = idx + 1;
        sv[i] = match item {
            SelItem::Label(l) => parent[i - 1] && l == label,
            SelItem::Wildcard => parent[i - 1],
            SelItem::DescendantOrSelf => parent[i] || sv[i - 1],
            SelItem::SelfQualifier(_) => sv[i - 1], // optimistic
        };
    }
    sv
}

/// Optimistic `SV` vectors along a label chain starting at the root element.
fn chain_vectors(query: &CompiledQuery, chain: &[String]) -> Vec<Vec<bool>> {
    let mut vectors: Vec<Vec<bool>> = Vec::with_capacity(chain.len());
    let mut parent = document_vector(query);
    for (depth, label) in chain.iter().enumerate() {
        let sv = step_vector(query, &parent, label, depth);
        vectors.push(sv.clone());
        parent = sv;
    }
    vectors
}

#[cfg(test)]
#[allow(deprecated)] // the legacy shims stay covered until they are removed
mod tests {
    use super::*;
    use paxml_xml::LabelPath;
    use paxml_xpath::compile_text;

    /// The annotated fragment tree of Fig. 6 (running example).
    fn fig6() -> FragmentTree {
        let mut ft = FragmentTree::new();
        ft.add_child(FragmentId(0), FragmentId(1), LabelPath::parse("client/broker"));
        ft.add_child(FragmentId(1), FragmentId(2), LabelPath::parse("market"));
        ft.add_child(FragmentId(0), FragmentId(3), LabelPath::parse("client"));
        ft.add_child(FragmentId(0), FragmentId(4), LabelPath::parse("client/broker/market"));
        ft
    }

    #[test]
    fn example_5_1_prunes_the_expected_fragments() {
        // Query client/name over Fig. 6: F0 and the client fragment are
        // relevant; the broker and market fragments are ruled out.
        let q = compile_text("client/name").unwrap();
        let a = analyze(&q, &fig6(), "clientele");
        assert!(a.relevant.contains(&FragmentId(0)));
        assert!(a.relevant.contains(&FragmentId(3)));
        assert!(!a.relevant.contains(&FragmentId(1)));
        assert!(!a.relevant.contains(&FragmentId(2)));
        assert!(!a.relevant.contains(&FragmentId(4)));
        assert!(a.can_skip_final_stage);
        // The client fragment's exact init vector marks "the parent is the
        // context" (its parent is the clientele root), so its own `client`
        // step can match.
        let init = &a.exact_init[&FragmentId(3)];
        assert!(init[0]);
        assert!(!init[1]);
    }

    #[test]
    fn broker_query_keeps_broker_chain_only() {
        let q = compile_text("client/broker/name").unwrap();
        let a = analyze(&q, &fig6(), "clientele");
        assert!(a.relevant.contains(&FragmentId(1))); // broker fragment: may hold name answers
        assert!(!a.relevant.contains(&FragmentId(2))); // market fragment cannot
        assert!(!a.relevant.contains(&FragmentId(4)));
        assert!(a.relevant.contains(&FragmentId(3))); // client fragment may contain broker/name inside
        let init_f1 = &a.exact_init[&FragmentId(1)];
        // Parent of F1's root is a client node matched by prefix 1.
        assert!(init_f1[1]);
        assert!(!init_f1[2]);
    }

    #[test]
    fn descendant_query_keeps_everything() {
        let q = compile_text("//name").unwrap();
        let a = analyze(&q, &fig6(), "clientele");
        for f in 0..5 {
            assert!(a.relevant.contains(&FragmentId(f)), "F{f} must stay relevant under //");
        }
    }

    #[test]
    fn qualifier_queries_keep_fragments_that_feed_the_qualifier() {
        // The qualifier sits on client; the market fragment (below a broker
        // below a client) can influence it even though it cannot contain
        // answers, so it must stay.
        let q = compile_text("client[broker/market/name/text()='NASDAQ']/name").unwrap();
        let a = analyze(&q, &fig6(), "clientele");
        assert!(a.relevant.contains(&FragmentId(1)));
        assert!(a.relevant.contains(&FragmentId(2)));
        assert!(a.relevant.contains(&FragmentId(3)));
        assert!(a.relevant.contains(&FragmentId(4)));
        assert!(!a.can_skip_final_stage);
        assert!(a.exact_init.is_empty());
    }

    #[test]
    fn wrong_root_label_prunes_everything_but_the_root_fragment() {
        let q = compile_text("/portfolio/client/name").unwrap();
        let a = analyze(&q, &fig6(), "clientele");
        assert_eq!(a.relevant.len(), 1);
        assert!(a.relevant.contains(&FragmentId(0)));
    }

    #[test]
    fn xmark_q1_over_ft2_like_tree_prunes_deep_fragments() {
        // FT2 of Fig. 8: sub-fragments rooted at regions / open_auctions /
        // closed_auctions cannot contain /sites/site/people/person answers.
        let mut ft = FragmentTree::new();
        ft.add_child(FragmentId(0), FragmentId(1), LabelPath::parse("site"));
        ft.add_child(FragmentId(0), FragmentId(2), LabelPath::parse("site"));
        ft.add_child(FragmentId(0), FragmentId(3), LabelPath::parse("site"));
        ft.add_child(FragmentId(1), FragmentId(4), LabelPath::parse("regions"));
        ft.add_child(FragmentId(1), FragmentId(5), LabelPath::parse("open_auctions"));
        ft.add_child(FragmentId(2), FragmentId(6), LabelPath::parse("regions"));
        ft.add_child(FragmentId(2), FragmentId(7), LabelPath::parse("closed_auctions"));

        let q1 = compile_text("/sites/site/people/person").unwrap();
        let a = analyze(&q1, &ft, "sites");
        assert!(a.relevant.contains(&FragmentId(1)));
        assert!(a.relevant.contains(&FragmentId(2)));
        assert!(a.relevant.contains(&FragmentId(3)));
        assert!(!a.relevant.contains(&FragmentId(4)));
        assert!(!a.relevant.contains(&FragmentId(5)));
        assert!(!a.relevant.contains(&FragmentId(6)));
        assert!(!a.relevant.contains(&FragmentId(7)));

        // Q2 = /sites/site/open_auctions//annotation keeps the open_auctions
        // fragments but still prunes regions/closed_auctions (the paper's
        // point that `//` after a matching prefix does not kill pruning).
        let q2 = compile_text("/sites/site/open_auctions//annotation").unwrap();
        let a = analyze(&q2, &ft, "sites");
        assert!(a.relevant.contains(&FragmentId(5)));
        assert!(!a.relevant.contains(&FragmentId(4)));
        assert!(!a.relevant.contains(&FragmentId(6)));
        assert!(!a.relevant.contains(&FragmentId(7)));

        // Q4 = /sites//people/person[...]/creditcard has a leading-ish `//`:
        // every site fragment stays, and because the `//` can match at any
        // depth the regions fragments stay as well.
        let q4 = compile_text(
            "/sites//people/person[profile/age > 20 and address/country=\"US\"]/creditcard",
        )
        .unwrap();
        let a = analyze(&q4, &ft, "sites");
        for f in 1..8 {
            assert!(a.relevant.contains(&FragmentId(f)), "F{f} must stay for Q4");
        }
    }

    #[test]
    fn qualifier_free_queries_get_exact_init_vectors_for_every_relevant_fragment() {
        // Without qualifiers the chain vectors are exact, so *every* relevant
        // fragment must come with a concrete init vector and the final
        // answer-collection stage is skippable — one visit per site.
        let ft = fig6();
        for query_text in ["client/name", "client/broker/name", "//name", "*/*/name"] {
            let q = compile_text(query_text).unwrap();
            let a = analyze(&q, &ft, "clientele");
            assert!(a.can_skip_final_stage, "{query_text} has no qualifiers");
            for f in &a.relevant {
                if *f == FragmentId::ROOT {
                    continue;
                }
                let init = a.exact_init.get(f).unwrap_or_else(|| {
                    panic!("{query_text}: relevant fragment {f} lacks an exact init vector")
                });
                assert_eq!(init.len(), q.svect_len());
            }
            // Pruned fragments never get an init vector.
            for f in ft.ids() {
                if !a.relevant.contains(f) {
                    assert!(!a.exact_init.contains_key(f));
                }
            }
        }
    }

    #[test]
    fn everything_pruned_yields_an_empty_deployment_answer() {
        // A query whose first step matches nothing prunes every non-root
        // fragment — and the end-to-end evaluation over a real deployment
        // returns the empty answer after touching only the root fragment.
        use crate::{pax2, pax3, Deployment, EvalOptions};
        use paxml_distsim::Placement;
        use paxml_fragment::fragment_at;
        use paxml_xml::TreeBuilder;

        let tree = TreeBuilder::new("clientele")
            .open("client")
            .leaf("country", "US")
            .open("broker")
            .leaf("name", "E*trade")
            .close()
            .close()
            .build();
        let broker = tree.find_first("broker").unwrap();
        let client = tree.find_first("client").unwrap();
        let fragmented = fragment_at(&tree, &[client, broker]).unwrap();

        for query in ["/portfolio/client/name", "zzz/name"] {
            let q = compile_text(query).unwrap();
            let a = analyze(&q, &fragmented.fragment_tree, "clientele");
            assert_eq!(a.relevant.len(), 1, "{query} must prune every non-root fragment");
            assert!(a.relevant.contains(&FragmentId::ROOT));

            let mut d = Deployment::new(&fragmented, 3, Placement::RoundRobin);
            let p2 = pax2::evaluate(&mut d, query, &EvalOptions::with_annotations()).unwrap();
            assert!(p2.answers.is_empty(), "{query} must have no answers");
            assert_eq!(p2.fragments_evaluated, 1);
            let mut d = Deployment::new(&fragmented, 3, Placement::RoundRobin);
            let p3 = pax3::evaluate(&mut d, query, &EvalOptions::with_annotations()).unwrap();
            assert!(p3.answers.is_empty());
            // Only the root fragment's site is ever visited.
            let visited: Vec<_> = d
                .stats()
                .sites
                .iter()
                .filter(|(_, s)| s.visits > 0)
                .map(|(site, _)| *site)
                .collect();
            assert_eq!(visited, vec![d.site_of(FragmentId::ROOT)]);
        }
    }

    #[test]
    fn trie_analysis_is_identical_to_the_chain_analysis() {
        // The trie is a pure strength reduction: for *every* query and every
        // fragment tree the two analyses must agree exactly. Random fragment
        // trees (deterministic LCG) × a battery that covers qualifiers,
        // `//`, wildcards, absolute paths, attributes and positions.
        let labels = ["client", "broker", "market", "name", "stock"];
        let queries = [
            "client/name",
            "client/broker/name",
            "//name",
            "*/*/name",
            "/clientele/client/broker",
            "client[broker/market]/name",
            "client[name/text()='Anna']/broker",
            "//broker[not(market)]/name",
            "client[@vip]/name",
            "client/broker[2]/market",
            "client[1]/name[last()]",
            "//market[@cap > 100]/stock",
        ];
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as usize
        };
        for _ in 0..25 {
            let mut ft = FragmentTree::new();
            let fragment_count = 2 + next() % 12;
            for f in 1..fragment_count {
                let parent = FragmentId(next() % f);
                let depth = 1 + next() % 3;
                let path: Vec<&str> = (0..depth).map(|_| labels[next() % labels.len()]).collect();
                ft.add_child(parent, FragmentId(f), LabelPath::parse(&path.join("/")));
            }
            let trie = PathTrie::build(&ft, "clientele");
            for query_text in queries {
                let q = compile_text(query_text).unwrap();
                let plain = analyze(&q, &ft, "clientele");
                let via_trie = analyze_with_trie(&q, &trie);
                assert_eq!(plain, via_trie, "disagreement on {query_text} over {ft:?}");
            }
        }
    }

    #[test]
    fn trie_merges_shared_prefixes() {
        // Ten sibling fragments all reachable via client/broker: the chain
        // analysis walks 3 labels per fragment (30 vector computations), the
        // trie holds root + client + broker + one leaf each.
        let mut ft = FragmentTree::new();
        for f in 1..=10 {
            ft.add_child(
                FragmentId(0),
                FragmentId(f),
                LabelPath::parse(&format!("client/broker/market{f}")),
            );
        }
        let trie = PathTrie::build(&ft, "clientele");
        assert_eq!(trie.distinct_paths(), 1 + 2 + 10);
        let q = compile_text("client/broker/name").unwrap();
        assert_eq!(analyze_with_trie(&q, &trie), analyze(&q, &ft, "clientele"));
    }

    #[test]
    fn keep_all_is_the_na_baseline() {
        let ft = fig6();
        let a = AnnotationAnalysis::keep_all(&ft);
        assert_eq!(a.relevant.len(), 5);
        assert!(!a.can_skip_final_stage);
    }

    #[test]
    fn exact_init_matches_absolute_queries() {
        let mut ft = FragmentTree::new();
        ft.add_child(FragmentId(0), FragmentId(1), LabelPath::parse("site/people"));
        let q = compile_text("/sites/site/people/person").unwrap();
        let a = analyze(&q, &ft, "sites");
        let init = &a.exact_init[&FragmentId(1)];
        // Parent of the people-fragment root is a site node: prefix
        // sites/site (entry 2) is matched there.
        assert!(!init[0]);
        assert!(!init[1]);
        assert!(init[2]);
        assert!(!init[3]);
    }
}

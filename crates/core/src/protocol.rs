//! The coordinator ↔ site protocol: message types and the site-side tasks.
//!
//! Every request/response type here derives `Serialize` so the simulator can
//! charge its exact byte size to the network. The site-side task functions
//! operate on a [`SiteLocal`]'s fragments and scratch state; they are shared
//! between PaX3 and PaX2. The algorithms in [`crate::pax2`]/[`crate::pax3`]
//! drive them through [`paxml_distsim::Cluster::round`]; they can also be
//! exercised directly against a hand-built site:
//!
//! ```
//! use paxml_boolex::{BitVector, CompactVector};
//! use paxml_core::protocol::{combined_task, CombinedFragmentInput, CombinedRequest, InitVector};
//! use paxml_distsim::{SiteId, SiteLocal, LATEST_EPOCH};
//! use paxml_fragment::{fragment_at, FragmentId};
//! use paxml_xml::TreeBuilder;
//! use paxml_xpath::compile_text;
//! use std::collections::BTreeMap;
//!
//! // One site holding both fragments of a tiny clientele document.
//! let tree = TreeBuilder::new("clientele")
//!     .open("client").leaf("country", "US")
//!         .open("broker").leaf("name", "E*trade").close()
//!     .close()
//!     .build();
//! let broker = tree.find_first("broker").unwrap();
//! let fragmented = fragment_at(&tree, &[broker]).unwrap();
//! let mut site = SiteLocal::new(SiteId(0));
//! for fragment in fragmented.fragments.clone() {
//!     site.add_fragment(fragment);
//! }
//!
//! // PaX2's first visit: the combined pre/post-order pass over each
//! // fragment, starting the broker fragment from an unknown ancestor
//! // summary (fresh `Sel` variables).
//! let query = compile_text("client/broker/name").unwrap();
//! let mut fragments = BTreeMap::new();
//! for (id, init) in [
//!     (FragmentId(0), InitVector::Exact(BitVector::all_false(query.init_len()))),
//!     (FragmentId(1), InitVector::Unknown),
//! ] {
//!     fragments.insert(id, CombinedFragmentInput {
//!         root_is_context: id == FragmentId::ROOT,
//!         collect_answers_now: false,
//!         init,
//!     });
//! }
//! let response = combined_task(&mut site, LATEST_EPOCH, CombinedRequest { slot: 0, query, fragments });
//!
//! // Both fragments report root vectors; the root fragment records an
//! // ancestor summary for its virtual node standing in for F1.
//! assert_eq!(response.roots.len(), 2);
//! assert!(response.virtuals.contains_key(&FragmentId(1)));
//! // No PaX2-local placeholder may ever cross the wire...
//! for vector in response.virtuals.values() {
//!     assert!(vector.variables().iter().all(|v| !v.is_local()));
//! }
//! // ...and the variable-free leaf fragment F1 ships packed bits, not a
//! // vector of enum-tagged formulas.
//! assert!(matches!(response.roots[&FragmentId(1)].qv, CompactVector::Bits(_)));
//! ```

use crate::report::{answer_item, AnswerItem};
use crate::unify::{assignment_from_pairs, fresh_qual_vectors, fresh_selection_vector};
use crate::vars::PaxVar;
use paxml_boolex::{BitVector, BoolExpr, CompactVector};
use paxml_distsim::SiteLocal;
use paxml_fragment::{Fragment, FragmentId, UpdateOp};
use paxml_xml::NodeId;
use paxml_xpath::eval::{
    combined_pass, qualifier_pass, selection_pass, CombinedPassOutput, QualVectors,
};
use paxml_xpath::{CompiledQuery, QEntryId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Scratch keys used to keep per-fragment state between visits. The `slot`
/// keeps concurrent executions (and the queries of a batch) apart: every
/// request that parks state site-side carries the slot its execution drew
/// from [`paxml_distsim::Cluster::allocate_slots`], so two executions
/// interleaving their visits to one site never read each other's candidate
/// sets. The epoch prefix namespaces the slots per deployment epoch, so
/// state parked against one epoch's snapshots can never be resolved against
/// another's (an execution pins one epoch for all its visits, so it always
/// takes back what it parked).
fn qv_key(epoch: u64, slot: usize, f: FragmentId) -> String {
    format!("e{epoch}:qv:{slot}:{}", f.0)
}
fn ans_key(epoch: u64, slot: usize, f: FragmentId) -> String {
    format!("e{epoch}:ans:{slot}:{}", f.0)
}
fn cans_key(epoch: u64, slot: usize, f: FragmentId) -> String {
    format!("e{epoch}:cans:{slot}:{}", f.0)
}

/// A default scratch slot for driving the site tasks directly against a
/// hand-built [`SiteLocal`] (tests, doctests). Real executions draw a
/// unique slot from the cluster instead — sharing this constant between
/// concurrent executions would mix their candidate state.
pub const SINGLE_QUERY_SLOT: usize = 0;

/// How a fragment's top-down pass should initialise its ancestor summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InitVector {
    /// Concrete truth values, packed as bits (the root fragment, or any
    /// fragment when the XPath-annotation optimization applies and the
    /// query has no qualifiers).
    Exact(BitVector),
    /// Unknown ancestors: start from fresh `Sel` variables.
    Unknown,
}

// ---------------------------------------------------------------------------
// Stage 1 of PaX3: qualifier evaluation (extended ParBoX).
// ---------------------------------------------------------------------------

/// Request of the qualifier stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualRequest {
    /// The execution's scratch slot (where the per-node `QV` vectors are
    /// parked for the selection visit).
    pub slot: usize,
    /// The compiled query (sent to every site — the `O(|Q|·|FT|)` part of
    /// the communication bound).
    pub query: CompiledQuery,
    /// The fragments (stored at the target site) to evaluate.
    pub fragments: Vec<FragmentId>,
    /// The subset of `fragments` whose per-node vectors a later selection
    /// visit will consume (the annotation-relevant ones). Every fragment
    /// still contributes its root vectors, but only these park state in
    /// the site's scratch — parking for a fragment the selection stage
    /// prunes would leak the entry, since per-execution slots are never
    /// reused.
    pub park: Vec<FragmentId>,
}

/// Response of the qualifier stage: the root `QV`/`QDV` vectors of every
/// evaluated fragment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QualResponse {
    /// Root vectors, possibly containing the variables of the fragment's
    /// sub-fragments.
    pub roots: BTreeMap<FragmentId, QualVectors<PaxVar>>,
}

/// Site-side task of the qualifier stage: one bottom-up pass per fragment,
/// storing the per-node `QV` vectors locally for the next visit. The pass
/// reads the fragment snapshot of the visit's pinned `epoch` (an `Arc`
/// handle — fragment data is never copied).
pub fn qualifier_task(site: &mut SiteLocal, epoch: u64, request: QualRequest) -> QualResponse {
    let mut roots = BTreeMap::new();
    for fragment_id in &request.fragments {
        let Some(fragment) = site.fragment_at(*fragment_id, epoch) else { continue };
        let qlen = request.query.qvect_len();
        let out = qualifier_pass::<PaxVar>(
            &fragment.tree,
            fragment.tree.root(),
            &request.query,
            |vnode| {
                let child = fragment
                    .tree
                    .kind(vnode)
                    .virtual_fragment()
                    .map(FragmentId)
                    .expect("virtual nodes always carry their fragment id");
                fresh_qual_vectors(child, qlen)
            },
        );
        site.charge_ops(out.ops);
        roots.insert(*fragment_id, out.root.clone());
        if request.park.contains(fragment_id) {
            site.put_scratch(qv_key(epoch, request.slot, *fragment_id), out.node_qv);
        }
    }
    QualResponse { roots }
}

// ---------------------------------------------------------------------------
// Stage 2 of PaX3: selection-path evaluation.
// ---------------------------------------------------------------------------

/// Per-fragment input of the selection stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelFragmentInput {
    /// Resolved truth values of the qualifier variables of this fragment's
    /// sub-fragments (empty when the query has no qualifiers).
    pub qual_values: Vec<(PaxVar, bool)>,
    /// How to initialise the ancestor summary.
    pub init: InitVector,
    /// Is this fragment's root the evaluation context (the global root
    /// element of a relative query)?
    pub root_is_context: bool,
    /// When true the coordinator already knows that no candidate answers can
    /// arise (exact init), so certain answers are returned immediately and
    /// the final stage is skipped for this fragment.
    pub collect_answers_now: bool,
}

/// Request of the selection stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelRequest {
    /// The execution's scratch slot (where the qualifier visit parked its
    /// vectors and where candidate answers are parked for collection).
    pub slot: usize,
    /// The compiled query.
    pub query: CompiledQuery,
    /// Inputs per fragment stored at the target site.
    pub fragments: BTreeMap<FragmentId, SelFragmentInput>,
}

/// Response of the selection stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SelResponse {
    /// For every sub-fragment of every evaluated fragment: the ancestor
    /// summary recorded at its virtual node.
    pub virtuals: BTreeMap<FragmentId, CompactVector<PaxVar>>,
    /// Answers returned early (only when `collect_answers_now` was set).
    pub answers: Vec<AnswerItem>,
}

/// Build the initial vector for a fragment's top-down pass.
fn build_init(fragment: FragmentId, init: &InitVector, svect_len: usize) -> CompactVector<PaxVar> {
    match init {
        InitVector::Exact(values) => {
            let mut v = BitVector::all_false(svect_len);
            for (i, b) in values.iter().enumerate().take(svect_len) {
                v.set(i, b);
            }
            CompactVector::Bits(v)
        }
        InitVector::Unknown => fresh_selection_vector(fragment, svect_len),
    }
}

/// Site-side task of the selection stage (PaX3 Stage 2).
pub fn selection_task(site: &mut SiteLocal, epoch: u64, request: SelRequest) -> SelResponse {
    let query = &request.query;
    let mut virtuals = BTreeMap::new();
    let mut answers = Vec::new();
    for (fragment_id, input) in &request.fragments {
        let Some(fragment) = site.fragment_at(*fragment_id, epoch) else { continue };
        let init = build_init(*fragment_id, &input.init, query.init_len());
        let context = if input.root_is_context { Some(fragment.tree.root()) } else { None };
        let qual_assignment = assignment_from_pairs(&input.qual_values);
        let stored_qv = site.take_scratch::<Vec<Option<CompactVector<PaxVar>>>>(&qv_key(
            epoch,
            request.slot,
            *fragment_id,
        ));
        let mut qual_value = |v: NodeId, e: QEntryId| -> BoolExpr<PaxVar> {
            match &stored_qv {
                Some(qv) => qv[v.index()]
                    .as_ref()
                    .map(|vec| vec.expr(e).assign(&qual_assignment))
                    .unwrap_or_else(|| BoolExpr::constant(false)),
                None => BoolExpr::constant(false),
            }
        };
        let out = selection_pass::<PaxVar>(
            &fragment.tree,
            fragment.tree.root(),
            query,
            init,
            context,
            &mut qual_value,
        );
        site.charge_ops(out.ops);

        for (vnode, vector) in out.virtual_vectors {
            let child = fragment
                .tree
                .kind(vnode)
                .virtual_fragment()
                .map(FragmentId)
                .expect("virtual nodes carry their fragment id");
            virtuals.insert(child, vector);
        }

        if input.collect_answers_now {
            debug_assert!(out.candidates.is_empty(), "exact init vectors never produce candidates");
            for node in &out.answers {
                answers.push(answer_item(
                    *fragment_id,
                    &fragment.tree,
                    *node,
                    fragment.origin_of(*node),
                ));
            }
        } else {
            site.put_scratch(ans_key(epoch, request.slot, *fragment_id), out.answers);
            site.put_scratch(cans_key(epoch, request.slot, *fragment_id), out.candidates);
        }
    }
    SelResponse { virtuals, answers }
}

// ---------------------------------------------------------------------------
// PaX2: the combined qualifier + selection stage.
// ---------------------------------------------------------------------------

/// Request of PaX2's combined stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CombinedRequest {
    /// The execution's scratch slot (where candidate answers are parked for
    /// the collection visit).
    pub slot: usize,
    /// The compiled query.
    pub query: CompiledQuery,
    /// Inputs per fragment stored at the target site.
    pub fragments: BTreeMap<FragmentId, CombinedFragmentInput>,
}

/// Per-fragment input of PaX2's combined stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CombinedFragmentInput {
    /// How to initialise the ancestor summary.
    pub init: InitVector,
    /// Is this fragment's root the evaluation context?
    pub root_is_context: bool,
    /// Return certain answers immediately (exact init, no qualifiers).
    pub collect_answers_now: bool,
}

/// Response of PaX2's combined stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CombinedResponse {
    /// Root `QV`/`QDV` vectors per evaluated fragment.
    pub roots: BTreeMap<FragmentId, QualVectors<PaxVar>>,
    /// Ancestor summaries recorded at the virtual nodes.
    pub virtuals: BTreeMap<FragmentId, CompactVector<PaxVar>>,
    /// Answers returned early.
    pub answers: Vec<AnswerItem>,
}

/// The sub-fragment a virtual node of `fragment` stands for.
fn virtual_child(fragment: &Fragment, vnode: NodeId) -> FragmentId {
    fragment
        .tree
        .kind(vnode)
        .virtual_fragment()
        .map(FragmentId)
        .expect("virtual nodes carry their fragment id")
}

/// Run PaX2's fused pre/post-order pass for one query over one fragment
/// (already taken out of the site's map), charge its operations, and
/// deposit the root vectors and virtual-node summaries into the caller's
/// accumulators. The raw pass output (sure answers + candidate formulas) is
/// returned for the caller to route — into site scratch for the two-visit
/// protocol, or over the wire for the incremental one. This is the single
/// place the pass is configured (virtual-node vectors, `PaxVar::Local`
/// naming), shared by every combined-stage task.
fn fused_pass_on_fragment(
    site: &mut SiteLocal,
    fragment: &Fragment,
    query: &CompiledQuery,
    init: &InitVector,
    root_is_context: bool,
    roots: &mut BTreeMap<FragmentId, QualVectors<PaxVar>>,
    virtuals: &mut BTreeMap<FragmentId, CompactVector<PaxVar>>,
) -> CombinedPassOutput<PaxVar> {
    let fid = fragment.id;
    let qlen = query.qvect_len();
    let init = build_init(fid, init, query.init_len());
    let context = if root_is_context { Some(fragment.tree.root()) } else { None };
    let mut out = combined_pass::<PaxVar>(
        &fragment.tree,
        fragment.tree.root(),
        query,
        init,
        context,
        |vnode| fresh_qual_vectors(virtual_child(fragment, vnode), qlen),
        |node, entry| PaxVar::Local {
            fragment: fid,
            node: node.index() as u32,
            entry: entry as u32,
        },
    );
    site.charge_ops(out.ops);
    roots.insert(fid, out.root.clone());
    for (vnode, vector) in std::mem::take(&mut out.virtual_vectors) {
        virtuals.insert(virtual_child(fragment, vnode), vector);
    }
    out
}

/// [`fused_pass_on_fragment`] with the answer routing of the two-visit
/// protocol: certain answers are either returned immediately or parked —
/// with the candidate sets — in the site's scratch under the query `slot`
/// for the collection visit. Shared between the single-query
/// [`combined_task`] and the batched [`batch_combined_task`].
#[allow(clippy::too_many_arguments)]
fn combined_pass_on_fragment(
    site: &mut SiteLocal,
    fragment: &Fragment,
    epoch: u64,
    slot: usize,
    query: &CompiledQuery,
    input: &CombinedFragmentInput,
    roots: &mut BTreeMap<FragmentId, QualVectors<PaxVar>>,
    virtuals: &mut BTreeMap<FragmentId, CompactVector<PaxVar>>,
    answers: &mut Vec<AnswerItem>,
) {
    let fid = fragment.id;
    let out = fused_pass_on_fragment(
        site,
        fragment,
        query,
        &input.init,
        input.root_is_context,
        roots,
        virtuals,
    );

    if input.collect_answers_now {
        debug_assert!(out.candidates.is_empty());
        for node in &out.answers {
            answers.push(answer_item(fid, &fragment.tree, *node, fragment.origin_of(*node)));
        }
    } else {
        site.put_scratch(ans_key(epoch, slot, fid), out.answers);
        site.put_scratch(cans_key(epoch, slot, fid), out.candidates);
    }
}

/// Site-side task of PaX2's combined stage: one pre/post-order traversal per
/// fragment, over the snapshots of the visit's pinned `epoch`.
pub fn combined_task(
    site: &mut SiteLocal,
    epoch: u64,
    request: CombinedRequest,
) -> CombinedResponse {
    let query = &request.query;
    let mut roots = BTreeMap::new();
    let mut virtuals = BTreeMap::new();
    let mut answers = Vec::new();
    for (fragment_id, input) in &request.fragments {
        let Some(fragment) = site.fragment_at(*fragment_id, epoch) else { continue };
        combined_pass_on_fragment(
            site,
            &fragment,
            epoch,
            request.slot,
            query,
            input,
            &mut roots,
            &mut virtuals,
            &mut answers,
        );
    }
    CombinedResponse { roots, virtuals, answers }
}

// ---------------------------------------------------------------------------
// Final stage (Stage 3 of PaX3 / Stage 2 of PaX2): answer collection.
// ---------------------------------------------------------------------------

/// Request of the answer-collection stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CollectRequest {
    /// The execution's scratch slot (where the earlier visit parked the
    /// candidate answers being resolved).
    pub slot: usize,
    /// For every fragment at the target site: the resolved truth values of
    /// the variables its candidate formulas may mention.
    pub fragments: BTreeMap<FragmentId, Vec<(PaxVar, bool)>>,
}

/// Response of the answer-collection stage: the answers, exactly those nodes
/// that belong to the query result (the only tree data ever shipped).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CollectResponse {
    /// The answer nodes.
    pub answers: Vec<AnswerItem>,
}

/// Resolve one fragment's stored answer candidates for one query slot
/// against the coordinator-provided variable values. Shared between the
/// single-query [`collect_task`] and the batched [`batch_collect_task`].
fn collect_on_fragment(
    site: &mut SiteLocal,
    fragment: &Fragment,
    epoch: u64,
    slot: usize,
    values: &[(PaxVar, bool)],
    answers: &mut Vec<AnswerItem>,
) {
    let fid = fragment.id;
    let assignment = assignment_from_pairs(values);
    let sure: Vec<NodeId> =
        site.take_scratch::<Vec<NodeId>>(&ans_key(epoch, slot, fid)).unwrap_or_default();
    let candidates: Vec<(NodeId, BoolExpr<PaxVar>)> = site
        .take_scratch::<Vec<(NodeId, BoolExpr<PaxVar>)>>(&cans_key(epoch, slot, fid))
        .unwrap_or_default();
    site.charge_ops(candidates.len() as u64 + sure.len() as u64);
    for node in sure {
        answers.push(answer_item(fid, &fragment.tree, node, fragment.origin_of(node)));
    }
    for (node, formula) in candidates {
        if formula.eval_with(&|v| assignment.get(v)) == Some(true) {
            answers.push(answer_item(fid, &fragment.tree, node, fragment.origin_of(node)));
        }
    }
}

/// Site-side task of the answer-collection stage (Procedure `collectAns`).
pub fn collect_task(site: &mut SiteLocal, epoch: u64, request: CollectRequest) -> CollectResponse {
    let mut answers = Vec::new();
    for (fragment_id, values) in &request.fragments {
        let Some(fragment) = site.fragment_at(*fragment_id, epoch) else { continue };
        collect_on_fragment(site, &fragment, epoch, request.slot, values, &mut answers);
    }
    CollectResponse { answers }
}

// ---------------------------------------------------------------------------
// Batched evaluation: one visit carries every query's payload.
// ---------------------------------------------------------------------------

/// One query's slice of a batched combined-stage request. `query_index` is
/// the query's position in the batch (used to route the response slices);
/// `slot` is the scratch slot keeping this query's candidate sets apart
/// between the two visits — unique per execution *and* per query, so
/// concurrent batches never mix state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchCombinedEntry {
    /// Position of this query in the batch.
    pub query_index: usize,
    /// The scratch slot of this query's candidate state.
    pub slot: usize,
    /// The compiled query.
    pub query: CompiledQuery,
    /// Inputs for the fragments (stored at the target site) this query
    /// evaluates — possibly a different set per query when the annotation
    /// optimization prunes differently.
    pub fragments: BTreeMap<FragmentId, CombinedFragmentInput>,
}

/// Request of the batched combined stage: the merged payloads of every
/// query in the batch with work at the target site. One such message per
/// site per batch — the whole batch costs each site a single first visit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchCombinedRequest {
    /// Per-query payloads, in batch order.
    pub entries: Vec<BatchCombinedEntry>,
}

/// One query's slice of a batched combined-stage response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchCombinedQueryResponse {
    /// Position of this query in the batch.
    pub query_index: usize,
    /// Root `QV`/`QDV` vectors per evaluated fragment.
    pub roots: BTreeMap<FragmentId, QualVectors<PaxVar>>,
    /// Ancestor summaries recorded at the virtual nodes.
    pub virtuals: BTreeMap<FragmentId, CompactVector<PaxVar>>,
    /// Answers returned early (exact init and no qualifiers).
    pub answers: Vec<AnswerItem>,
}

/// Response of the batched combined stage: per-query residual vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchCombinedResponse {
    /// Per-query results, in batch order.
    pub per_query: Vec<BatchCombinedQueryResponse>,
}

/// Site-side task of the batched combined stage.
///
/// The loop is *fragment-major*: each stored fragment is taken out of the
/// site map once and every query of the batch runs its combined pre/
/// post-order pass over it before the fragment is put back — the site does
/// its tree passes per fragment in one visit and emits per-query residual
/// vectors, instead of being visited once per query.
pub fn batch_combined_task(
    site: &mut SiteLocal,
    epoch: u64,
    request: BatchCombinedRequest,
) -> BatchCombinedResponse {
    let mut per_query: Vec<BatchCombinedQueryResponse> = request
        .entries
        .iter()
        .map(|entry| BatchCombinedQueryResponse {
            query_index: entry.query_index,
            roots: BTreeMap::new(),
            virtuals: BTreeMap::new(),
            answers: Vec::new(),
        })
        .collect();

    // The union of fragments any query needs at this site.
    let needed: std::collections::BTreeSet<FragmentId> =
        request.entries.iter().flat_map(|entry| entry.fragments.keys().copied()).collect();

    for fragment_id in needed {
        let Some(fragment) = site.fragment_at(fragment_id, epoch) else { continue };
        for (position, entry) in request.entries.iter().enumerate() {
            let Some(input) = entry.fragments.get(&fragment_id) else { continue };
            let response = &mut per_query[position];
            combined_pass_on_fragment(
                site,
                &fragment,
                epoch,
                entry.slot,
                &entry.query,
                input,
                &mut response.roots,
                &mut response.virtuals,
                &mut response.answers,
            );
        }
    }
    BatchCombinedResponse { per_query }
}

/// One query's slice of a batched answer-collection request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchCollectEntry {
    /// Position of this query in the batch.
    pub query_index: usize,
    /// The scratch slot the combined visit parked this query's candidate
    /// state under.
    pub slot: usize,
    /// Resolved variable values per fragment at the target site.
    pub fragments: BTreeMap<FragmentId, Vec<(PaxVar, bool)>>,
}

/// Request of the batched answer-collection stage — one message per site,
/// carrying every query's resolved variable values: the batch's single
/// second (and final) visit to each site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchCollectRequest {
    /// Per-query payloads, in batch order.
    pub entries: Vec<BatchCollectEntry>,
}

/// One query's slice of a batched answer-collection response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchCollectQueryResponse {
    /// Position of this query in the batch.
    pub query_index: usize,
    /// The query's answer nodes stored at this site.
    pub answers: Vec<AnswerItem>,
}

/// Response of the batched answer-collection stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchCollectResponse {
    /// Per-query results, in batch order.
    pub per_query: Vec<BatchCollectQueryResponse>,
}

/// Site-side task of the batched answer-collection stage.
pub fn batch_collect_task(
    site: &mut SiteLocal,
    epoch: u64,
    request: BatchCollectRequest,
) -> BatchCollectResponse {
    let mut per_query: Vec<BatchCollectQueryResponse> = request
        .entries
        .iter()
        .map(|entry| BatchCollectQueryResponse {
            query_index: entry.query_index,
            answers: Vec::new(),
        })
        .collect();

    let needed: std::collections::BTreeSet<FragmentId> =
        request.entries.iter().flat_map(|entry| entry.fragments.keys().copied()).collect();

    for fragment_id in needed {
        let Some(fragment) = site.fragment_at(fragment_id, epoch) else { continue };
        for (position, entry) in request.entries.iter().enumerate() {
            let Some(values) = entry.fragments.get(&fragment_id) else { continue };
            collect_on_fragment(
                site,
                &fragment,
                epoch,
                entry.slot,
                values,
                &mut per_query[position].answers,
            );
        }
    }
    BatchCollectResponse { per_query }
}

// ---------------------------------------------------------------------------
// Incremental evaluation: the update round.
// ---------------------------------------------------------------------------

/// Per-fragment payload of an update round: the ops to apply, plus how to
/// re-run the combined pass afterwards. `recompute` is false for fragments
/// the annotation optimization proved irrelevant — their data still changes,
/// but no vectors need recomputing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FragmentUpdate {
    /// The update operations, applied in order.
    pub ops: Vec<UpdateOp>,
    /// How to initialise the ancestor summary of the re-evaluation pass.
    pub init: InitVector,
    /// Is this fragment's root the evaluation context?
    pub root_is_context: bool,
    /// Re-run the combined pass and return fresh vectors/answers?
    pub recompute: bool,
}

/// Request of the incremental update round (`MsgUpdate`): the coordinator
/// ships each *dirty* site the update ops for its fragments together with
/// the compiled query, so applying the updates and recomputing the dirty
/// fragments' vectors costs a **single visit** — clean sites receive
/// nothing at all.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MsgUpdate {
    /// The compiled query the cached vectors belong to.
    pub query: CompiledQuery,
    /// Updates + recompute instructions per fragment at the target site.
    pub fragments: BTreeMap<FragmentId, FragmentUpdate>,
}

/// The recomputed residual vectors of an update round (`MsgDeltaVect`):
/// exactly what the combined pass of PaX2 would have produced for the dirty
/// fragments, and nothing for clean ones.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MsgDeltaVect {
    /// Root `QV`/`QDV` vectors per recomputed fragment.
    pub roots: BTreeMap<FragmentId, QualVectors<PaxVar>>,
    /// Ancestor summaries recorded at the recomputed fragments' virtual
    /// nodes, keyed by the sub-fragment they stand for.
    pub virtuals: BTreeMap<FragmentId, CompactVector<PaxVar>>,
}

/// A candidate answer shipped to the coordinator's incremental cache: the
/// answer node (already resolved to an [`AnswerItem`]) plus the residual
/// formula deciding whether it is a real answer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateAnswer {
    /// The would-be answer node.
    pub item: AnswerItem,
    /// Its residual selection formula (over the fragment's `Sel` variables
    /// and the `Qual` variables of its sub-fragments).
    pub formula: BoolExpr<PaxVar>,
}

/// The per-fragment answer state of an update round (`MsgDeltaAnswer`).
/// Unlike the from-scratch protocol — where candidate formulas stay
/// site-side and a second visit resolves them — the incremental protocol
/// ships them to the coordinator's cache, so a later update to a *different*
/// fragment can flip this fragment's answers without any visit here.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MsgDeltaAnswer {
    /// Unconditional answers per recomputed fragment.
    pub sure: BTreeMap<FragmentId, Vec<AnswerItem>>,
    /// Conditional answers (with residual formulas) per recomputed fragment.
    pub candidates: BTreeMap<FragmentId, Vec<CandidateAnswer>>,
}

/// Response of the update round: the recomputed vectors, the recomputed
/// answer state, and any rejected updates.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MsgDelta {
    /// Recomputed residual vectors.
    pub vect: MsgDeltaVect,
    /// Recomputed answer state.
    pub answer: MsgDeltaAnswer,
    /// Update ops applied successfully, per fragment.
    pub applied: BTreeMap<FragmentId, usize>,
    /// Fragments whose op sequence was rejected (with the reason); their
    /// remaining ops were skipped but their vectors were still recomputed.
    pub rejected: BTreeMap<FragmentId, String>,
}

/// [`fused_pass_on_fragment`] with the answer routing of the incremental
/// protocol: *everything* the coordinator's cache needs — root vectors,
/// virtual-node summaries, sure answers, and candidate answers with their
/// formulas — goes into the response.
fn snapshot_fragment(
    site: &mut SiteLocal,
    fragment: &Fragment,
    query: &CompiledQuery,
    init: &InitVector,
    root_is_context: bool,
    vect: &mut MsgDeltaVect,
    answer: &mut MsgDeltaAnswer,
) {
    let fid = fragment.id;
    let out = fused_pass_on_fragment(
        site,
        fragment,
        query,
        init,
        root_is_context,
        &mut vect.roots,
        &mut vect.virtuals,
    );
    let sure: Vec<AnswerItem> = out
        .answers
        .iter()
        .map(|&node| answer_item(fid, &fragment.tree, node, fragment.origin_of(node)))
        .collect();
    let candidates: Vec<CandidateAnswer> = out
        .candidates
        .into_iter()
        .map(|(node, formula)| CandidateAnswer {
            item: answer_item(fid, &fragment.tree, node, fragment.origin_of(node)),
            formula,
        })
        .collect();
    answer.sure.insert(fid, sure);
    answer.candidates.insert(fid, candidates);
}

/// Site-side task of the incremental update round: apply each fragment's
/// ops, then re-run the combined pass over the fragments marked for
/// recomputation — one visit does both.
///
/// Epoch semantics: a fragment with ops is rebuilt copy-on-write from the
/// newest snapshot **strictly before** `epoch` (so a retried epoch build
/// never re-applies its ops on top of a failed attempt's orphan) and
/// installed as `epoch`'s snapshot; readers pinned below `epoch` are
/// untouched. A fragment with no ops — the cold-session initial snapshot —
/// is read **at** `epoch` without installing anything.
pub fn update_task(site: &mut SiteLocal, epoch: u64, request: MsgUpdate) -> MsgDelta {
    let mut delta = MsgDelta::default();
    for (fragment_id, fu) in &request.fragments {
        if fu.ops.is_empty() {
            let Some(fragment) = site.fragment_at(*fragment_id, epoch) else { continue };
            delta.applied.insert(*fragment_id, 0);
            if fu.recompute {
                snapshot_fragment(
                    site,
                    &fragment,
                    &request.query,
                    &fu.init,
                    fu.root_is_context,
                    &mut delta.vect,
                    &mut delta.answer,
                );
            }
            continue;
        }
        let Some(base) = site.update_base(*fragment_id, epoch) else { continue };
        let mut fragment = base.as_ref().clone();
        let mut applied = 0;
        for op in &fu.ops {
            match paxml_fragment::apply_update(&mut fragment, op) {
                Ok(_) => applied += 1,
                Err(e) => {
                    delta.rejected.insert(*fragment_id, e.to_string());
                    break;
                }
            }
            site.charge_ops(1);
        }
        delta.applied.insert(*fragment_id, applied);
        if fu.recompute {
            snapshot_fragment(
                site,
                &fragment,
                &request.query,
                &fu.init,
                fu.root_is_context,
                &mut delta.vect,
                &mut delta.answer,
            );
        }
        site.install_version(epoch, fragment);
    }
    delta
}

// ---------------------------------------------------------------------------
// Re-fragmentation: installing a new topology's fragment payloads.
// ---------------------------------------------------------------------------

/// Request of a re-fragmentation round (`MsgRefrag`): the fragment payloads
/// the target site must hold under the *next* epoch's topology. The round
/// ships **installs only** — it never deletes anything — so it is idempotent
/// and a partially-delivered round (a site dying mid-transfer) leaves at
/// worst orphan versions at the epoch that was never published, which a
/// retried build simply overwrites. Space held by fragments that migrated
/// *away* is reclaimed later by a vacuum sweep's purge list.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MsgRefrag {
    /// Fragments to install as the envelope epoch's snapshot at this site,
    /// in any order.
    pub installs: Vec<Fragment>,
}

/// What a re-fragmentation round did at one site.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RefragOutcome {
    /// The fragments installed, in request order.
    pub installed: Vec<FragmentId>,
}

/// Site-side task of a re-fragmentation round: install each shipped
/// fragment as the envelope epoch's snapshot. Installation is copy-on-write
/// against the version lists — readers pinned to older epochs are
/// untouched, and re-installing the same fragment at the same epoch
/// replaces the earlier attempt in place.
pub fn refrag_task(site: &mut SiteLocal, epoch: u64, request: MsgRefrag) -> RefragOutcome {
    let mut installed = Vec::with_capacity(request.installs.len());
    for fragment in request.installs {
        // Receiving and storing a fragment costs its shipped size, the same
        // meter the naive baseline's Fetch uses for the reverse direction.
        site.charge_ops(paxml_distsim::encoded_size(&fragment));
        installed.push(fragment.id);
        site.install_version(epoch, fragment);
    }
    RefragOutcome { installed }
}

/// Payload of an explicit vacuum sweep: besides the envelope's retirement
/// watermark (versions below it are dropped at every site), the coordinator
/// may name fragments whose version lists should be removed *entirely* at
/// the target site — fragments that migrated away or were merged out of
/// existence by an old re-fragmentation no pinned execution can still see.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MsgVacuum {
    /// Fragments to purge wholesale at this site.
    pub purge: Vec<FragmentId>,
}

// ---------------------------------------------------------------------------
// Server sessions: one update round maintaining many prepared queries.
// ---------------------------------------------------------------------------

/// How one prepared-query session wants one fragment's combined pass
/// re-initialised after an update (the session analogue of
/// [`FragmentUpdate`] minus the ops, which are shared across sessions).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecomputeInput {
    /// How to initialise the ancestor summary of the re-evaluation pass.
    pub init: InitVector,
    /// Is this fragment's root the evaluation context?
    pub root_is_context: bool,
}

/// One prepared-query session's slice of a [`MsgSessionUpdate`]: which of
/// the dirty fragments at the target site this session needs fresh residual
/// vectors for (fragments the session's annotation analysis pruned are
/// simply absent — their data changes, their vectors don't matter).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionRecompute {
    /// The session's position in the server's session table.
    pub session: usize,
    /// The session's compiled query.
    pub query: CompiledQuery,
    /// Recompute instructions per dirty fragment at the target site.
    pub fragments: BTreeMap<FragmentId, RecomputeInput>,
}

/// Request of a server update round: the update ops for the fragments at
/// the target site (applied **once**, shared by all sessions) plus, per
/// active prepared-query session, the recompute instructions that refresh
/// its residual-vector cache in the *same visit* — this is how a
/// `PaxServer` keeps every prepared query's incremental cache current with
/// one visit per dirty site and zero visits elsewhere.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MsgSessionUpdate {
    /// Update ops per fragment at the target site, applied in order.
    pub ops: BTreeMap<FragmentId, Vec<UpdateOp>>,
    /// Per-session recompute instructions.
    pub sessions: Vec<SessionRecompute>,
}

/// One session's slice of a [`MsgSessionDelta`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionDelta {
    /// The session's position in the server's session table.
    pub session: usize,
    /// Recomputed residual vectors for the session's dirty fragments.
    pub vect: MsgDeltaVect,
    /// Recomputed answer state for the session's dirty fragments.
    pub answer: MsgDeltaAnswer,
}

/// Response of a server update round.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MsgSessionDelta {
    /// Update ops applied successfully, per fragment.
    pub applied: BTreeMap<FragmentId, usize>,
    /// Fragments whose op sequence was rejected (with the reason); their
    /// remaining ops were skipped but session vectors were still
    /// recomputed.
    pub rejected: BTreeMap<FragmentId, String>,
    /// Per-session recomputed state.
    pub sessions: Vec<SessionDelta>,
}

/// Site-side task of a server update round: apply each fragment's ops once,
/// then re-run the combined pass per session over the fragments that
/// session asked for — one visit does all of it.
///
/// Ops rebuild each fragment copy-on-write from the newest snapshot
/// strictly before `epoch` and install the result as `epoch`'s snapshot
/// (see [`update_task`] for why strictness matters); the per-session
/// recomputes then read at `epoch` and therefore see the fresh snapshots,
/// while executions pinned to earlier epochs keep reading theirs.
pub fn session_update_task(
    site: &mut SiteLocal,
    epoch: u64,
    request: MsgSessionUpdate,
) -> MsgSessionDelta {
    let mut response = MsgSessionDelta::default();

    // Apply the ops once, independent of how many sessions watch.
    for (fragment_id, ops) in &request.ops {
        let Some(base) = site.update_base(*fragment_id, epoch) else { continue };
        let mut fragment = base.as_ref().clone();
        let mut applied = 0;
        for op in ops {
            match paxml_fragment::apply_update(&mut fragment, op) {
                Ok(_) => applied += 1,
                Err(e) => {
                    response.rejected.insert(*fragment_id, e.to_string());
                    break;
                }
            }
            site.charge_ops(1);
        }
        response.applied.insert(*fragment_id, applied);
        site.install_version(epoch, fragment);
    }

    // Refresh each session's residual vectors over the updated data.
    for entry in &request.sessions {
        let mut delta = SessionDelta {
            session: entry.session,
            vect: Default::default(),
            answer: Default::default(),
        };
        for (fragment_id, input) in &entry.fragments {
            let Some(fragment) = site.fragment_at(*fragment_id, epoch) else { continue };
            snapshot_fragment(
                site,
                &fragment,
                &entry.query,
                &input.init,
                input.root_is_context,
                &mut delta.vect,
                &mut delta.answer,
            );
        }
        response.sessions.push(delta);
    }
    response
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxml_distsim::SiteId;
    use paxml_fragment::{fragment_at, Fragment};
    use paxml_xml::TreeBuilder;
    use paxml_xpath::compile_text;

    fn one_site_with(fragments: Vec<Fragment>) -> SiteLocal {
        let mut site = SiteLocal::new(SiteId(0));
        for f in fragments {
            site.add_fragment(f);
        }
        site
    }

    fn small_fragmented() -> (paxml_xml::XmlTree, paxml_fragment::FragmentedTree) {
        let tree = TreeBuilder::new("clientele")
            .open("client")
            .leaf("country", "US")
            .open("broker")
            .leaf("name", "E*trade")
            .close()
            .close()
            .build();
        let broker = tree.find_first("broker").unwrap();
        let fragmented = fragment_at(&tree, &[broker]).unwrap();
        (tree, fragmented)
    }

    #[test]
    fn qualifier_task_stores_scratch_and_returns_roots() {
        let (_, fragmented) = small_fragmented();
        let mut site = one_site_with(fragmented.fragments.clone());
        let query = compile_text("client[country/text()='US']/broker/name").unwrap();
        let response = qualifier_task(
            &mut site,
            0,
            QualRequest {
                slot: SINGLE_QUERY_SLOT,
                query,
                fragments: vec![FragmentId(0), FragmentId(1)],
                park: vec![FragmentId(0), FragmentId(1)],
            },
        );
        assert_eq!(response.roots.len(), 2);
        assert!(site.scratch::<Vec<Option<CompactVector<PaxVar>>>>("e0:qv:0:0").is_some());
        assert!(site.scratch::<Vec<Option<CompactVector<PaxVar>>>>("e0:qv:0:1").is_some());
        assert!(site.ops() > 0);
        // The leaf fragment F1 has no virtual nodes, so its root vectors are
        // already fully resolved — and therefore ship as packed bits.
        assert!(response.roots[&FragmentId(1)].qv.is_fully_resolved());
        assert!(response.roots[&FragmentId(1)].qdv.is_fully_resolved());
        assert!(matches!(response.roots[&FragmentId(1)].qv, CompactVector::Bits(_)));
        assert!(matches!(response.roots[&FragmentId(1)].qdv, CompactVector::Bits(_)));
    }

    #[test]
    fn selection_task_with_exact_init_returns_answers_immediately() {
        let (_, fragmented) = small_fragmented();
        let mut site = one_site_with(fragmented.fragments.clone());
        let query = compile_text("client/broker/name").unwrap();
        let mut fragments = BTreeMap::new();
        fragments.insert(
            FragmentId(1),
            SelFragmentInput {
                qual_values: vec![],
                // The broker fragment's parent (a client under the root) is
                // matched by prefix 1.
                init: InitVector::Exact(BitVector::from_bools(&[false, true, false, false])),
                root_is_context: false,
                collect_answers_now: true,
            },
        );
        let response =
            selection_task(&mut site, 0, SelRequest { slot: SINGLE_QUERY_SLOT, query, fragments });
        assert_eq!(response.answers.len(), 1);
        assert_eq!(response.answers[0].text, Some("E*trade".to_string()));
        assert!(response.virtuals.is_empty());
    }

    #[test]
    fn selection_then_collect_resolves_candidates() {
        let (_, fragmented) = small_fragmented();
        let mut site = one_site_with(fragmented.fragments.clone());
        let query = compile_text("client/broker/name").unwrap();
        let mut fragments = BTreeMap::new();
        fragments.insert(
            FragmentId(1),
            SelFragmentInput {
                qual_values: vec![],
                init: InitVector::Unknown,
                root_is_context: false,
                collect_answers_now: false,
            },
        );
        let response =
            selection_task(&mut site, 0, SelRequest { slot: SINGLE_QUERY_SLOT, query, fragments });
        assert!(response.answers.is_empty());
        // The name node became a candidate; resolve its z-variable to true.
        let mut values = BTreeMap::new();
        values
            .insert(FragmentId(1), vec![(PaxVar::Sel { fragment: FragmentId(1), entry: 1 }, true)]);
        let collected = collect_task(
            &mut site,
            0,
            CollectRequest { slot: SINGLE_QUERY_SLOT, fragments: values },
        );
        assert_eq!(collected.answers.len(), 1);
        assert_eq!(collected.answers[0].label, "name");
    }

    #[test]
    fn update_task_applies_ops_and_returns_fresh_state() {
        let (_, fragmented) = small_fragmented();
        let mut site = one_site_with(fragmented.fragments.clone());
        let query = compile_text("client/broker/name").unwrap();
        // Edit the broker's name (F1) and re-snapshot it in the same visit.
        let f1 = &fragmented.fragments[1];
        let name = f1.tree.find_first("name").unwrap();
        let text = f1.tree.children(name).next().unwrap();
        let mut fragments = BTreeMap::new();
        fragments.insert(
            FragmentId(1),
            FragmentUpdate {
                ops: vec![UpdateOp::EditText { node: text, text: "Bache".into() }],
                init: InitVector::Unknown,
                root_is_context: false,
                recompute: true,
            },
        );
        let delta = update_task(&mut site, 1, MsgUpdate { query, fragments });
        assert_eq!(delta.applied[&FragmentId(1)], 1);
        assert!(delta.rejected.is_empty());
        assert!(delta.vect.roots.contains_key(&FragmentId(1)));
        // The unknown-init pass yields the name node as a candidate carrying
        // the *edited* text and a residual formula over F1's Sel variables.
        let candidates = &delta.answer.candidates[&FragmentId(1)];
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].item.text, Some("Bache".to_string()));
        assert!(candidates[0].formula.has_variables());
        assert!(candidates[0].formula.variables().iter().all(|v| !v.is_local()));
        // Epoch 1's snapshot carries the edit; epoch 0's is untouched, so a
        // reader still pinned to the pre-update epoch sees the old text.
        let at_1 = site.fragment_at(FragmentId(1), 1).unwrap();
        assert_eq!(at_1.tree.text_of(name), Some("Bache".to_string()));
        let at_0 = site.fragment_at(FragmentId(1), 0).unwrap();
        assert_eq!(at_0.tree.text_of(name), Some("E*trade".to_string()));
        assert_eq!(site.version_count(), 3, "two fragments plus one fresh version");
    }

    #[test]
    fn update_task_rejects_invalid_ops_but_still_recomputes() {
        let (_, fragmented) = small_fragmented();
        let mut site = one_site_with(fragmented.fragments.clone());
        let query = compile_text("client/broker/name").unwrap();
        let root = fragmented.fragments[1].tree.root();
        let mut fragments = BTreeMap::new();
        fragments.insert(
            FragmentId(1),
            FragmentUpdate {
                ops: vec![UpdateOp::DeleteSubtree { node: root }],
                init: InitVector::Unknown,
                root_is_context: false,
                recompute: true,
            },
        );
        let delta = update_task(&mut site, 1, MsgUpdate { query, fragments });
        assert_eq!(delta.applied[&FragmentId(1)], 0);
        assert!(delta.rejected[&FragmentId(1)].contains("root"));
        // Vectors are refreshed regardless, so coordinator caches stay valid.
        assert!(delta.vect.roots.contains_key(&FragmentId(1)));
    }

    #[test]
    fn combined_task_returns_roots_virtuals_and_stores_candidates() {
        let (_, fragmented) = small_fragmented();
        let mut site = one_site_with(fragmented.fragments.clone());
        let query = compile_text("client[country/text()='US']/broker/name").unwrap();
        let mut fragments = BTreeMap::new();
        fragments.insert(
            FragmentId(0),
            CombinedFragmentInput {
                init: InitVector::Exact(BitVector::all_false(query.init_len())),
                root_is_context: true,
                collect_answers_now: false,
            },
        );
        fragments.insert(
            FragmentId(1),
            CombinedFragmentInput {
                init: InitVector::Unknown,
                root_is_context: false,
                collect_answers_now: false,
            },
        );
        let response = combined_task(
            &mut site,
            0,
            CombinedRequest { slot: SINGLE_QUERY_SLOT, query, fragments },
        );
        assert_eq!(response.roots.len(), 2);
        // The root fragment records an ancestor summary for its virtual node F1.
        assert!(response.virtuals.contains_key(&FragmentId(1)));
        // No local placeholder variables may leak into the wire format.
        for vectors in response.roots.values() {
            assert!(vectors.qv.variables().iter().all(|v| !v.is_local()));
        }
        for vector in response.virtuals.values() {
            assert!(vector.variables().iter().all(|v| !v.is_local()));
        }
    }
}

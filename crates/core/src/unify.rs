//! The coordinator-side `evalFT` procedures: unifying the residual variables
//! of the per-fragment partial answers over the fragment tree.

use crate::vars::{PaxVar, QualVecKind};
use paxml_boolex::{Assignment, FormulaVector};
use paxml_fragment::{FragmentId, FragmentTree};
use paxml_xpath::eval::QualVectors;
use std::collections::BTreeMap;

/// Bottom-up unification of Stage-1 (qualifier) vectors.
///
/// `roots[f]` is the `QV`/`QDV` pair computed at the root of fragment `f`;
/// its entries may mention the variables `Qual{c, …}` of `f`'s
/// sub-fragments. Leaf fragments are variable-free, so walking the fragment
/// tree bottom-up resolves every vector to constants (Example 3.2: `y₈`
/// unifies with entry `q₈` of `QV_market`).
///
/// Fragments missing from `roots` (pruned by the annotation optimization)
/// resolve to all-false vectors; the pruning criterion guarantees their
/// values are never consulted by an answer-determining formula.
///
/// Returns the assignment giving a truth value to every `Qual` variable.
pub fn unify_qualifiers(
    ft: &FragmentTree,
    roots: &BTreeMap<FragmentId, QualVectors<PaxVar>>,
    qvect_len: usize,
) -> Assignment<PaxVar> {
    let mut assignment: Assignment<PaxVar> = Assignment::new();
    for fragment in ft.bottom_up_order() {
        let resolved = match roots.get(&fragment) {
            Some(vectors) => vectors.assign(&assignment),
            None => QualVectors::all_false(qvect_len),
        };
        for i in 0..qvect_len {
            assignment.set(
                PaxVar::Qual { fragment, vector: QualVecKind::Qv, entry: i },
                resolved.qv[i].as_const().unwrap_or(false),
            );
            assignment.set(
                PaxVar::Qual { fragment, vector: QualVecKind::Qdv, entry: i },
                resolved.qdv[i].as_const().unwrap_or(false),
            );
        }
    }
    assignment
}

/// Top-down unification of the selection (Stage-2) vectors.
///
/// `virtuals[c]` is the ancestor-summary `SV` vector recorded at the virtual
/// node standing for fragment `c` inside its parent fragment; it may mention
/// the parent's own `Sel` variables (its unknown ancestors) and, for PaX2,
/// `Qual` variables. `root_init` is the known initial vector of the root
/// fragment (the implicit document node). `qual_assignment` resolves any
/// `Qual` variables (pass an empty assignment for PaX3, where Stage 1
/// already resolved the qualifiers).
///
/// Returns the assignment giving a truth value to every `Sel` variable of
/// every fragment (Example 3.4: `z₁` unifies to true via `SV_client`).
pub fn unify_selection(
    ft: &FragmentTree,
    virtuals: &BTreeMap<FragmentId, FormulaVector<PaxVar>>,
    root_init: &[bool],
    qual_assignment: &Assignment<PaxVar>,
) -> Assignment<PaxVar> {
    let slen = root_init.len();
    let mut assignment: Assignment<PaxVar> = Assignment::new();
    assignment.extend(qual_assignment);
    // The root fragment's ancestor summary is known exactly.
    for (i, &b) in root_init.iter().enumerate() {
        assignment.set(PaxVar::Sel { fragment: FragmentId::ROOT, entry: i }, b);
    }
    for fragment in ft.top_down_order() {
        if fragment == FragmentId::ROOT {
            continue;
        }
        match virtuals.get(&fragment) {
            Some(vector) => {
                let resolved = vector.assign(&assignment);
                for i in 0..slen.min(resolved.len()) {
                    assignment.set(
                        PaxVar::Sel { fragment, entry: i },
                        resolved[i].as_const().unwrap_or(false),
                    );
                }
            }
            None => {
                // The parent fragment was pruned or did not record a vector:
                // nothing above this fragment can match, so the summary is
                // all-false.
                for i in 0..slen {
                    assignment.set(PaxVar::Sel { fragment, entry: i }, false);
                }
            }
        }
    }
    assignment
}

/// Restrict an assignment to the variables a particular fragment's site
/// needs: the `Qual` variables of the fragment's sub-fragments and the
/// fragment's own `Sel` variables. Keeps the per-message payload `O(|Q|)`
/// per fragment, as required by the communication bound.
pub fn restrict_for_fragment(
    assignment: &Assignment<PaxVar>,
    fragment: FragmentId,
    sub_fragments: &[FragmentId],
) -> Vec<(PaxVar, bool)> {
    assignment
        .iter()
        .filter(|(var, _)| match var {
            PaxVar::Qual { fragment: f, .. } => sub_fragments.contains(f),
            PaxVar::Sel { fragment: f, .. } => *f == fragment,
            PaxVar::Local { .. } => false,
        })
        .map(|(var, value)| (var.clone(), value))
        .collect()
}

/// Turn a wire-format variable/value list back into an assignment.
pub fn assignment_from_pairs(pairs: &[(PaxVar, bool)]) -> Assignment<PaxVar> {
    Assignment::from_iter(pairs.iter().cloned())
}

/// Helper: fresh qualifier vectors (all entries variables) for a virtual
/// node standing for `fragment` — what the per-fragment Stage-1/combined
/// pass plugs in for each missing sub-fragment.
pub fn fresh_qual_vectors(fragment: FragmentId, qvect_len: usize) -> QualVectors<PaxVar> {
    QualVectors {
        qv: FormulaVector::fresh_variables(qvect_len, |entry| PaxVar::Qual {
            fragment,
            vector: QualVecKind::Qv,
            entry,
        }),
        qdv: FormulaVector::fresh_variables(qvect_len, |entry| PaxVar::Qual {
            fragment,
            vector: QualVecKind::Qdv,
            entry,
        }),
    }
}

/// Helper: the fresh ancestor-summary vector for a non-root fragment.
pub fn fresh_selection_vector(fragment: FragmentId, svect_len: usize) -> FormulaVector<PaxVar> {
    FormulaVector::fresh_variables(svect_len, |entry| PaxVar::Sel { fragment, entry })
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxml_boolex::BoolExpr;
    use paxml_xml::LabelPath;

    fn two_level_ft() -> FragmentTree {
        // F0 -> F1 -> F2
        let mut ft = FragmentTree::new();
        ft.add_child(FragmentId(0), FragmentId(1), LabelPath::parse("client/broker"));
        ft.add_child(FragmentId(1), FragmentId(2), LabelPath::parse("market"));
        ft
    }

    #[test]
    fn qualifier_unification_resolves_through_two_levels() {
        // Mirrors Example 3.2: F2's root has q8 true; F1's root entry q9 is
        // the variable x[F2.q8]; after unification q9 at F1 must be true.
        let ft = two_level_ft();
        let qlen = 9;
        let mut roots: BTreeMap<FragmentId, QualVectors<PaxVar>> = BTreeMap::new();

        let mut f2 = QualVectors::all_false(qlen);
        f2.qv.set(7, BoolExpr::constant(true));
        f2.qdv.set(7, BoolExpr::constant(true));
        roots.insert(FragmentId(2), f2);

        let mut f1 = QualVectors::all_false(qlen);
        f1.qv.set(
            8,
            BoolExpr::var(PaxVar::Qual {
                fragment: FragmentId(2),
                vector: QualVecKind::Qv,
                entry: 7,
            }),
        );
        roots.insert(FragmentId(1), f1);
        roots.insert(FragmentId(0), QualVectors::all_false(qlen));

        let assignment = unify_qualifiers(&ft, &roots, qlen);
        assert_eq!(
            assignment.get(&PaxVar::Qual {
                fragment: FragmentId(2),
                vector: QualVecKind::Qv,
                entry: 7
            }),
            Some(true)
        );
        assert_eq!(
            assignment.get(&PaxVar::Qual {
                fragment: FragmentId(1),
                vector: QualVecKind::Qv,
                entry: 8
            }),
            Some(true)
        );
        assert_eq!(
            assignment.get(&PaxVar::Qual {
                fragment: FragmentId(1),
                vector: QualVecKind::Qv,
                entry: 0
            }),
            Some(false)
        );
    }

    #[test]
    fn missing_fragments_default_to_false() {
        let ft = two_level_ft();
        let roots = BTreeMap::new();
        let assignment = unify_qualifiers(&ft, &roots, 3);
        for f in 0..3 {
            for e in 0..3 {
                assert_eq!(
                    assignment.get(&PaxVar::Qual {
                        fragment: FragmentId(f),
                        vector: QualVecKind::Qv,
                        entry: e
                    }),
                    Some(false)
                );
            }
        }
    }

    #[test]
    fn selection_unification_mirrors_example_3_4() {
        // F1's init vector depends on z-variables; the root fragment records
        // SV_client = <0, 1, 0, 0> at the virtual node for F1 (entry 1 =
        // "the parent matched prefix client"), so F1's Sel variables resolve
        // to exactly that.
        let ft = two_level_ft();
        let slen = 4;
        let mut virtuals: BTreeMap<FragmentId, FormulaVector<PaxVar>> = BTreeMap::new();
        let mut sv_client: FormulaVector<PaxVar> = FormulaVector::all_false(slen);
        sv_client.set(1, BoolExpr::constant(true));
        virtuals.insert(FragmentId(1), sv_client);
        // F1 records, at its own virtual node for F2, a vector depending on
        // its z variables: entry 2 = z[F1.1] (its broker matched iff the
        // parent's client prefix was matched).
        let mut sv_broker: FormulaVector<PaxVar> = FormulaVector::all_false(slen);
        sv_broker.set(2, BoolExpr::var(PaxVar::Sel { fragment: FragmentId(1), entry: 1 }));
        virtuals.insert(FragmentId(2), sv_broker);

        let root_init = vec![false, false, false, false];
        let assignment = unify_selection(&ft, &virtuals, &root_init, &Assignment::new());
        assert_eq!(assignment.get(&PaxVar::Sel { fragment: FragmentId(1), entry: 1 }), Some(true));
        assert_eq!(assignment.get(&PaxVar::Sel { fragment: FragmentId(2), entry: 2 }), Some(true));
        assert_eq!(assignment.get(&PaxVar::Sel { fragment: FragmentId(2), entry: 1 }), Some(false));
    }

    #[test]
    fn restriction_keeps_only_the_relevant_variables() {
        let mut assignment: Assignment<PaxVar> = Assignment::new();
        assignment.set(PaxVar::Sel { fragment: FragmentId(1), entry: 0 }, true);
        assignment.set(PaxVar::Sel { fragment: FragmentId(2), entry: 0 }, true);
        assignment
            .set(PaxVar::Qual { fragment: FragmentId(2), vector: QualVecKind::Qv, entry: 3 }, true);
        assignment.set(
            PaxVar::Qual { fragment: FragmentId(3), vector: QualVecKind::Qv, entry: 3 },
            false,
        );
        let restricted = restrict_for_fragment(&assignment, FragmentId(1), &[FragmentId(2)]);
        assert_eq!(restricted.len(), 2);
        let back = assignment_from_pairs(&restricted);
        assert_eq!(back.get(&PaxVar::Sel { fragment: FragmentId(1), entry: 0 }), Some(true));
        assert_eq!(
            back.get(&PaxVar::Qual { fragment: FragmentId(2), vector: QualVecKind::Qv, entry: 3 }),
            Some(true)
        );
        assert_eq!(back.get(&PaxVar::Sel { fragment: FragmentId(2), entry: 0 }), None);
    }

    #[test]
    fn fresh_vector_helpers_produce_distinct_variables() {
        let q = fresh_qual_vectors(FragmentId(5), 4);
        assert_eq!(q.qv.variables().len(), 4);
        assert_eq!(q.qdv.variables().len(), 4);
        assert!(q.qv.variables().is_disjoint(&q.qdv.variables()));
        let s = fresh_selection_vector(FragmentId(5), 3);
        assert_eq!(s.variables().len(), 3);
    }
}

//! The coordinator-side `evalFT` procedures: unifying the residual variables
//! of the per-fragment partial answers over the fragment tree.
//!
//! The coordinator's working state is a [`DenseAssignment`]: instead of a
//! `BTreeMap<PaxVar, bool>` with one tree node per `(fragment, vector,
//! entry)` coordinate, every fragment owns three packed [`BitVector`]s (`QV`,
//! `QDV`, `SV`) indexed directly by entry — a lookup is two array reads, and
//! resolving a variable-free (leaf-fragment) vector is a word copy.

use crate::vars::{PaxVar, QualVecKind};
use paxml_boolex::{Assignment, BitVector, CompactVector};
use paxml_fragment::{FragmentId, FragmentTree};
use paxml_xpath::eval::QualVectors;
use std::collections::BTreeMap;

/// Per-fragment truth values of every residual variable, packed as bits.
///
/// `Qual` variables live in the `qv`/`qdv` vectors, `Sel` variables in
/// `sel`; a whole vector is either entirely known (set in one unification
/// step) or entirely unknown, which is exactly how `evalFT` proceeds.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct FragmentBits {
    /// `QV` values of the fragment's root (None until Stage 1 resolves them).
    qv: Option<BitVector>,
    /// `QDV` values of the fragment's root.
    qdv: Option<BitVector>,
    /// `SV` (ancestor-summary) values of the fragment.
    sel: Option<BitVector>,
}

/// A dense truth-value assignment for every `Qual`/`Sel` variable of a
/// deployment, indexed by `(fragment, vector, entry)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DenseAssignment {
    frags: Vec<FragmentBits>,
}

impl DenseAssignment {
    /// An empty assignment for `fragments` fragments — nothing is known yet.
    pub fn new(fragments: usize) -> Self {
        DenseAssignment { frags: vec![FragmentBits::default(); fragments] }
    }

    /// Make sure `fragment` is addressable (assignments built before a
    /// fragment tree grew can still be extended).
    fn slot(&mut self, fragment: FragmentId) -> &mut FragmentBits {
        let index = fragment.index();
        if index >= self.frags.len() {
            self.frags.resize(index + 1, FragmentBits::default());
        }
        &mut self.frags[index]
    }

    /// Record the resolved root `QV`/`QDV` values of a fragment, returning
    /// whether anything changed (used by the incremental dirty-cone walk).
    pub fn set_qual(&mut self, fragment: FragmentId, qv: BitVector, qdv: BitVector) -> bool {
        let slot = self.slot(fragment);
        let changed = slot.qv.as_ref() != Some(&qv) || slot.qdv.as_ref() != Some(&qdv);
        slot.qv = Some(qv);
        slot.qdv = Some(qdv);
        changed
    }

    /// Record the resolved ancestor-summary (`Sel`) values of a fragment,
    /// returning whether anything changed.
    pub fn set_sel(&mut self, fragment: FragmentId, sel: BitVector) -> bool {
        let slot = self.slot(fragment);
        let changed = slot.sel.as_ref() != Some(&sel);
        slot.sel = Some(sel);
        changed
    }

    /// Look up a variable. `None` when the owning vector has not been
    /// unified yet (or for PaX2-local placeholders, which never reach the
    /// coordinator).
    pub fn get(&self, var: &PaxVar) -> Option<bool> {
        match var {
            PaxVar::Qual { fragment, vector, entry } => {
                let slot = self.frags.get(fragment.index())?;
                let bits = match vector {
                    QualVecKind::Qv => slot.qv.as_ref()?,
                    QualVecKind::Qdv => slot.qdv.as_ref()?,
                };
                (*entry < bits.len()).then(|| bits.get(*entry))
            }
            PaxVar::Sel { fragment, entry } => {
                let bits = self.frags.get(fragment.index())?.sel.as_ref()?;
                (*entry < bits.len()).then(|| bits.get(*entry))
            }
            PaxVar::Local { .. } => None,
        }
    }

    /// The resolved `Sel` bits of a fragment, if unified already.
    pub fn sel_of(&self, fragment: FragmentId) -> Option<&BitVector> {
        self.frags.get(fragment.index())?.sel.as_ref()
    }

    /// Restrict the assignment to the variables a particular fragment's site
    /// needs: the `Qual` variables of the fragment's sub-fragments and the
    /// fragment's own `Sel` variables. Keeps the per-message payload
    /// `O(|Q|)` per fragment, as required by the communication bound.
    pub fn restrict_for_fragment(
        &self,
        fragment: FragmentId,
        sub_fragments: &[FragmentId],
    ) -> Vec<(PaxVar, bool)> {
        let mut out = Vec::new();
        for &child in sub_fragments {
            if let Some(slot) = self.frags.get(child.index()) {
                for (kind, bits) in [(QualVecKind::Qv, &slot.qv), (QualVecKind::Qdv, &slot.qdv)] {
                    if let Some(bits) = bits {
                        for entry in 0..bits.len() {
                            out.push((
                                PaxVar::Qual { fragment: child, vector: kind, entry },
                                bits.get(entry),
                            ));
                        }
                    }
                }
            }
        }
        if let Some(sel) = self.sel_of(fragment) {
            for entry in 0..sel.len() {
                out.push((PaxVar::Sel { fragment, entry }, sel.get(entry)));
            }
        }
        out
    }
}

/// Bottom-up unification of Stage-1 (qualifier) vectors.
///
/// `roots[f]` is the `QV`/`QDV` pair computed at the root of fragment `f`;
/// its entries may mention the variables `Qual{c, …}` of `f`'s
/// sub-fragments. Leaf fragments are variable-free — they arrive as packed
/// bits and resolve by a word copy — so walking the fragment tree bottom-up
/// resolves every vector to constants (Example 3.2: `y₈` unifies with entry
/// `q₈` of `QV_market`).
///
/// Fragments missing from `roots` (pruned by the annotation optimization)
/// resolve to all-false vectors; the pruning criterion guarantees their
/// values are never consulted by an answer-determining formula.
///
/// Fills `assignment` with a truth value for every `Qual` variable.
pub fn unify_qualifiers(
    ft: &FragmentTree,
    roots: &BTreeMap<FragmentId, QualVectors<PaxVar>>,
    qvect_len: usize,
    assignment: &mut DenseAssignment,
) {
    for fragment in ft.bottom_up_order() {
        let (qv, qdv) = match roots.get(&fragment) {
            Some(vectors) => {
                let lookup = |var: &PaxVar| assignment.get(var);
                (vectors.qv.resolve_bits(&lookup), vectors.qdv.resolve_bits(&lookup))
            }
            None => (BitVector::all_false(qvect_len), BitVector::all_false(qvect_len)),
        };
        assignment.set_qual(fragment, qv, qdv);
    }
}

/// Top-down unification of the selection (Stage-2) vectors.
///
/// `virtuals[c]` is the ancestor-summary `SV` vector recorded at the virtual
/// node standing for fragment `c` inside its parent fragment; it may mention
/// the parent's own `Sel` variables (its unknown ancestors) and, for PaX2,
/// `Qual` variables. `root_init` is the known initial vector of the root
/// fragment (the implicit document node). `assignment` must already hold the
/// `Qual` truth values (it is empty of them for qualifier-free queries,
/// whose summaries mention no `Qual` variables).
///
/// Fills `assignment` with a truth value for every `Sel` variable of every
/// fragment (Example 3.4: `z₁` unifies to true via `SV_client`).
pub fn unify_selection(
    ft: &FragmentTree,
    virtuals: &BTreeMap<FragmentId, CompactVector<PaxVar>>,
    root_init: &[bool],
    assignment: &mut DenseAssignment,
) {
    let slen = root_init.len();
    // The root fragment's ancestor summary is known exactly.
    assignment.set_sel(FragmentId::ROOT, BitVector::from_bools(root_init));
    for fragment in ft.top_down_order() {
        if fragment == FragmentId::ROOT {
            continue;
        }
        let sel = match virtuals.get(&fragment) {
            Some(vector) => resolve_summary(vector, slen, assignment),
            // The parent fragment was pruned or did not record a vector:
            // nothing above this fragment can match, so the summary is
            // all-false.
            None => BitVector::all_false(slen),
        };
        assignment.set_sel(fragment, sel);
    }
}

/// Resolve a recorded ancestor summary to exactly `slen` constant bits
/// under the current assignment (undecidable or missing entries are false).
pub(crate) fn resolve_summary(
    vector: &CompactVector<PaxVar>,
    slen: usize,
    assignment: &DenseAssignment,
) -> BitVector {
    let resolved = vector.resolve_bits(&|var| assignment.get(var));
    if resolved.len() == slen {
        return resolved;
    }
    let mut sel = BitVector::all_false(slen);
    for i in 0..slen.min(resolved.len()) {
        sel.set(i, resolved.get(i));
    }
    sel
}

/// Turn a wire-format variable/value list back into an assignment.
pub fn assignment_from_pairs(pairs: &[(PaxVar, bool)]) -> Assignment<PaxVar> {
    Assignment::from_iter(pairs.iter().cloned())
}

/// Helper: fresh qualifier vectors (all entries variables) for a virtual
/// node standing for `fragment` — what the per-fragment Stage-1/combined
/// pass plugs in for each missing sub-fragment.
pub fn fresh_qual_vectors(fragment: FragmentId, qvect_len: usize) -> QualVectors<PaxVar> {
    QualVectors {
        qv: CompactVector::fresh_variables(qvect_len, |entry| PaxVar::Qual {
            fragment,
            vector: QualVecKind::Qv,
            entry,
        }),
        qdv: CompactVector::fresh_variables(qvect_len, |entry| PaxVar::Qual {
            fragment,
            vector: QualVecKind::Qdv,
            entry,
        }),
    }
}

/// Helper: the fresh ancestor-summary vector for a non-root fragment.
pub fn fresh_selection_vector(fragment: FragmentId, svect_len: usize) -> CompactVector<PaxVar> {
    CompactVector::fresh_variables(svect_len, |entry| PaxVar::Sel { fragment, entry })
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxml_boolex::BoolExpr;
    use paxml_xml::LabelPath;

    fn two_level_ft() -> FragmentTree {
        // F0 -> F1 -> F2
        let mut ft = FragmentTree::new();
        ft.add_child(FragmentId(0), FragmentId(1), LabelPath::parse("client/broker"));
        ft.add_child(FragmentId(1), FragmentId(2), LabelPath::parse("market"));
        ft
    }

    #[test]
    fn qualifier_unification_resolves_through_two_levels() {
        // Mirrors Example 3.2: F2's root has q8 true; F1's root entry q9 is
        // the variable x[F2.q8]; after unification q9 at F1 must be true.
        let ft = two_level_ft();
        let qlen = 9;
        let mut roots: BTreeMap<FragmentId, QualVectors<PaxVar>> = BTreeMap::new();

        let mut f2 = QualVectors::all_false(qlen);
        f2.qv.set(7, BoolExpr::constant(true));
        f2.qdv.set(7, BoolExpr::constant(true));
        // A leaf fragment's vectors are variable-free: packed bits.
        assert!(matches!(f2.qv, CompactVector::Bits(_)));
        roots.insert(FragmentId(2), f2);

        let mut f1 = QualVectors::all_false(qlen);
        f1.qv.set(
            8,
            BoolExpr::var(PaxVar::Qual {
                fragment: FragmentId(2),
                vector: QualVecKind::Qv,
                entry: 7,
            }),
        );
        assert!(matches!(f1.qv, CompactVector::Formulas(_)));
        roots.insert(FragmentId(1), f1);
        roots.insert(FragmentId(0), QualVectors::all_false(qlen));

        let mut assignment = DenseAssignment::new(ft.len());
        unify_qualifiers(&ft, &roots, qlen, &mut assignment);
        assert_eq!(
            assignment.get(&PaxVar::Qual {
                fragment: FragmentId(2),
                vector: QualVecKind::Qv,
                entry: 7
            }),
            Some(true)
        );
        assert_eq!(
            assignment.get(&PaxVar::Qual {
                fragment: FragmentId(1),
                vector: QualVecKind::Qv,
                entry: 8
            }),
            Some(true)
        );
        assert_eq!(
            assignment.get(&PaxVar::Qual {
                fragment: FragmentId(1),
                vector: QualVecKind::Qv,
                entry: 0
            }),
            Some(false)
        );
    }

    #[test]
    fn missing_fragments_default_to_false() {
        let ft = two_level_ft();
        let roots = BTreeMap::new();
        let mut assignment = DenseAssignment::new(ft.len());
        unify_qualifiers(&ft, &roots, 3, &mut assignment);
        for f in 0..3 {
            for e in 0..3 {
                assert_eq!(
                    assignment.get(&PaxVar::Qual {
                        fragment: FragmentId(f),
                        vector: QualVecKind::Qv,
                        entry: e
                    }),
                    Some(false)
                );
            }
        }
    }

    #[test]
    fn selection_unification_mirrors_example_3_4() {
        // F1's init vector depends on z-variables; the root fragment records
        // SV_client = <0, 1, 0, 0> at the virtual node for F1 (entry 1 =
        // "the parent matched prefix client"), so F1's Sel variables resolve
        // to exactly that.
        let ft = two_level_ft();
        let slen = 4;
        let mut virtuals: BTreeMap<FragmentId, CompactVector<PaxVar>> = BTreeMap::new();
        let mut sv_client: CompactVector<PaxVar> = CompactVector::all_false(slen);
        sv_client.set(1, BoolExpr::constant(true));
        virtuals.insert(FragmentId(1), sv_client);
        // F1 records, at its own virtual node for F2, a vector depending on
        // its z variables: entry 2 = z[F1.1] (its broker matched iff the
        // parent's client prefix was matched).
        let mut sv_broker: CompactVector<PaxVar> = CompactVector::all_false(slen);
        sv_broker.set(2, BoolExpr::var(PaxVar::Sel { fragment: FragmentId(1), entry: 1 }));
        virtuals.insert(FragmentId(2), sv_broker);

        let root_init = vec![false, false, false, false];
        let mut assignment = DenseAssignment::new(ft.len());
        unify_selection(&ft, &virtuals, &root_init, &mut assignment);
        assert_eq!(assignment.get(&PaxVar::Sel { fragment: FragmentId(1), entry: 1 }), Some(true));
        assert_eq!(assignment.get(&PaxVar::Sel { fragment: FragmentId(2), entry: 2 }), Some(true));
        assert_eq!(assignment.get(&PaxVar::Sel { fragment: FragmentId(2), entry: 1 }), Some(false));
    }

    #[test]
    fn restriction_keeps_only_the_relevant_variables() {
        let mut assignment = DenseAssignment::new(4);
        assignment.set_sel(FragmentId(1), BitVector::from_bools(&[true]));
        assignment.set_sel(FragmentId(2), BitVector::from_bools(&[true]));
        assignment.set_qual(
            FragmentId(2),
            BitVector::from_bools(&[false]),
            BitVector::from_bools(&[true]),
        );
        assignment.set_qual(
            FragmentId(3),
            BitVector::from_bools(&[true]),
            BitVector::from_bools(&[false]),
        );
        let restricted = assignment.restrict_for_fragment(FragmentId(1), &[FragmentId(2)]);
        // F2's QV+QDV entries plus F1's own Sel entry.
        assert_eq!(restricted.len(), 3);
        let back = assignment_from_pairs(&restricted);
        assert_eq!(back.get(&PaxVar::Sel { fragment: FragmentId(1), entry: 0 }), Some(true));
        assert_eq!(
            back.get(&PaxVar::Qual { fragment: FragmentId(2), vector: QualVecKind::Qdv, entry: 0 }),
            Some(true)
        );
        assert_eq!(back.get(&PaxVar::Sel { fragment: FragmentId(2), entry: 0 }), None);
    }

    #[test]
    fn unknown_vectors_and_local_vars_are_unset() {
        let assignment = DenseAssignment::new(2);
        assert_eq!(assignment.get(&PaxVar::Sel { fragment: FragmentId(0), entry: 0 }), None);
        assert_eq!(
            assignment.get(&PaxVar::Local { fragment: FragmentId(0), node: 1, entry: 0 }),
            None
        );
        // Out-of-range fragments are simply unknown, not a panic.
        assert_eq!(assignment.get(&PaxVar::Sel { fragment: FragmentId(9), entry: 0 }), None);
    }

    #[test]
    fn fresh_vector_helpers_produce_distinct_variables() {
        let q = fresh_qual_vectors(FragmentId(5), 4);
        assert_eq!(q.qv.variables().len(), 4);
        assert_eq!(q.qdv.variables().len(), 4);
        assert!(q.qv.variables().is_disjoint(&q.qdv.variables()));
        let s = fresh_selection_vector(FragmentId(5), 3);
        assert_eq!(s.variables().len(), 3);
    }
}

//! The workspace-level error type.
//!
//! The substrate crates each have a focused error enum (`XmlError`,
//! `XPathError`, `FragmentError`); a [`PaxServer`](crate::server::PaxServer)
//! session can fail for any of those reasons plus a few of its own, so the
//! public API surfaces one consolidated [`PaxError`]. `From` conversions
//! exist for every per-crate error, and `?` works across the whole stack.

use paxml_fragment::FragmentError;
use paxml_xml::XmlError;
use paxml_xpath::XPathError;
use std::fmt;

/// Result alias of the consolidated public API.
pub type PaxResult<T> = Result<T, PaxError>;

/// Everything that can go wrong in a [`PaxServer`](crate::server::PaxServer)
/// session, consolidated from the per-crate error enums.
#[derive(Debug, Clone, PartialEq)]
pub enum PaxError {
    /// Parsing or manipulating an XML document failed.
    Xml(XmlError),
    /// Lexing, parsing or compiling an XPath query failed.
    Query(XPathError),
    /// Fragmenting, reassembling or updating a fragmented tree failed.
    Fragment(FragmentError),
    /// The server was configured inconsistently (builder misuse).
    InvalidConfig {
        /// Human-readable description of the misconfiguration.
        message: String,
    },
    /// A [`PreparedQuery`](crate::server::PreparedQuery) was presented to a
    /// server that did not prepare it.
    ForeignQuery {
        /// The query's text, for diagnostics.
        query: String,
    },
    /// A site could not be reached (or died mid-round) over a remote
    /// transport. The in-process simulator never raises this.
    SiteUnreachable {
        /// The unreachable site.
        site: paxml_distsim::SiteId,
        /// What the transport observed (connection refused, reset, EOF…).
        detail: String,
    },
    /// A remote peer violated the wire protocol (undecodable frame,
    /// response of the wrong stage, bad handshake).
    Protocol {
        /// Human-readable description of the violation.
        message: String,
    },
}

impl PaxError {
    /// Is this failure worth retrying?
    ///
    /// Transient faults are those where a later attempt can see a different
    /// world: a site that refused the connection may come back, a read that
    /// timed out may answer next time — these drive the failover loop in
    /// [`PaxServer`](crate::server::PaxServer). Everything else is
    /// *permanent*: a codec mismatch, an invariant violation or a
    /// misconfiguration reproduces identically on retry, so retrying only
    /// hides the bug and burns the deadline budget.
    pub fn is_transient(&self) -> bool {
        matches!(self, PaxError::SiteUnreachable { .. })
    }
}

impl fmt::Display for PaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PaxError::Xml(e) => write!(f, "xml error: {e}"),
            PaxError::Query(e) => write!(f, "query error: {e}"),
            PaxError::Fragment(e) => write!(f, "fragment error: {e}"),
            PaxError::InvalidConfig { message } => {
                write!(f, "invalid server configuration: {message}")
            }
            PaxError::ForeignQuery { query } => {
                write!(f, "prepared query {query:?} belongs to a different server")
            }
            PaxError::SiteUnreachable { site, detail } => {
                write!(f, "site {} unreachable: {detail}", site.0)
            }
            PaxError::Protocol { message } => {
                write!(f, "wire protocol violation: {message}")
            }
        }
    }
}

impl std::error::Error for PaxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PaxError::Xml(e) => Some(e),
            PaxError::Query(e) => Some(e),
            PaxError::Fragment(e) => Some(e),
            PaxError::InvalidConfig { .. }
            | PaxError::ForeignQuery { .. }
            | PaxError::SiteUnreachable { .. }
            | PaxError::Protocol { .. } => None,
        }
    }
}

impl From<XmlError> for PaxError {
    fn from(e: XmlError) -> Self {
        PaxError::Xml(e)
    }
}

impl From<XPathError> for PaxError {
    fn from(e: XPathError) -> Self {
        PaxError::Query(e)
    }
}

impl From<FragmentError> for PaxError {
    fn from(e: FragmentError) -> Self {
        PaxError::Fragment(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn conversions_and_display_cover_every_layer() {
        let e: PaxError = XPathError::EmptyQuery.into();
        assert!(e.to_string().contains("query error"));
        assert!(e.source().is_some());

        let e: PaxError = FragmentError::CannotCutRoot.into();
        assert!(e.to_string().contains("fragment error"));

        let e: PaxError = XmlError::EmptyDocument.into();
        assert!(e.to_string().contains("xml error"));

        let e = PaxError::InvalidConfig { message: "zero sites".into() };
        assert!(e.to_string().contains("zero sites"));
        assert!(e.source().is_none());

        let e = PaxError::ForeignQuery { query: "a/b".into() };
        assert!(e.to_string().contains("a/b"));
    }

    #[test]
    fn only_unreachable_sites_are_transient() {
        let transient = PaxError::SiteUnreachable {
            site: paxml_distsim::SiteId(1),
            detail: "read timed out".into(),
        };
        assert!(transient.is_transient());
        for permanent in [
            PaxError::Protocol { message: "bad frame".into() },
            PaxError::InvalidConfig { message: "zero sites".into() },
            PaxError::ForeignQuery { query: "a/b".into() },
            PaxError::Query(XPathError::EmptyQuery),
            PaxError::Fragment(FragmentError::CannotCutRoot),
            PaxError::Xml(XmlError::EmptyDocument),
        ] {
            assert!(!permanent.is_transient(), "{permanent} must not be retried");
        }
    }
}

//! The `PaxServer` session API: every evaluation mode behind one
//! **concurrently shareable** handle.
//!
//! The paper's algorithms — PaX3, PaX2, the batched engine, the incremental
//! engine, the naive baseline — are one system: a coordinator holding the
//! fragment tree of a long-lived deployment and serving queries over it.
//! This module is that coordinator. A [`PaxServer`]:
//!
//! * **owns the deployment** — callers never thread `&mut Deployment`
//!   around, and every execution reports *its own* cluster meters (each
//!   execution threads a private [`ClusterStats`] recorder through its
//!   rounds);
//! * **prepares queries once** — [`PaxServer::prepare`] compiles and
//!   normalizes a query and caches it by text; a [`PreparedQuery`] is a
//!   cheap handle that can be executed any number of times;
//! * **routes every mode through the right engine** —
//!   [`PaxServer::execute`] (single query), [`PaxServer::execute_batch`]
//!   (shared-visit batch), [`PaxServer::apply_updates`] (fragment updates),
//!   [`PaxServer::query_once`] (one-shot text query), all returning the
//!   unified [`ExecReport`];
//! * **maintains the incremental residual-vector cache across all prepared
//!   queries** (PaX2 servers): the first execution of a prepared query
//!   snapshots its per-fragment residual vectors coordinator-side; an
//!   update round then refreshes *every* prepared query's cache in the one
//!   visit it pays to each dirty site — clean sites are never visited, and
//!   re-executing any prepared query afterwards costs **zero** visits.
//!
//! # The concurrency model: epoch-versioned snapshots
//!
//! `PaxServer` is `Send + Sync`: wrap one in an [`Arc`] and share it with
//! any number of client threads — **no `&mut self` anywhere in the serving
//! path**. The session is MVCC at *deployment* granularity: updates never
//! block readers, readers never block updates, and every execution reads
//! one immutable **epoch** of the deployment from its first visit to its
//! last.
//!
//! The lifecycle is **pin → build → swap → retire**:
//!
//! * **Pin.** Every execution clones the current epoch handle on entry (one
//!   short mutex hold — no lock is kept for the execution's duration) and
//!   tags all of its protocol messages with that epoch number. Sites read
//!   the fragment version current *at that epoch*, and every scratch slot
//!   lives in a per-epoch namespace, so the execution is bit-identical to
//!   one that ran with the cluster frozen at its pinned epoch.
//! * **Build.** [`PaxServer::apply_updates`] (serialized against other
//!   updaters by a writer mutex that readers never touch) takes the current
//!   epoch `N` as its base and builds epoch `N + 1` **concurrently with
//!   in-flight readers**: it visits only the dirty sites, which install new
//!   fragment versions under epoch `N + 1` copy-on-write — clean sites are
//!   never visited, and a clean fragment's epoch-`N` version *is* its
//!   epoch-`N + 1` version by reference. Coordinator-side, every prepared
//!   query's residual-vector session is cloned copy-on-write (clean
//!   fragments' cached vectors are shared by `Arc`) and refreshed against
//!   the new data. During the build the writer holds **no lock a reader
//!   ever takes**.
//! * **Swap.** Publishing epoch `N + 1` is a single pointer swap of the
//!   current-epoch handle. Executions that pinned epoch `N` keep reading
//!   epoch `N` to completion; executions entering after the swap read
//!   epoch `N + 1`. A failed build (e.g. an unreachable site) publishes
//!   nothing — the current epoch stays `N` and pinned readers are
//!   unaffected.
//! * **Retire.** An epoch handle is an `Arc`; when the last pinned
//!   execution drops it the epoch is dead. Site-side, superseded fragment
//!   versions are dropped lazily: every update round piggybacks the oldest
//!   still-live epoch as a retirement watermark on the sites it visits,
//!   and [`PaxServer::vacuum`] sweeps every site explicitly.
//!   [`PaxServer::server_stats`] meters live epochs and cache bytes.
//!
//! Lock order (outermost first): writer mutex → current-epoch handle →
//! epoch session table → individual session → epoch registry. Concurrent
//! executions never block each other: each runs with a private stats
//! recorder and private site-scratch slots; the first (cache-snapshotting)
//! execution of one particular PaX2 prepared query serializes on that
//! query's session lock, after which re-executions are lock-cheap cache
//! reads. `prepare` is exclusive only against other `prepare` calls — it
//! never blocks executions.
//!
//! ```
//! use paxml_core::server::PaxServer;
//! use paxml_core::Algorithm;
//! use paxml_distsim::Placement;
//! use paxml_fragment::strategy::cut_at_labels;
//! use paxml_xml::TreeBuilder;
//!
//! let tree = TreeBuilder::new("clientele")
//!     .open("client").leaf("country", "US")
//!         .open("broker").leaf("name", "E*trade").close()
//!     .close()
//!     .open("client").leaf("country", "Canada")
//!         .open("broker").leaf("name", "CIBC").close()
//!     .close()
//!     .build();
//! let fragmented = cut_at_labels(&tree, &["broker"]).unwrap();
//!
//! let server = PaxServer::builder()
//!     .algorithm(Algorithm::PaX2)
//!     .annotations(true)
//!     .placement(Placement::RoundRobin)
//!     .sites(3)
//!     .deploy(&fragmented)
//!     .unwrap();
//!
//! let q = server.prepare("client[country/text()='US']/broker/name").unwrap();
//! let report = server.execute(&q).unwrap();
//! assert_eq!(report.answer_texts(), vec!["E*trade".to_string()]);
//! assert!(report.max_visits_per_site() <= 2);
//!
//! // A batch shares site visits across queries...
//! let q2 = server.prepare("client/broker/name").unwrap();
//! let batch = server.execute_batch(&[q.clone(), q2]).unwrap();
//! assert_eq!(batch.len(), 2);
//! assert!(batch.max_visits_per_site() <= 2);
//!
//! // ...and re-executing a prepared query is served from the cache.
//! assert_eq!(server.execute(&q).unwrap().max_visits_per_site(), 0);
//! ```
//!
//! Two client threads sharing one server through an `Arc` — the
//! concurrent-serving shape the session API is built for:
//!
//! ```
//! use paxml_core::server::PaxServer;
//! use paxml_core::Algorithm;
//! use paxml_fragment::strategy::cut_at_labels;
//! use paxml_xml::TreeBuilder;
//! use std::sync::Arc;
//! use std::thread;
//!
//! let tree = TreeBuilder::new("clientele")
//!     .open("client").leaf("country", "US")
//!         .open("broker").leaf("name", "E*trade").close()
//!     .close()
//!     .build();
//! let fragmented = cut_at_labels(&tree, &["broker"]).unwrap();
//! let server = Arc::new(
//!     PaxServer::builder().algorithm(Algorithm::PaX2).sites(2).deploy(&fragmented).unwrap(),
//! );
//! let query = server.prepare("client/broker/name").unwrap();
//!
//! let clients: Vec<_> = (0..2)
//!     .map(|_| {
//!         let server = Arc::clone(&server);
//!         let query = query.clone();
//!         thread::spawn(move || server.execute(&query).unwrap().answer_texts())
//!     })
//!     .collect();
//! for client in clients {
//!     assert_eq!(client.join().unwrap(), vec!["E*trade".to_string()]);
//! }
//! ```

use crate::deployment::{Deployment, ExecCtx, Topology};
use crate::error::{PaxError, PaxResult};
use crate::incremental::QuerySession;
use crate::protocol::{MsgRefrag, MsgSessionUpdate, MsgVacuum, SessionRecompute};
use crate::report::{Algorithm, ExecMode, ExecReport, QueryOutcome, UpdateOutcome};
use crate::transport::{ProtocolRequest, TcpOptions, VacuumOutcome};
use crate::EvalOptions;
use crate::{batch, naive, pax2, pax3};
use paxml_distsim::{ClusterStats, Placement, ReplicaSet, SiteId};
use paxml_fragment::{Fragment, FragmentId, FragmentTree, FragmentedTree, UpdateOp};
use paxml_xpath::{compile_text, CompileCache, CompiledQuery};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, Weak};
use std::time::{Duration, Instant};

/// A query compiled and normalized once by [`PaxServer::prepare`], reusable
/// across any number of executions of the server that prepared it. Cloning
/// is cheap (the compiled form is shared), and a clone may be moved to any
/// thread.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    /// Position in the server's prepared-query table.
    id: usize,
    text: Arc<str>,
    compiled: Arc<CompiledQuery>,
}

impl PreparedQuery {
    /// The query text as prepared.
    pub fn text(&self) -> &str {
        &self.text
    }

    /// The compiled, normalized form.
    pub fn compiled(&self) -> &CompiledQuery {
        &self.compiled
    }
}

/// How much work [`PaxServer::prepare_set`] shared across its queries,
/// measured against compiling every text independently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrepareSetStats {
    /// Number of texts in the set (including duplicates).
    pub queries: usize,
    /// Number of distinct normal forms among them — only these were
    /// actually compiled (or found already compiled).
    pub distinct_queries: usize,
    /// Qualifier sub-trees served from the shared pool during this set.
    pub subtree_hits: u64,
    /// Qualifier sub-trees compiled fresh into the pool during this set.
    pub subtree_misses: u64,
    /// Total `QVect` entries in the server's shared compilation pool after
    /// the set was prepared.
    pub arena_entries: usize,
    /// Total `QVect` entries the set's texts would occupy if each were
    /// compiled independently (the sum of their `QVect` lengths — cached
    /// compilation produces identical queries, so this is exact).
    pub arena_entries_independent: usize,
    /// Wall-clock time for the whole set, parse to table insertion.
    pub elapsed: Duration,
}

/// Builder for a [`PaxServer`]. Obtain with [`PaxServer::builder`],
/// configure, then [`PaxServerBuilder::deploy`] over a fragmented tree.
#[derive(Debug, Clone)]
pub struct PaxServerBuilder {
    algorithm: Algorithm,
    use_annotations: bool,
    placement: Placement,
    sites: Option<usize>,
    assignment: Option<BTreeMap<FragmentId, SiteId>>,
    replication: usize,
    sequential: bool,
    round_latency: Duration,
    site_delays: BTreeMap<SiteId, Duration>,
    auto_vacuum_threshold: Option<u64>,
    retry_policy: RetryPolicy,
    tcp_options: TcpOptions,
}

impl Default for PaxServerBuilder {
    fn default() -> Self {
        PaxServerBuilder {
            algorithm: Algorithm::PaX2,
            use_annotations: false,
            placement: Placement::RoundRobin,
            sites: None,
            assignment: None,
            replication: 1,
            sequential: false,
            round_latency: Duration::ZERO,
            site_delays: BTreeMap::new(),
            auto_vacuum_threshold: None,
            retry_policy: RetryPolicy::default(),
            tcp_options: TcpOptions::default(),
        }
    }
}

/// How a [`PaxServer`] turns transient site faults into retries and
/// failovers. Every client-facing operation — executions, updates,
/// re-fragmentations — runs under this policy: a transient failure
/// ([`PaxError::is_transient`]) records a strike against the faulty site,
/// backs off, and retries the whole operation, which re-routes around
/// quarantined sites onto their next live replica. Permanent errors
/// surface immediately.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation, first try included (default 3).
    pub max_attempts: u32,
    /// Backoff before retry `n` is `backoff_step × n` (default 10 ms).
    pub backoff_step: Duration,
    /// Backoff never exceeds this (default 200 ms).
    pub backoff_cap: Duration,
    /// Per-operation deadline budget: once elapsed time plus the pending
    /// backoff would cross it, the operation fails with the last transient
    /// error instead of retrying (default `None` — only `max_attempts`
    /// bounds the loop).
    pub deadline: Option<Duration>,
    /// Transient faults a site may accumulate before it is quarantined
    /// (default 1: the first fault quarantines).
    pub quarantine_after: u32,
    /// How long a quarantined site rests before the server probes it for
    /// readmission; a failed probe restarts the cooldown (default 100 ms).
    pub probe_cooldown: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_step: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(200),
            deadline: None,
            quarantine_after: 1,
            probe_cooldown: Duration::from_millis(100),
        }
    }
}

impl PaxServerBuilder {
    /// Which engine serves single-query executions (default
    /// [`Algorithm::PaX2`], the only engine with an incremental
    /// residual-vector cache).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Enable the XPath-annotation optimization of §5 (default off).
    pub fn annotations(mut self, on: bool) -> Self {
        self.use_annotations = on;
        self
    }

    /// How fragments are placed onto sites (default round-robin). Ignored
    /// when an explicit [`PaxServerBuilder::assignment`] is given.
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Number of simulated sites (default: one site per fragment).
    pub fn sites(mut self, sites: usize) -> Self {
        self.sites = Some(sites);
        self
    }

    /// An explicit fragment→site assignment (fragments not mentioned go to
    /// site 0). Overrides [`PaxServerBuilder::placement`].
    pub fn assignment(mut self, assignment: BTreeMap<FragmentId, SiteId>) -> Self {
        self.assignment = Some(assignment);
        self
    }

    /// Store every fragment on that many sites (default 1: unreplicated).
    /// The primary copy is placed by [`PaxServerBuilder::placement`] as
    /// before; each extra copy goes to the next site round-robin, so no two
    /// copies of one fragment share a site. Clamped to the site count.
    /// Incompatible with an explicit [`PaxServerBuilder::assignment`].
    pub fn replication(mut self, copies: usize) -> Self {
        self.replication = copies.max(1);
        self
    }

    /// The fault-handling policy of every operation of the server (default
    /// [`RetryPolicy::default`]).
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry_policy = policy;
        self
    }

    /// Socket tuning for TCP transports: read timeout, connect-retry
    /// schedule, probe budget (default [`TcpOptions::default`]). Applied by
    /// [`PaxServerBuilder::deploy_over`]; the in-process simulator ignores
    /// it.
    pub fn tcp_options(mut self, options: TcpOptions) -> Self {
        self.tcp_options = options;
        self
    }

    /// Run coordinator rounds sequentially (deterministic) instead of on
    /// the per-site worker pool (default parallel).
    pub fn sequential(mut self, sequential: bool) -> Self {
        self.sequential = sequential;
        self
    }

    /// Charge a fixed latency per coordinator round (simulated network
    /// RTT; default zero).
    pub fn round_latency(mut self, latency: Duration) -> Self {
        self.round_latency = latency;
        self
    }

    /// Slow one site down artificially (skew/failure-injection studies).
    pub fn site_delay(mut self, site: SiteId, delay: Duration) -> Self {
        self.site_delays.insert(site, delay);
        self
    }

    /// Sweep the cluster automatically once that many epochs have retired
    /// since the last sweep (default: never — [`PaxServer::vacuum`] stays
    /// explicit). The sweep runs at the end of the update or
    /// re-fragmentation that crossed the threshold, under the same writer
    /// lock, so it never races another publisher.
    pub fn auto_vacuum_threshold(mut self, retired_epochs: u64) -> Self {
        self.auto_vacuum_threshold = Some(retired_epochs.max(1));
        self
    }

    /// Deploy `fragmented` over the configured cluster and start the
    /// session.
    pub fn deploy(self, fragmented: &FragmentedTree) -> PaxResult<PaxServer> {
        if self.sites == Some(0) {
            return Err(PaxError::InvalidConfig {
                message: "a deployment needs at least one site".into(),
            });
        }
        let sites = self.sites.unwrap_or_else(|| fragmented.fragment_count().max(1));
        if let Some(assignment) = &self.assignment {
            if let Some((f, s)) = assignment.iter().find(|(_, s)| s.index() >= sites) {
                return Err(PaxError::InvalidConfig {
                    message: format!("fragment {f} assigned to nonexistent site {s} (of {sites})"),
                });
            }
        }
        if self.assignment.is_some() && self.replication > 1 {
            return Err(PaxError::InvalidConfig {
                message: "an explicit assignment fixes one site per fragment; use placement() \
                          with replication() instead"
                    .into(),
            });
        }
        let mut deployment = match self.assignment {
            Some(assignment) => Deployment::with_assignment(fragmented, sites, assignment),
            None if self.replication > 1 => {
                Deployment::replicated(fragmented, sites, self.placement, self.replication)
            }
            None => Deployment::new(fragmented, sites, self.placement),
        };
        let sequential = self.sequential;
        let round_latency = self.round_latency;
        let site_delays = self.site_delays;
        deployment.configure_sim(move |cluster| {
            cluster.sequential = sequential;
            cluster.round_latency = round_latency;
            cluster.site_delay = site_delays;
        });
        let (current, epochs) = initial_epoch();
        Ok(PaxServer {
            deployment,
            algorithm: self.algorithm,
            options: EvalOptions { use_annotations: self.use_annotations },
            retry: self.retry_policy,
            writer: Mutex::new(()),
            current,
            epochs,
            prepared: RwLock::new(PreparedTable::default()),
            update_hook: Mutex::new(None),
            retired_placements: Mutex::new(Vec::new()),
            auto_vacuum_threshold: self.auto_vacuum_threshold,
            retired_at_last_vacuum: AtomicU64::new(0),
        })
    }

    /// Deploy over an externally built [`Transport`](crate::Transport)
    /// (e.g. `paxml-wire`'s `TcpCluster`) and start the session.
    ///
    /// The transport already owns the site topology, so the simulator-only
    /// builder knobs — [`sites`](PaxServerBuilder::sites),
    /// [`placement`](PaxServerBuilder::placement),
    /// [`assignment`](PaxServerBuilder::assignment),
    /// [`sequential`](PaxServerBuilder::sequential),
    /// [`round_latency`](PaxServerBuilder::round_latency) and
    /// [`site_delay`](PaxServerBuilder::site_delay) — do not apply here and
    /// are ignored; [`algorithm`](PaxServerBuilder::algorithm),
    /// [`annotations`](PaxServerBuilder::annotations),
    /// [`retry_policy`](PaxServerBuilder::retry_policy) and
    /// [`tcp_options`](PaxServerBuilder::tcp_options) take effect.
    pub fn deploy_over(
        self,
        fragmented: &FragmentedTree,
        transport: Arc<dyn crate::transport::Transport>,
    ) -> PaxResult<PaxServer> {
        transport.configure_tcp(&self.tcp_options);
        let (current, epochs) = initial_epoch();
        Ok(PaxServer {
            deployment: Deployment::over_transport(fragmented, transport),
            algorithm: self.algorithm,
            options: EvalOptions { use_annotations: self.use_annotations },
            retry: self.retry_policy,
            writer: Mutex::new(()),
            current,
            epochs,
            prepared: RwLock::new(PreparedTable::default()),
            update_hook: Mutex::new(None),
            retired_placements: Mutex::new(Vec::new()),
            auto_vacuum_threshold: self.auto_vacuum_threshold,
            retired_at_last_vacuum: AtomicU64::new(0),
        })
    }
}

/// The prepared-query table: compilations cached by query text, plus the
/// two sharing layers that make overlapping prepared queries cheap:
///
/// * `by_norm` — whole-query sharing: two texts with the same normal form
///   (e.g. `a[b][2]` and `a[2][b]`) share one compiled `Arc`;
/// * `compile_cache` — sub-query sharing: distinct queries whose qualifier
///   sub-trees overlap (e.g. a hundred variants of
///   `person[address/country/text()='US']/…`) compile each shared sub-tree
///   once into a common pool and splice it thereafter.
#[derive(Default)]
struct PreparedTable {
    queries: Vec<PreparedQuery>,
    by_text: BTreeMap<String, usize>,
    by_norm: BTreeMap<String, usize>,
    compile_cache: CompileCache,
}

/// One immutable deployment epoch: the unit executions pin on entry.
///
/// The fragment *data* of an epoch lives site-side (each site keeps a
/// version list per fragment, read at the pinned epoch number); the
/// coordinator side of an epoch is the per-prepared-query residual-vector
/// sessions consistent with that data. An epoch is dead when the last
/// pinned execution drops its `Arc`; the server tracks epochs through
/// [`Weak`] handles so retirement needs no reference counting of its own.
struct EpochInner {
    /// The epoch number tagged onto every protocol message of a pinned
    /// execution. Epoch 0 is the initial deployment.
    number: u64,
    /// Residual-vector caches per prepared query (PaX2 servers), keyed by
    /// the prepared query's id, *consistent with this epoch's data*.
    /// Populated on first execution, carried copy-on-write into the next
    /// epoch by every update. Each session has its own lock so executions
    /// of *different* prepared queries never contend.
    sessions: Mutex<BTreeMap<usize, Arc<Mutex<QuerySession>>>>,
}

/// A consistent snapshot of the server's epoch machinery, from
/// [`PaxServer::server_stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// The epoch new executions pin right now.
    pub current_epoch: u64,
    /// Epochs still pinned by at least one handle (the current epoch
    /// always counts). Steady state is 1; more means executions are still
    /// draining on older epochs.
    pub live_epochs: usize,
    /// Epochs published and since fully drained (`current_epoch + 1 -
    /// live_epochs`).
    pub retired_epochs: u64,
    /// Bytes of the current epoch's session caches under the canonical
    /// wire encoding (per-session logical size; vectors shared
    /// copy-on-write across epochs are charged once per session).
    pub session_cache_bytes: u64,
    /// The current placement-map (topology) version: 0 until the first
    /// re-fragmentation publishes, incremented by each one after.
    pub placement_version: u64,
    /// Per-site load breakdown, one entry per site of the cluster — the
    /// observability half of the rebalance planner's cost model.
    pub site_loads: Vec<SiteLoad>,
}

impl ServerStats {
    /// The largest resident-bytes figure any single site carries.
    pub fn max_site_bytes(&self) -> u64 {
        self.site_loads.iter().map(|l| l.resident_bytes).max().unwrap_or(0)
    }
}

/// One site's load figures inside [`ServerStats`]: what it stores now
/// (resident fragments/bytes at the newest epoch) and what it has served
/// since the deployment started (cumulative visits and protocol bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteLoad {
    /// The site.
    pub site: SiteId,
    /// Distinct fragments resident at the site's newest epoch.
    pub fragment_count: usize,
    /// Bytes those fragments occupy under the canonical encoding.
    pub resident_bytes: u64,
    /// Cumulative visits the coordinator paid this site.
    pub visits: u32,
    /// Cumulative protocol bytes moved to and from this site.
    pub bytes_served: u64,
}

/// A long-lived evaluation session over one deployment: prepared queries,
/// single and batched execution, and fragment updates, all through one
/// `Send + Sync` handle shared by any number of client threads. See the
/// [module docs](self) for the full picture, including which operations
/// block which.
pub struct PaxServer {
    deployment: Deployment,
    algorithm: Algorithm,
    options: EvalOptions,
    /// Fault handling: retry budget, backoff, quarantine thresholds.
    retry: RetryPolicy,
    /// Serializes updaters against each other — never taken by the read
    /// path. Held across the whole build-and-publish of one update (and
    /// by [`PaxServer::vacuum`]), so epoch numbers advance one at a time.
    writer: Mutex<()>,
    /// The epoch new executions pin. Readers hold this lock only long
    /// enough to clone the `Arc`; `apply_updates` only long enough to swap
    /// in the next epoch.
    current: Mutex<Arc<EpochInner>>,
    /// Every epoch not yet proven dead, by number. `Weak`: the registry
    /// never keeps an epoch alive, it only observes which ones still are.
    epochs: Mutex<EpochRegistry>,
    /// Queries compiled so far, cached by text.
    prepared: RwLock<PreparedTable>,
    /// Test instrumentation: invoked by `apply_updates` (and
    /// [`PaxServer::refragment`]) after the build round and before the
    /// publish swap, with no reader-visible lock held. Lets the
    /// wait-freedom suite hold an update open mid-air.
    update_hook: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
    /// `(fragment, site)` placements dissolved by re-fragmentations, kept
    /// until a vacuum sweep can prove no live epoch still routes to them
    /// and purges the stale copies wholesale.
    retired_placements: Mutex<Vec<RetiredPlacement>>,
    /// Auto-vacuum: sweep once this many epochs retired since the last
    /// sweep (`None`: only explicit [`PaxServer::vacuum`] calls sweep).
    auto_vacuum_threshold: Option<u64>,
    /// Total retired-epoch count as of the last (auto or explicit) vacuum.
    retired_at_last_vacuum: AtomicU64,
}

/// A fragment→site placement dissolved by a re-fragmentation. The old
/// site's copy must outlive every epoch that still routes to it; the
/// vacuum sweep purges it once the oldest live epoch reaches
/// `removal_epoch`.
struct RetiredPlacement {
    fragment: FragmentId,
    site: SiteId,
    /// The first epoch in which the placement no longer exists.
    removal_epoch: u64,
}

/// The epoch registry: every epoch not yet proven dead, by number.
type EpochRegistry = BTreeMap<u64, Weak<EpochInner>>;

/// Build the epoch-0 state shared by both deployment constructors.
fn initial_epoch() -> (Mutex<Arc<EpochInner>>, Mutex<EpochRegistry>) {
    let epoch0 = Arc::new(EpochInner { number: 0, sessions: Mutex::new(BTreeMap::new()) });
    let registry = BTreeMap::from([(0, Arc::downgrade(&epoch0))]);
    (Mutex::new(epoch0), Mutex::new(registry))
}

impl PaxServer {
    /// Start configuring a server.
    pub fn builder() -> PaxServerBuilder {
        PaxServerBuilder::default()
    }

    /// The engine serving single-query executions.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The evaluation options of this session.
    pub fn options(&self) -> &EvalOptions {
        &self.options
    }

    /// The owned deployment (read-only; all mutation goes through the
    /// server so the meters stay faithful).
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// Number of queries prepared so far.
    pub fn prepared_count(&self) -> usize {
        self.prepared.read().expect("the prepared-query lock is never poisoned").queries.len()
    }

    /// A consistent snapshot of the cumulative cluster meters since the
    /// deployment started (each [`ExecReport`] carries the per-execution
    /// counters instead). Snapshots are committed whole-round, so two
    /// snapshots bracketing any set of concurrent executions yield an
    /// accurate [`ClusterStats::delta_since`].
    pub fn cumulative_stats(&self) -> ClusterStats {
        self.deployment.stats()
    }

    /// Pin the current epoch: clone the handle under a short lock hold.
    /// The returned `Arc` keeps the epoch live (and its site-side fragment
    /// versions unretired) until the caller drops it.
    fn pin(&self) -> Arc<EpochInner> {
        Arc::clone(&self.current.lock().expect("the current-epoch lock is never poisoned"))
    }

    /// The retry/failover policy of this server.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// Probe every quarantined site whose cooldown has elapsed; a site that
    /// answers is readmitted (strikes cleared — its stale copies stay off
    /// the routing path until [`PaxServer::repair`] refreshes them).
    fn probe_quarantined(&self) {
        let health = self.deployment.health();
        for site in health.due_for_probe(self.retry.probe_cooldown) {
            if self.deployment.transport().probe(site) {
                health.readmit(site);
            } else {
                health.probe_failed(site);
            }
        }
    }

    /// Run one operation under the server's [`RetryPolicy`]: probe due
    /// quarantined sites, attempt, and on a *transient* failure strike the
    /// faulty site (quarantining it once it crosses the threshold), back
    /// off, and retry the whole operation — which re-routes around
    /// quarantined sites onto their next live replicas. Each attempt is
    /// whole-operation: a retried execution pins the epoch afresh and gets
    /// fresh scratch slots, a retried update re-builds its round, so no
    /// attempt ever reads another attempt's partial state. Permanent errors
    /// surface immediately; the deadline budget bounds the total time spent
    /// retrying.
    fn with_failover<T>(&self, mut operation: impl FnMut() -> PaxResult<T>) -> PaxResult<T> {
        let started = Instant::now();
        let mut attempt = 0u32;
        loop {
            self.probe_quarantined();
            let error = match operation() {
                Ok(value) => return Ok(value),
                Err(error) if error.is_transient() => error,
                Err(error) => return Err(error),
            };
            if let PaxError::SiteUnreachable { site, .. } = &error {
                self.deployment.health().record_fault(*site, self.retry.quarantine_after);
            }
            attempt += 1;
            if attempt >= self.retry.max_attempts.max(1) {
                return Err(error);
            }
            let backoff = (self.retry.backoff_step * attempt).min(self.retry.backoff_cap);
            if let Some(deadline) = self.retry.deadline {
                if started.elapsed() + backoff >= deadline {
                    return Err(error);
                }
            }
            std::thread::sleep(backoff);
        }
    }

    /// Re-install every stale fragment copy whose site has been readmitted:
    /// fetch the current payload from a live replica, ship it to the
    /// recovering site pinned to the **current** epoch, and close the stale
    /// range there — readers pinned inside the outage window keep avoiding
    /// the copy, readers at or after the repair epoch use it again. Returns
    /// the number of copies repaired. Updates and re-fragmentations run
    /// this automatically before building; calling it explicitly shortens
    /// the exposure window after a site rejoins.
    pub fn repair(&self) -> PaxResult<usize> {
        let _writer = self.writer.lock().expect("the writer lock is never poisoned");
        self.repair_locked()
    }

    /// The repair pass itself, writer lock already held.
    fn repair_locked(&self) -> PaxResult<usize> {
        let health = self.deployment.health();
        let pending = health.unrepaired_stale();
        if pending.is_empty() {
            return Ok(0);
        }
        let current = self.pin();
        let topology = self.deployment.topology_at(current.number);
        let mut repaired = 0usize;
        for (fragment, site) in pending {
            let still_placed =
                topology.placement.get(&fragment).is_some_and(|set| set.contains(site));
            if !still_placed {
                // The copy was re-fragmented away; nothing to repair and
                // the vacuum sweep owns the leftover versions.
                health.mark_repaired(fragment, site, current.number);
                continue;
            }
            if health.is_quarantined(site) {
                continue; // Still down; a later pass will get it.
            }
            let source = self.deployment.choose_replica(&topology, fragment, current.number)?;
            let mut ctx = ExecCtx::pinned(&self.deployment, current.number, 0);
            let fetched = ctx
                .round(BTreeMap::from([(source, ProtocolRequest::FetchFragments(vec![fragment]))]))?
                .remove(&source)
                .map(|response| response.into_fragments())
                .transpose()?
                .unwrap_or_default();
            let installs: Vec<Fragment> =
                fetched.into_iter().filter(|f| f.id == fragment).collect();
            if installs.is_empty() {
                continue;
            }
            let responses = ctx
                .round(BTreeMap::from([(site, ProtocolRequest::Refrag(MsgRefrag { installs }))]))?;
            for response in responses.into_values() {
                response.into_refragged()?;
            }
            health.mark_repaired(fragment, site, current.number);
            repaired += 1;
        }
        Ok(repaired)
    }

    /// The oldest epoch still pinned anywhere — the retirement watermark:
    /// site-side versions superseded at or below it can never be read
    /// again. Prunes dead registry entries as a side effect.
    fn live_watermark(&self) -> u64 {
        let mut registry = self.epochs.lock().expect("the epoch registry is never poisoned");
        registry.retain(|_, weak| weak.strong_count() > 0);
        registry.keys().next().copied().unwrap_or(0)
    }

    /// A consistent snapshot of the epoch machinery: current epoch, how
    /// many epochs are still pinned, and the current epoch's session-cache
    /// footprint. The leak check of the stress suite asserts `live_epochs`
    /// returns to 1 once readers drain.
    pub fn server_stats(&self) -> ServerStats {
        let current = self.pin();
        let live_epochs = {
            let mut registry = self.epochs.lock().expect("the epoch registry is never poisoned");
            registry.retain(|_, weak| weak.strong_count() > 0);
            registry.len()
        };
        let session_cache_bytes = {
            let sessions =
                current.sessions.lock().expect("the session-table lock is never poisoned");
            sessions
                .values()
                .map(|arc| arc.lock().expect("a session lock is never poisoned").cache_bytes())
                .sum()
        };
        let cumulative = self.deployment.stats();
        let site_loads = (0..self.deployment.site_count())
            .map(|index| {
                let site = SiteId(index);
                let report = self.deployment.transport().site_load(site);
                let served = cumulative.sites.get(&site).cloned().unwrap_or_default();
                SiteLoad {
                    site,
                    fragment_count: report.fragment_count(),
                    resident_bytes: report.resident_bytes(),
                    visits: served.visits,
                    bytes_served: served.bytes_received + served.bytes_sent,
                }
            })
            .collect();
        ServerStats {
            current_epoch: current.number,
            live_epochs,
            retired_epochs: current.number + 1 - live_epochs as u64,
            session_cache_bytes,
            placement_version: self.deployment.topology_at(current.number).version,
            site_loads,
        }
    }

    /// Install a hook [`PaxServer::apply_updates`] invokes after the build
    /// round and before the publish swap — test instrumentation for the
    /// wait-freedom suite (a hook that sleeps holds the update open while
    /// readers must keep completing on the old epoch). No reader-visible
    /// lock is held while the hook runs.
    pub fn set_update_hook<F: Fn() + Send + Sync + 'static>(&self, hook: F) {
        *self.update_hook.lock().expect("the update-hook lock is never poisoned") =
            Some(Box::new(hook));
    }

    /// Remove the hook installed by [`PaxServer::set_update_hook`].
    pub fn clear_update_hook(&self) {
        *self.update_hook.lock().expect("the update-hook lock is never poisoned") = None;
    }

    /// Sweep every site — occupied or not — dropping fragment versions no
    /// live epoch can still read and purging copies left behind by
    /// migrations and merges once no live epoch routes to them. Update
    /// rounds already piggyback the retirement watermark onto the sites
    /// they visit; `vacuum` reaches the sites a sparse update stream never
    /// touches. Returns the total versions dropped and left live across
    /// the cluster.
    ///
    /// With [`PaxServerBuilder::auto_vacuum_threshold`] set, the server
    /// also runs this sweep by itself at the end of an update or
    /// re-fragmentation once enough epochs have retired; the explicit call
    /// keeps working either way.
    pub fn vacuum(&self) -> PaxResult<VacuumOutcome> {
        let _writer = self.writer.lock().expect("the writer lock is never poisoned");
        self.vacuum_locked()
    }

    /// The sweep itself, callers already holding the writer lock (the
    /// public [`PaxServer::vacuum`] and the auto-vacuum trigger inside the
    /// publish paths — taking the writer mutex here again would deadlock).
    fn vacuum_locked(&self) -> PaxResult<VacuumOutcome> {
        let current = self.pin();
        let watermark = self.live_watermark();
        // Placements dissolved at or below the watermark can never be
        // routed to again: purge their copies wholesale. Later removals
        // stay queued for a future sweep.
        let mut purge_by_site: BTreeMap<SiteId, Vec<FragmentId>> = BTreeMap::new();
        {
            let retired = self
                .retired_placements
                .lock()
                .expect("the retired-placement lock is never poisoned");
            for placement in retired.iter().filter(|p| p.removal_epoch <= watermark) {
                purge_by_site.entry(placement.site).or_default().push(placement.fragment);
            }
        }
        let mut ctx = ExecCtx::pinned(&self.deployment, current.number, watermark);
        let requests: BTreeMap<SiteId, ProtocolRequest> = (0..self.deployment.site_count())
            .map(|index| {
                let site = SiteId(index);
                let purge = purge_by_site.remove(&site).unwrap_or_default();
                (site, ProtocolRequest::Vacuum(MsgVacuum { purge }))
            })
            .collect();
        // A failed sweep (a site process died) keeps every queued removal:
        // purges are idempotent, so the next sweep simply retries them.
        let responses = ctx.round(requests)?;
        let mut outcome = VacuumOutcome { dropped: 0, live_versions: 0 };
        for response in responses.into_values() {
            let swept = response.into_vacuumed()?;
            outcome.dropped += swept.dropped;
            outcome.live_versions += swept.live_versions;
        }
        self.retired_placements
            .lock()
            .expect("the retired-placement lock is never poisoned")
            .retain(|p| p.removal_epoch > watermark);
        self.retired_at_last_vacuum
            .store(current.number + 1 - self.live_epoch_count() as u64, Ordering::Relaxed);
        Ok(outcome)
    }

    /// Live epochs right now (prunes dead registry entries).
    fn live_epoch_count(&self) -> usize {
        let mut registry = self.epochs.lock().expect("the epoch registry is never poisoned");
        registry.retain(|_, weak| weak.strong_count() > 0);
        registry.len()
    }

    /// The auto-vacuum trigger, run at the end of every publish while the
    /// writer lock is still held. A failed sweep is deliberately swallowed:
    /// the publish it piggybacks on has already succeeded, and the queued
    /// removals survive for the next sweep.
    fn maybe_auto_vacuum(&self, published_epoch: u64) {
        let Some(threshold) = self.auto_vacuum_threshold else {
            return;
        };
        let retired_total = published_epoch + 1 - self.live_epoch_count() as u64;
        if retired_total.saturating_sub(self.retired_at_last_vacuum.load(Ordering::Relaxed))
            >= threshold
        {
            let _ = self.vacuum_locked();
        }
    }

    /// Compile and normalize `text` once, caching by query text: preparing
    /// the same text again returns the cached compilation, and a text whose
    /// *normal form* matches an earlier prepared query shares that query's
    /// compiled `Arc`. Exclusive only against other `prepare` calls —
    /// in-flight executions are not blocked.
    pub fn prepare(&self, text: &str) -> PaxResult<PreparedQuery> {
        {
            let table = self.prepared.read().expect("the prepared-query lock is never poisoned");
            if let Some(&id) = table.by_text.get(text) {
                return Ok(table.queries[id].clone());
            }
        }
        // Parse and normalize outside any lock — a slow parse must not
        // stall resolve() calls of concurrent executions. Only the (cheap,
        // cache-assisted) compilation step runs under the write lock, so it
        // can consult the server's shared sub-tree pool.
        let norm = paxml_xpath::normalize(&paxml_xpath::parse(text)?);
        let mut table = self.prepared.write().expect("the prepared-query lock is never poisoned");
        Self::prepare_normalized(&mut table, text, &norm)
    }

    /// Table-level prepare of one text whose normal form is already in
    /// hand. Shares whole compilations via `by_norm` and qualifier
    /// sub-trees via the table's `compile_cache`.
    fn prepare_normalized(
        table: &mut PreparedTable,
        text: &str,
        norm: &paxml_xpath::NormQuery,
    ) -> PaxResult<PreparedQuery> {
        if let Some(&id) = table.by_text.get(text) {
            // A racing prepare of the same text won; use its entry.
            return Ok(table.queries[id].clone());
        }
        let norm_key = format!("{norm:?}");
        let compiled = match table.by_norm.get(&norm_key) {
            Some(&id) => Arc::clone(&table.queries[id].compiled),
            None => Arc::new(paxml_xpath::compile_with_cache(norm, &mut table.compile_cache)?),
        };
        let id = table.queries.len();
        let query = PreparedQuery { id, text: Arc::from(text), compiled };
        table.queries.push(query.clone());
        table.by_text.insert(text.to_string(), id);
        table.by_norm.entry(norm_key).or_insert(id);
        Ok(query)
    }

    /// Prepare a whole set of queries in one call, maximising sharing
    /// across them: texts with equal normal forms share one compiled query,
    /// and distinct queries with overlapping qualifier sub-trees share
    /// those sub-trees through the server's compilation pool. Returns the
    /// prepared queries in input order plus a [`PrepareSetStats`] report
    /// quantifying the sharing against independent compilation.
    ///
    /// The whole set is admitted atomically under one table lock; any parse
    /// or compile error rejects the entire set without side effects on the
    /// table (beyond sub-trees already pooled, which are harmless).
    pub fn prepare_set(&self, texts: &[&str]) -> PaxResult<(Vec<PreparedQuery>, PrepareSetStats)> {
        let start = Instant::now();
        // Parse and normalize everything outside the lock; fail fast before
        // touching the table.
        let mut norms = Vec::with_capacity(texts.len());
        for text in texts {
            norms.push(paxml_xpath::normalize(&paxml_xpath::parse(text)?));
        }
        let mut table = self.prepared.write().expect("the prepared-query lock is never poisoned");
        let (hits_before, misses_before) = (table.compile_cache.hits, table.compile_cache.misses);
        let mut queries = Vec::with_capacity(texts.len());
        let mut distinct: BTreeSet<String> = BTreeSet::new();
        let mut arena_entries_independent = 0usize;
        for (text, norm) in texts.iter().zip(&norms) {
            let query = Self::prepare_normalized(&mut table, text, norm)?;
            // What compiling this text on its own would have cost: its full
            // QVect (the cached output is identical to an uncached compile).
            arena_entries_independent += query.compiled.qvect_len();
            distinct.insert(format!("{norm:?}"));
            queries.push(query);
        }
        let stats = PrepareSetStats {
            queries: texts.len(),
            distinct_queries: distinct.len(),
            subtree_hits: table.compile_cache.hits - hits_before,
            subtree_misses: table.compile_cache.misses - misses_before,
            arena_entries: table.compile_cache.pool_entries(),
            arena_entries_independent,
            elapsed: start.elapsed(),
        };
        Ok((queries, stats))
    }

    /// Check a prepared query belongs to this server and return its id.
    fn resolve(&self, query: &PreparedQuery) -> PaxResult<usize> {
        let table = self.prepared.read().expect("the prepared-query lock is never poisoned");
        match table.queries.get(query.id) {
            Some(own) if *own.text == *query.text => Ok(query.id),
            _ => Err(PaxError::ForeignQuery { query: query.text().to_string() }),
        }
    }

    /// Execute a prepared query through the configured engine. Takes
    /// `&self`: any number of executions may run concurrently, and none is
    /// ever blocked by an in-flight [`PaxServer::apply_updates`] — the
    /// execution pins the epoch current at entry and reads it to
    /// completion (see the [module docs](self)).
    ///
    /// On a PaX2 server the first execution also snapshots the query's
    /// residual vectors coordinator-side (one visit per relevant site —
    /// within the ≤ 2 bound); later executions are served from that cache
    /// with **zero visits** until an update dirties it, and
    /// [`PaxServer::apply_updates`] re-freshens it in the update's own
    /// visit. PaX3 and naive servers run their classic protocols each time.
    pub fn execute(&self, query: &PreparedQuery) -> PaxResult<ExecReport> {
        self.resolve(query)?;
        self.with_failover(|| {
            let epoch = self.pin();
            match self.algorithm {
                Algorithm::NaiveCentralized => {
                    naive::run(&self.deployment, &query.compiled, query.text(), epoch.number)
                }
                Algorithm::PaX3 => pax3::run(
                    &self.deployment,
                    &query.compiled,
                    query.text(),
                    &self.options,
                    epoch.number,
                ),
                Algorithm::PaX2 => self.execute_session(query, &epoch),
            }
        })
    }

    /// Prepare (or fetch the cached preparation of) `text` and execute it.
    pub fn execute_text(&self, text: &str) -> PaxResult<ExecReport> {
        let query = self.prepare(text)?;
        self.execute(&query)
    }

    /// One-shot evaluation of `text` through the configured classic engine:
    /// compiles fresh, runs the full protocol, touches no prepared-query
    /// cache. This is the drop-in replacement for the deprecated
    /// `pax2::evaluate`-style free functions (and what benchmarks use as
    /// the un-amortized baseline). Shares the deployment like
    /// [`PaxServer::execute`] does.
    pub fn query_once(&self, text: &str) -> PaxResult<ExecReport> {
        let compiled = compile_text(text)?;
        self.with_failover(|| {
            let epoch = self.pin();
            match self.algorithm {
                Algorithm::NaiveCentralized => {
                    naive::run(&self.deployment, &compiled, text, epoch.number)
                }
                Algorithm::PaX3 => {
                    pax3::run(&self.deployment, &compiled, text, &self.options, epoch.number)
                }
                Algorithm::PaX2 => {
                    pax2::run(&self.deployment, &compiled, text, &self.options, epoch.number)
                }
            }
        })
    }

    /// Execute a batch of prepared queries in one shared-visit execution.
    ///
    /// PaX2 and PaX3 servers run the batched combined protocol (the whole
    /// batch costs each site at most two visits, §4 extended); a naive
    /// server evaluates the batch one query at a time. Batch executions do
    /// not touch the prepared-query residual caches, and run concurrently
    /// with other executions like [`PaxServer::execute`] does.
    pub fn execute_batch(&self, queries: &[PreparedQuery]) -> PaxResult<ExecReport> {
        for query in queries {
            self.resolve(query)?;
        }
        self.with_failover(|| self.execute_batch_pinned(queries))
    }

    /// One attempt of [`PaxServer::execute_batch`], pinning the epoch
    /// afresh (so a retry after a failover sees current health state).
    fn execute_batch_pinned(&self, queries: &[PreparedQuery]) -> PaxResult<ExecReport> {
        let epoch = self.pin();
        match self.algorithm {
            Algorithm::NaiveCentralized => {
                let start = Instant::now();
                let mut outcomes: Vec<QueryOutcome> = Vec::with_capacity(queries.len());
                let mut coordinator_ops = 0u64;
                let mut stats = ClusterStats::default();
                for query in queries {
                    let report =
                        naive::run(&self.deployment, &query.compiled, query.text(), epoch.number)?;
                    coordinator_ops += report.coordinator_ops;
                    stats.merge(&report.stats);
                    outcomes.extend(report.queries);
                }
                let topology = self.deployment.topology_at(epoch.number);
                Ok(ExecReport {
                    algorithm: Algorithm::NaiveCentralized,
                    annotations_used: false,
                    mode: ExecMode::Batch,
                    queries: outcomes,
                    update: None,
                    fragments_total: topology.fragment_tree.len(),
                    stats,
                    coordinator_ops,
                    elapsed: start.elapsed(),
                    from_cache: false,
                    epoch: epoch.number,
                    placement_version: topology.version,
                })
            }
            Algorithm::PaX3 | Algorithm::PaX2 => {
                let compiled: Vec<&CompiledQuery> =
                    queries.iter().map(|q| q.compiled.as_ref()).collect();
                let texts: Vec<String> = queries.iter().map(|q| q.text().to_string()).collect();
                let mut report =
                    batch::run(&self.deployment, &compiled, &texts, &self.options, epoch.number)?;
                // Batched execution always uses the shared-visit combined
                // protocol; the report names the server's configured
                // algorithm (PaX3's ≤ 3 bound holds a fortiori).
                report.algorithm = self.algorithm;
                Ok(report)
            }
        }
    }

    /// Prepare every text and execute them as one batch.
    pub fn execute_batch_text<S: AsRef<str>>(&self, texts: &[S]) -> PaxResult<ExecReport> {
        let queries: Vec<PreparedQuery> =
            texts.iter().map(|t| self.prepare(t.as_ref())).collect::<PaxResult<_>>()?;
        self.execute_batch(&queries)
    }

    /// Apply a batch of fragment updates by building the **next epoch**,
    /// visiting **only** the sites that hold an updated fragment — and, on
    /// PaX2 servers, refresh every executed prepared query's
    /// residual-vector cache in that same visit, so subsequent
    /// [`PaxServer::execute`] calls are already current (zero visits,
    /// clean sites untouched throughout).
    ///
    /// Updates **never block readers**: the build runs concurrently with
    /// in-flight executions, which keep reading their pinned epoch; the
    /// new epoch becomes visible in a single swap at the end, so a reader
    /// observes either the pre-update or the post-update answers, never a
    /// torn mix. Concurrent updaters serialize on the writer mutex. A
    /// failed build publishes nothing.
    ///
    /// Ops for the same fragment apply in batch order. An op naming an
    /// unknown fragment fails the whole call before any visit; per-op
    /// validation failures are reported per fragment in the report's
    /// [`UpdateOutcome::rejected`] instead (the deployment stays consistent
    /// — session vectors are refreshed either way).
    pub fn apply_updates(&self, updates: &[(FragmentId, UpdateOp)]) -> PaxResult<ExecReport> {
        let start = Instant::now();
        let _writer = self.writer.lock().expect("the writer lock is never poisoned");
        // Recovered sites first: a repaired copy takes this update's write
        // instead of falling further behind. Best-effort — a copy a failed
        // repair leaves stale simply stays off the routing path.
        let _ = self.repair_locked();
        self.with_failover(|| self.apply_updates_locked(updates, start))
    }

    /// One attempt of [`PaxServer::apply_updates`], writer lock held. Safe
    /// to retry wholesale: a failed attempt publishes nothing, and versions
    /// it installed under the next epoch are unreadable orphans the retry
    /// overwrites (installs read their base strictly *below* the target
    /// epoch, so retried builds never stack on orphaned state).
    fn apply_updates_locked(
        &self,
        updates: &[(FragmentId, UpdateOp)],
        start: Instant,
    ) -> PaxResult<ExecReport> {
        // The writer lock makes this the only publisher: the base epoch
        // (and its topology) is stable for the whole build.
        let base = self.pin();
        let topology = self.deployment.topology_at(base.number);
        let fragments_total = topology.fragment_tree.len();
        let mut ops_by_fragment: BTreeMap<FragmentId, Vec<UpdateOp>> = BTreeMap::new();
        for (fragment, op) in updates {
            if !topology.fragment_tree.contains(*fragment) {
                return Err(paxml_fragment::FragmentError::UnknownFragment {
                    fragment: fragment.index(),
                }
                .into());
            }
            ops_by_fragment.entry(*fragment).or_default().push(op.clone());
        }
        let dirty_fragments: BTreeSet<FragmentId> = ops_by_fragment.keys().copied().collect();

        if dirty_fragments.is_empty() {
            // Nothing changes: no visit, no new epoch.
            let refreshed_sessions =
                base.sessions.lock().expect("the session-table lock is never poisoned").len();
            return Ok(ExecReport {
                algorithm: self.algorithm,
                annotations_used: self.options.use_annotations,
                mode: ExecMode::Update,
                queries: Vec::new(),
                update: Some(UpdateOutcome {
                    dirty_fragments,
                    dirty_sites: BTreeSet::new(),
                    applied_ops: 0,
                    rejected: BTreeMap::new(),
                    refreshed_sessions,
                    recomputed_fragments: 0,
                    reunified_fragments: 0,
                }),
                fragments_total,
                stats: ClusterStats::default(),
                coordinator_ops: 0,
                elapsed: start.elapsed(),
                from_cache: false,
                epoch: base.number,
                placement_version: topology.version,
            });
        }
        let next_number = base.number + 1;

        // -------------------- fan the dirty fragments out to their replicas
        // Every *live* copy of a dirty fragment takes the write; copies on
        // quarantined sites (or already stale ones) are skipped and marked
        // stale from this epoch on — the routing layer avoids them until a
        // repair closes the range. A fragment with no live copy at all
        // fails the update (transiently: the failover loop re-probes and
        // retries).
        let health = self.deployment.health();
        let mut stale_marks: Vec<(FragmentId, SiteId)> = Vec::new();
        let mut site_fragments: BTreeMap<SiteId, Vec<FragmentId>> = BTreeMap::new();
        for &fragment in &dirty_fragments {
            let replicas = topology.replicas_of(fragment);
            let mut live = 0usize;
            for &site in replicas.sites() {
                if health.is_quarantined(site) || health.is_stale_at(fragment, site, base.number) {
                    stale_marks.push((fragment, site));
                } else {
                    site_fragments.entry(site).or_default().push(fragment);
                    live += 1;
                }
            }
            if live == 0 {
                return Err(PaxError::SiteUnreachable {
                    site: replicas.primary(),
                    detail: format!(
                        "no live replica of fragment {} to update: all of {replicas} are \
                         quarantined or stale",
                        fragment.index()
                    ),
                });
            }
        }
        let dirty_sites: BTreeSet<SiteId> = site_fragments.keys().copied().collect();

        // Clone every session copy-on-write for the next epoch: clean
        // fragments' cached vectors are shared by reference, only the
        // entries this update dirties will be deep-copied on absorb. Each
        // base session is locked only for the duration of its clone —
        // readers on the base epoch are never blocked behind the round
        // below. Sessions a concurrent cold execution adds to the base
        // epoch *after* this snapshot simply re-snapshot on their first
        // execution in the next epoch.
        let base_sessions: Vec<(usize, Arc<Mutex<QuerySession>>)> = {
            let map = base.sessions.lock().expect("the session-table lock is never poisoned");
            map.iter().map(|(id, arc)| (*id, Arc::clone(arc))).collect()
        };
        let mut next_sessions: BTreeMap<usize, QuerySession> = BTreeMap::new();
        for (id, arc) in &base_sessions {
            next_sessions
                .insert(*id, arc.lock().expect("a session lock is never poisoned").clone());
        }

        // ----------------------------------------------- the one dirty round
        // Each dirty site gets the ops for its fragments plus, per session,
        // the recompute instructions for its share of that session's
        // dirty-and-relevant fragments. The round is pinned to the *next*
        // epoch: sites install the updated fragments as new versions and
        // recompute vectors against them, while readers on older epochs
        // keep seeing the old versions. The round also piggybacks the
        // oldest-live-epoch watermark so visited sites retire dead
        // versions for free.
        let watermark = self.live_watermark();
        let mut ctx = ExecCtx::pinned(&self.deployment, next_number, watermark);
        let mut recomputed_fragments = 0usize;
        let mut session_inputs: BTreeMap<usize, BTreeMap<FragmentId, _>> = BTreeMap::new();
        for (&id, session) in &next_sessions {
            let inputs = session.recompute_inputs(&dirty_fragments);
            recomputed_fragments += inputs.len();
            session_inputs.insert(id, inputs);
        }
        let mut requests: BTreeMap<SiteId, ProtocolRequest> = BTreeMap::new();
        for (&site, fragments) in &site_fragments {
            let ops: BTreeMap<FragmentId, Vec<UpdateOp>> = fragments
                .iter()
                .filter_map(|f| ops_by_fragment.get(f).map(|ops| (*f, ops.clone())))
                .collect();
            let mut session_slices: Vec<SessionRecompute> = Vec::new();
            for (&id, inputs) in &session_inputs {
                let here: BTreeMap<FragmentId, _> = fragments
                    .iter()
                    .filter_map(|f| inputs.get(f).map(|input| (*f, input.clone())))
                    .collect();
                if !here.is_empty() {
                    session_slices.push(SessionRecompute {
                        session: id,
                        query: next_sessions[&id].query.clone(),
                        fragments: here,
                    });
                }
            }
            requests.insert(
                site,
                ProtocolRequest::SessionUpdate(MsgSessionUpdate { ops, sessions: session_slices }),
            );
        }
        debug_assert!(
            requests.keys().all(|s| dirty_sites.contains(s)),
            "the update round must address dirty sites only"
        );
        // A failed round (e.g. a site became unreachable mid-build) returns
        // here: nothing was published, readers keep the base epoch. The
        // versions already installed under `next_number` on reached sites
        // are unreadable orphans; a retried update overwrites them
        // (installs read their base strictly *below* the target epoch).
        let responses = ctx.round(requests)?;
        // Only now that every live replica took the write do the skipped
        // copies go stale — a failed round publishes nothing, so marking
        // earlier would poison copies against an epoch that never existed.
        for &(fragment, site) in &stale_marks {
            health.mark_stale(fragment, site, next_number);
        }

        // Replicated fragments report their ops once per copy; logical
        // progress is the per-fragment maximum, not the sum across copies.
        let mut applied_by_fragment: BTreeMap<FragmentId, usize> = BTreeMap::new();
        let mut rejected: BTreeMap<FragmentId, String> = BTreeMap::new();
        for response in responses.into_values() {
            let delta = response.into_session_delta()?;
            for (fragment, count) in delta.applied {
                let slot = applied_by_fragment.entry(fragment).or_default();
                *slot = (*slot).max(count);
            }
            rejected.extend(delta.rejected);
            for session_delta in delta.sessions {
                if let Some(session) = next_sessions.get_mut(&session_delta.session) {
                    session.absorb(session_delta.vect, session_delta.answer);
                }
            }
        }
        let applied_ops: usize = applied_by_fragment.values().sum();

        // ------------------- evalFT over each session's dirty cone
        let mut coordinator_ops = 0u64;
        let mut reunified_fragments = 0usize;
        for session in next_sessions.values_mut() {
            let refresh = session.refresh_coordinator_state(&dirty_fragments, false);
            coordinator_ops += refresh.unify_ops;
            reunified_fragments += refresh.reunified_fragments;
        }

        // Test instrumentation: hold the fully built, not-yet-visible epoch
        // open. No reader-visible lock is held here — readers must keep
        // completing on the base epoch however long the hook takes.
        {
            let hook = self.update_hook.lock().expect("the update-hook lock is never poisoned");
            if let Some(hook) = hook.as_ref() {
                hook();
            }
        }

        // ------------------------------------- publish: one atomic swap
        let refreshed_sessions = next_sessions.len();
        let next = Arc::new(EpochInner {
            number: next_number,
            sessions: Mutex::new(
                next_sessions.into_iter().map(|(id, s)| (id, Arc::new(Mutex::new(s)))).collect(),
            ),
        });
        {
            let mut current =
                self.current.lock().expect("the current-epoch lock is never poisoned");
            *current = Arc::clone(&next);
        }
        {
            let mut registry = self.epochs.lock().expect("the epoch registry is never poisoned");
            registry.insert(next_number, Arc::downgrade(&next));
            registry.retain(|_, weak| weak.strong_count() > 0);
        }
        self.maybe_auto_vacuum(next_number);

        Ok(ExecReport {
            algorithm: self.algorithm,
            annotations_used: self.options.use_annotations,
            mode: ExecMode::Update,
            queries: Vec::new(),
            update: Some(UpdateOutcome {
                dirty_fragments,
                dirty_sites,
                applied_ops,
                rejected,
                refreshed_sessions,
                recomputed_fragments,
                reunified_fragments,
            }),
            fragments_total,
            stats: ctx.stats,
            coordinator_ops,
            elapsed: start.elapsed(),
            from_cache: false,
            epoch: next_number,
            placement_version: topology.version,
        })
    }

    /// Re-shape the deployment topology online: apply a re-fragmentation
    /// built by `build` — splits, merges, migrations, any mix — publishing
    /// the result as the **next epoch** exactly like
    /// [`PaxServer::apply_updates`] does for data edits.
    ///
    /// `build` runs against a [`RefragBase`] pinned to the base epoch: it
    /// can fetch fragment payloads (charged protocol rounds, so the meters
    /// stay faithful) and must return the [`TopologyChange`] describing
    /// the new fragment tree, the complete new placement, and the fragment
    /// payloads to install. The server then:
    ///
    /// 1. ships every install to its new site in one round pinned to epoch
    ///    `N + 1` (a failed round — e.g. a site killed mid-migration —
    ///    publishes **nothing**: readers keep epoch `N`, and the versions
    ///    already installed are unreadable orphans a retry overwrites);
    /// 2. publishes the new topology version, then swaps the epoch pointer
    ///    — in that order, so a reader that pins `N + 1` always finds
    ///    `N + 1`'s topology;
    /// 3. carries every residual-vector session into the new epoch:
    ///    sessions whose relevant fragments were untouched are
    ///    re-anchored to the new fragment tree coordinator-side (zero
    ///    visits), sessions that overlap the touched fragments are
    ///    cold-reset and re-snapshot lazily on their next execution;
    /// 4. queues the dissolved `(fragment, site)` placements for the
    ///    vacuum sweep, which purges the stale copies once no live epoch
    ///    can route to them.
    ///
    /// Readers are never blocked: in-flight executions keep reading their
    /// pinned epoch and its topology version to completion.
    pub fn refragment(
        &self,
        mut build: impl FnMut(&mut RefragBase<'_>) -> PaxResult<TopologyChange>,
    ) -> PaxResult<RefragReport> {
        let start = Instant::now();
        let _writer = self.writer.lock().expect("the writer lock is never poisoned");
        let _ = self.repair_locked();
        self.with_failover(|| self.refragment_locked(&mut build, start))
    }

    /// One attempt of [`PaxServer::refragment`], writer lock held. The
    /// builder closure is `FnMut` precisely so a failover can re-run it
    /// against fresh health state (its fetches re-route around sites
    /// quarantined by the failed attempt).
    fn refragment_locked(
        &self,
        build: &mut impl FnMut(&mut RefragBase<'_>) -> PaxResult<TopologyChange>,
        start: Instant,
    ) -> PaxResult<RefragReport> {
        let base = self.pin();
        let base_topology = self.deployment.topology_at(base.number);
        let mut refrag_base = RefragBase {
            ctx: ExecCtx::pinned(&self.deployment, base.number, 0),
            topology: Arc::clone(&base_topology),
        };
        let change = build(&mut refrag_base)?;
        let mut stats = refrag_base.ctx.stats;
        self.validate_change(&change, &base_topology)?;

        let next_number = base.number + 1;
        let watermark = self.live_watermark();

        // ------------------------- transfer: one install round at N + 1
        // Installs only — never removals — so a partial round cannot
        // corrupt any epoch: old placements still hold their data, and
        // versions installed under `N + 1` are invisible until publish.
        // Every *live* replica site of an installed fragment gets a copy;
        // quarantined targets are skipped and their copies marked stale
        // once the round lands (a fragment all of whose new homes are
        // quarantined fails the change — nothing ships, nothing publishes).
        let health = self.deployment.health();
        let installed_fragments = change.installs.len();
        let mut stale_marks: Vec<(FragmentId, SiteId)> = Vec::new();
        let mut shipped_to: Vec<(FragmentId, SiteId)> = Vec::new();
        let mut by_site: BTreeMap<SiteId, Vec<Fragment>> = BTreeMap::new();
        for fragment in &change.installs {
            let replicas = &change.placement[&fragment.id];
            let mut live = 0usize;
            for &site in replicas.sites() {
                if health.is_quarantined(site) {
                    stale_marks.push((fragment.id, site));
                } else {
                    by_site.entry(site).or_default().push(fragment.clone());
                    shipped_to.push((fragment.id, site));
                    live += 1;
                }
            }
            if live == 0 {
                return Err(PaxError::SiteUnreachable {
                    site: replicas.primary(),
                    detail: format!(
                        "no live site to install fragment {} on: all of {replicas} are \
                         quarantined",
                        fragment.id.index()
                    ),
                });
            }
        }
        if !by_site.is_empty() {
            let mut ctx = ExecCtx::pinned(&self.deployment, next_number, watermark);
            let requests: BTreeMap<SiteId, ProtocolRequest> = by_site
                .into_iter()
                .map(|(site, installs)| (site, ProtocolRequest::Refrag(MsgRefrag { installs })))
                .collect();
            let responses = ctx.round(requests)?;
            for response in responses.into_values() {
                response.into_refragged()?;
            }
            stats.merge(&ctx.stats);
        }
        // The round landed: record which copies missed it, and close any
        // open stale range on copies this round just re-installed fresh.
        for &(fragment, site) in &stale_marks {
            health.mark_stale(fragment, site, next_number);
        }
        for &(fragment, site) in &shipped_to {
            health.mark_repaired(fragment, site, next_number);
        }

        // ---------------- carry the sessions into the new epoch (no visits)
        let next_topology = Arc::new(Topology::new(
            change.fragment_tree,
            change.placement,
            base_topology.version + 1,
        ));
        let base_sessions: Vec<(usize, Arc<Mutex<QuerySession>>)> = {
            let map = base.sessions.lock().expect("the session-table lock is never poisoned");
            map.iter().map(|(id, arc)| (*id, Arc::clone(arc))).collect()
        };
        let mut next_sessions: BTreeMap<usize, QuerySession> = BTreeMap::new();
        let mut invalidated_sessions = 0usize;
        let mut retopologized_sessions = 0usize;
        for (id, arc) in &base_sessions {
            let session = arc.lock().expect("a session lock is never poisoned").clone();
            let overlaps = session.relevant().iter().any(|f| change.touched.contains(f));
            if session.initialized && !overlaps {
                let mut session = session;
                session.retopologize(
                    next_topology.fragment_tree.clone(),
                    &next_topology.path_trie(&self.deployment.root_label),
                    &change.touched,
                );
                retopologized_sessions += 1;
                next_sessions.insert(*id, session);
            } else {
                // Residual vectors mention fragments that changed shape (or
                // were never snapshotted): start over. The next execution
                // re-snapshots against the new topology.
                invalidated_sessions += 1;
                next_sessions.insert(
                    *id,
                    QuerySession::new(
                        session.query.clone(),
                        session.query_text(),
                        session.options(),
                        next_topology.fragment_tree.clone(),
                        &self.deployment.root_label,
                        &next_topology.path_trie(&self.deployment.root_label),
                    ),
                );
            }
        }

        // Test instrumentation: hold the fully built, not-yet-visible
        // epoch open (same hook as `apply_updates`).
        {
            let hook = self.update_hook.lock().expect("the update-hook lock is never poisoned");
            if let Some(hook) = hook.as_ref() {
                hook();
            }
        }

        // ------------ queue dissolved placements for the vacuum sweep
        {
            let mut retired = self
                .retired_placements
                .lock()
                .expect("the retired-placement lock is never poisoned");
            // A fragment returning to a site it once left supersedes the
            // pending wholesale purge of its old copy there — the install
            // just made that placement live again, and the version-level
            // sweep reclaims the stale copy instead.
            retired.retain(|p| {
                !next_topology.placement.get(&p.fragment).is_some_and(|set| set.contains(p.site))
            });
            for (&fragment, old_set) in &base_topology.placement {
                for &old_site in old_set.sites() {
                    let keeps = next_topology
                        .placement
                        .get(&fragment)
                        .is_some_and(|set| set.contains(old_site));
                    if !keeps {
                        retired.push(RetiredPlacement {
                            fragment,
                            site: old_site,
                            removal_epoch: next_number,
                        });
                    }
                }
            }
        }
        // Staleness bookkeeping for fragments the change dissolved entirely
        // dies with them (their leftover versions are the vacuum's job).
        for &fragment in base_topology.fragment_tree.ids() {
            if !next_topology.fragment_tree.contains(fragment) {
                health.forget_fragment(fragment);
            }
        }

        // ---------------- publish: topology first, then the epoch swap
        self.deployment.publish_topology(next_number, Arc::clone(&next_topology));
        let next = Arc::new(EpochInner {
            number: next_number,
            sessions: Mutex::new(
                next_sessions.into_iter().map(|(id, s)| (id, Arc::new(Mutex::new(s)))).collect(),
            ),
        });
        {
            let mut current =
                self.current.lock().expect("the current-epoch lock is never poisoned");
            *current = Arc::clone(&next);
        }
        {
            let mut registry = self.epochs.lock().expect("the epoch registry is never poisoned");
            registry.insert(next_number, Arc::downgrade(&next));
            registry.retain(|_, weak| weak.strong_count() > 0);
        }
        self.maybe_auto_vacuum(next_number);

        Ok(RefragReport {
            base_epoch: base.number,
            epoch: next_number,
            placement_version: next_topology.version,
            installed_fragments,
            invalidated_sessions,
            retopologized_sessions,
            stats,
            elapsed: start.elapsed(),
        })
    }

    /// Sanity-check a [`TopologyChange`] before anything ships.
    fn validate_change(&self, change: &TopologyChange, base: &Topology) -> PaxResult<()> {
        let sites = self.deployment.site_count();
        if change.fragment_tree.is_empty() {
            return Err(PaxError::InvalidConfig {
                message: "a re-fragmentation cannot leave the tree empty".into(),
            });
        }
        let installed: BTreeSet<FragmentId> = change.installs.iter().map(|f| f.id).collect();
        for &fragment in change.fragment_tree.ids() {
            let Some(replicas) = change.placement.get(&fragment) else {
                return Err(PaxError::InvalidConfig {
                    message: format!("fragment {fragment} has no placement in the new topology"),
                });
            };
            for &site in replicas.sites() {
                if site.index() >= sites {
                    return Err(PaxError::InvalidConfig {
                        message: format!("fragment {fragment} placed on nonexistent site {site}"),
                    });
                }
            }
            // Anything new, moved, or gaining a copy on a site that never
            // held it must ship a payload — that site has no version of it
            // to read.
            let base_set = base.placement.get(&fragment);
            let needs_install =
                replicas.sites().iter().any(|&site| base_set.is_none_or(|set| !set.contains(site)));
            if needs_install && !installed.contains(&fragment) {
                return Err(PaxError::InvalidConfig {
                    message: format!(
                        "fragment {fragment} is new or re-placed on {replicas} but ships no \
                         payload"
                    ),
                });
            }
        }
        for fragment in &installed {
            if !change.fragment_tree.contains(*fragment) {
                return Err(PaxError::InvalidConfig {
                    message: format!("install for fragment {fragment} absent from the new tree"),
                });
            }
        }
        if change.placement.keys().any(|f| !change.fragment_tree.contains(*f)) {
            return Err(PaxError::InvalidConfig {
                message: "the placement maps a fragment the new tree does not have".into(),
            });
        }
        Ok(())
    }

    /// Ship every fragment of the **current** topology to the coordinator
    /// and re-index them densely: the deployment's logical document as one
    /// self-contained [`FragmentedTree`], deployable elsewhere. This is
    /// the conformance oracle of the re-fragmentation tests — after any
    /// split/merge/migrate sequence, a fresh deployment of the export must
    /// answer bit-identically.
    pub fn export_fragmentation(&self) -> PaxResult<FragmentedTree> {
        self.with_failover(|| {
            let epoch = self.pin();
            let topology = self.deployment.topology_at(epoch.number);
            let mut ctx = ExecCtx::pinned(&self.deployment, epoch.number, 0);
            let mut requests: BTreeMap<SiteId, ProtocolRequest> = BTreeMap::new();
            for (site, fragments) in
                ctx.group_by_site(topology.fragment_tree.ids().iter().copied())?
            {
                requests.insert(site, ProtocolRequest::FetchFragments(fragments));
            }
            let responses = ctx.round(requests)?;
            let mut shipped: Vec<Fragment> = Vec::new();
            for response in responses.into_values() {
                shipped.extend(response.into_fragments()?);
            }
            paxml_fragment::compact_fragmentation(shipped, &topology.fragment_tree)
                .map_err(Into::into)
        })
    }

    /// The PaX2 session path of [`PaxServer::execute`]: snapshot on first
    /// run, serve from the maintained cache afterwards. Runs against the
    /// epoch the caller pinned; cold snapshots of one particular query
    /// serialize on that query's session lock, warm executions of
    /// different queries run fully in parallel.
    fn execute_session(&self, query: &PreparedQuery, epoch: &EpochInner) -> PaxResult<ExecReport> {
        let start = Instant::now();
        let topology = self.deployment.topology_at(epoch.number);
        let session_arc = {
            let mut map = epoch.sessions.lock().expect("the session-table lock is never poisoned");
            Arc::clone(map.entry(query.id).or_insert_with(|| {
                Arc::new(Mutex::new(QuerySession::new(
                    (*query.compiled).clone(),
                    query.text(),
                    &self.options,
                    topology.fragment_tree.clone(),
                    &self.deployment.root_label,
                    &topology.path_trie(&self.deployment.root_label),
                )))
            }))
        };
        let mut session = session_arc.lock().expect("a session lock is never poisoned");
        let fragments_total = topology.fragment_tree.len();
        if session.initialized {
            // The cache is current for this epoch (every update carries
            // the sessions into the next epoch refreshed): answer without
            // visiting a single site.
            return Ok(ExecReport {
                algorithm: Algorithm::PaX2,
                annotations_used: self.options.use_annotations,
                mode: ExecMode::Query,
                queries: vec![QueryOutcome {
                    query: session.query_text().to_string(),
                    answers: session.answers().to_vec(),
                    fragments_evaluated: 0,
                    coordinator_ops: 0,
                }],
                update: None,
                fragments_total,
                stats: ClusterStats::default(),
                coordinator_ops: 0,
                elapsed: start.elapsed(),
                from_cache: true,
                epoch: epoch.number,
                placement_version: topology.version,
            });
        }
        // Cold snapshot: one visit per relevant site, reading the pinned
        // epoch's fragment versions.
        let round = session.run_round(&self.deployment, epoch.number, &BTreeMap::new(), true)?;
        Ok(ExecReport {
            algorithm: Algorithm::PaX2,
            annotations_used: self.options.use_annotations,
            mode: ExecMode::Query,
            queries: vec![QueryOutcome {
                query: session.query_text().to_string(),
                answers: session.answers().to_vec(),
                fragments_evaluated: session.relevant().len(),
                coordinator_ops: round.unify_ops,
            }],
            update: None,
            fragments_total,
            stats: round.stats,
            coordinator_ops: round.unify_ops,
            elapsed: start.elapsed(),
            from_cache: false,
            epoch: epoch.number,
            placement_version: topology.version,
        })
    }
}

/// The new shape a [`PaxServer::refragment`] closure hands back: the
/// complete post-change fragment tree, where every fragment lives, which
/// payloads must ship, and which fragments changed shape.
#[derive(Debug, Clone)]
pub struct TopologyChange {
    /// The fragment tree after the change — the complete tree, not a
    /// delta. Fragment ids the base tree had may be gone (merges),
    /// brand-new ids may appear (splits); ids need not be dense.
    pub fragment_tree: FragmentTree,
    /// Where every fragment of `fragment_tree` lives after the change — an
    /// ordered replica set per fragment, primary first (unreplicated
    /// changes hold solo sets, and `ReplicaSet: From<SiteId>` keeps the
    /// single-site construction terse). Must cover the whole tree.
    pub placement: BTreeMap<FragmentId, ReplicaSet>,
    /// The payloads to install. Every fragment that is **new, or that
    /// gains a copy on a site not holding it in the base topology** must
    /// appear here — that site has no version of it to read. Fragments
    /// whose replica sets stay put ship nothing.
    pub installs: Vec<Fragment>,
    /// Fragments whose *content or shape* changed — split parents and
    /// their offspring, merge products, and every base fragment they
    /// replace. Pure migrations touch nothing. Residual-vector sessions
    /// overlapping this set are invalidated; the rest carry over with
    /// zero visits.
    pub touched: BTreeSet<FragmentId>,
}

/// The base-epoch view a [`PaxServer::refragment`] closure builds against:
/// the topology being re-shaped, plus charged fragment fetches from the
/// sites (so a split or merge can read the payloads it re-cuts and the
/// meters record the true cost of the re-fragmentation).
pub struct RefragBase<'a> {
    ctx: ExecCtx<'a>,
    topology: Arc<Topology>,
}

impl RefragBase<'_> {
    /// The topology at the base epoch — what the change is relative to.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Fetch fragment payloads from the sites holding them (one charged
    /// round, grouped by site, pinned to the base epoch).
    pub fn fetch(&mut self, fragments: &[FragmentId]) -> PaxResult<BTreeMap<FragmentId, Fragment>> {
        if fragments.is_empty() {
            return Ok(BTreeMap::new());
        }
        let mut requests: BTreeMap<SiteId, ProtocolRequest> = BTreeMap::new();
        for (site, fragments) in self.ctx.group_by_site(fragments.iter().copied())? {
            requests.insert(site, ProtocolRequest::FetchFragments(fragments));
        }
        let responses = self.ctx.round(requests)?;
        let mut fetched = BTreeMap::new();
        for response in responses.into_values() {
            for fragment in response.into_fragments()? {
                fetched.insert(fragment.id, fragment);
            }
        }
        Ok(fetched)
    }
}

/// What a [`PaxServer::refragment`] did, with the meters it paid doing it.
#[derive(Debug, Clone)]
pub struct RefragReport {
    /// The epoch the change was built against.
    pub base_epoch: u64,
    /// The epoch the change published (`base_epoch + 1`).
    pub epoch: u64,
    /// The topology version the new epoch routes by.
    pub placement_version: u64,
    /// Fragment payloads shipped to their (new) sites.
    pub installed_fragments: usize,
    /// Residual-vector sessions cold-reset because their relevant
    /// fragments changed shape (they re-snapshot on next execution).
    pub invalidated_sessions: usize,
    /// Residual-vector sessions carried into the new epoch with zero
    /// visits — their caches stayed valid under the new topology.
    pub retopologized_sessions: usize,
    /// Cluster meters for the whole re-fragmentation: the closure's
    /// fetches plus the install round.
    pub stats: ClusterStats,
    /// Wall-clock time from closure entry to publish.
    pub elapsed: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxml_fragment::strategy;
    use paxml_xml::{TreeBuilder, XmlTree};
    use paxml_xpath::centralized;

    fn clientele() -> XmlTree {
        TreeBuilder::new("clientele")
            .open("client")
            .leaf("name", "Anna")
            .leaf("country", "US")
            .open("broker")
            .leaf("name", "E*trade")
            .open("market")
            .leaf("name", "NASDAQ")
            .open("stock")
            .leaf("code", "GOOG")
            .leaf("buy", "$374")
            .leaf("qt", "40")
            .close()
            .close()
            .close()
            .close()
            .open("client")
            .leaf("name", "Lisa")
            .leaf("country", "Canada")
            .open("broker")
            .leaf("name", "CIBC")
            .open("market")
            .leaf("name", "TSE")
            .open("stock")
            .leaf("code", "GOOG")
            .leaf("buy", "$382")
            .leaf("qt", "90")
            .close()
            .close()
            .close()
            .close()
            .build()
    }

    fn server_for(algorithm: Algorithm, fragmented: &FragmentedTree) -> PaxServer {
        PaxServer::builder()
            .algorithm(algorithm)
            .sites(4)
            .sequential(true)
            .deploy(fragmented)
            .unwrap()
    }

    #[test]
    fn the_server_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PaxServer>();
        assert_send_sync::<PreparedQuery>();
    }

    #[test]
    fn every_algorithm_matches_the_centralized_reference_through_the_server() {
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker", "market"]).unwrap();
        for query in [
            "client/name",
            "client[country/text()='US']/broker/name",
            "//stock[qt >= 50]/code",
            "//broker[//stock/code/text()='GOOG']/name",
            "nonexistent/path",
        ] {
            let mut expected = centralized::evaluate(&tree, query).unwrap().answers;
            expected.sort();
            for algorithm in [Algorithm::NaiveCentralized, Algorithm::PaX3, Algorithm::PaX2] {
                let server = server_for(algorithm, &fragmented);
                let q = server.prepare(query).unwrap();
                let report = server.execute(&q).unwrap();
                assert_eq!(report.answer_origins(), expected, "{algorithm} on {query}");
                // And again: per-execution meters, answers unchanged.
                let report = server.execute(&q).unwrap();
                assert_eq!(report.answer_origins(), expected, "{algorithm} rerun on {query}");
            }
        }
    }

    #[test]
    fn prepare_caches_by_query_text() {
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker"]).unwrap();
        let server = server_for(Algorithm::PaX2, &fragmented);
        let a = server.prepare("client/name").unwrap();
        let b = server.prepare("client/name").unwrap();
        assert_eq!(a.id, b.id);
        assert_eq!(server.prepared_count(), 1);
        let c = server.prepare("client/broker/name").unwrap();
        assert_ne!(a.id, c.id);
        assert_eq!(server.prepared_count(), 2);
    }

    #[test]
    fn foreign_prepared_queries_are_rejected() {
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker"]).unwrap();
        let a = server_for(Algorithm::PaX2, &fragmented);
        let b = server_for(Algorithm::PaX2, &fragmented);
        let qa = a.prepare("client/name").unwrap();
        let _qb = b.prepare("//name").unwrap();
        // Same id slot, different text: must be rejected, not silently
        // executed as the wrong query.
        assert!(matches!(b.execute(&qa), Err(PaxError::ForeignQuery { .. })));
    }

    #[test]
    fn pax2_reexecution_is_served_from_the_cache() {
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker"]).unwrap();
        let server = server_for(Algorithm::PaX2, &fragmented);
        let q = server.prepare("client[country/text()='US']/broker/name").unwrap();
        let first = server.execute(&q).unwrap();
        assert!(!first.from_cache);
        assert!(first.max_visits_per_site() >= 1);
        let second = server.execute(&q).unwrap();
        assert!(second.from_cache);
        assert_eq!(second.max_visits_per_site(), 0);
        assert_eq!(second.rounds(), 0);
        assert_eq!(second.answer_origins(), first.answer_origins());
        assert!(second.summary().contains("(cached)"));
    }

    #[test]
    fn consecutive_executions_report_per_execution_stats() {
        // The `&mut Deployment` stats footgun, fixed: no reset() anywhere,
        // yet the second run's meters equal the first run's instead of
        // doubling.
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker", "market"]).unwrap();
        for algorithm in [Algorithm::NaiveCentralized, Algorithm::PaX3] {
            let server = server_for(algorithm, &fragmented);
            let q = server.prepare("client[country/text()='US']/broker/name").unwrap();
            let first = server.execute(&q).unwrap();
            let second = server.execute(&q).unwrap();
            assert_eq!(
                first.max_visits_per_site(),
                second.max_visits_per_site(),
                "{algorithm}: visits accumulated across executions"
            );
            assert_eq!(first.network_bytes(), second.network_bytes());
            assert_eq!(first.rounds(), second.rounds());
            // The cumulative view keeps growing, for capacity planning.
            assert_eq!(server.cumulative_stats().rounds, first.rounds() + second.rounds());
        }
        // Same through the one-shot path.
        let server = server_for(Algorithm::PaX2, &fragmented);
        let first = server.query_once("client/broker/name").unwrap();
        let second = server.query_once("client/broker/name").unwrap();
        assert_eq!(first.max_visits_per_site(), second.max_visits_per_site());
        assert_eq!(first.network_bytes(), second.network_bytes());
    }

    #[test]
    fn batches_share_visits_for_pax_servers_and_loop_for_naive() {
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker", "market"]).unwrap();
        let queries =
            ["client/name", "//stock/code", "client[country/text()='US']/broker/name", "//name"];
        let mut expected: Vec<Vec<paxml_xml::NodeId>> = Vec::new();
        for query in queries {
            let mut answers = centralized::evaluate(&tree, query).unwrap().answers;
            answers.sort();
            expected.push(answers);
        }
        for algorithm in [Algorithm::PaX2, Algorithm::PaX3, Algorithm::NaiveCentralized] {
            let server = server_for(algorithm, &fragmented);
            let batch = server.execute_batch_text(&queries).unwrap();
            assert_eq!(batch.len(), queries.len());
            assert_eq!(batch.mode, ExecMode::Batch);
            assert_eq!(batch.algorithm, algorithm);
            for (outcome, expected) in batch.queries.iter().zip(&expected) {
                let mut origins: Vec<_> = outcome.answers.iter().map(|a| a.origin).collect();
                origins.sort();
                assert_eq!(&origins, expected, "{algorithm} batch on {}", outcome.query);
            }
            if algorithm != Algorithm::NaiveCentralized {
                assert!(batch.max_visits_per_site() <= 2, "{algorithm} batch broke the bound");
            }
        }
    }

    #[test]
    fn updates_refresh_every_prepared_query_without_visiting_clean_sites() {
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker"]).unwrap();
        let mut mirror = fragmented.clone();
        let server = server_for(Algorithm::PaX2, &fragmented);
        let q1 = server.prepare("client[country/text()='US']/broker/name").unwrap();
        let q2 = server.prepare("client/name").unwrap();
        assert_eq!(server.execute(&q1).unwrap().answer_texts(), vec!["E*trade".to_string()]);
        assert_eq!(
            server.execute(&q2).unwrap().answer_texts(),
            vec!["Anna".to_string(), "Lisa".to_string()]
        );

        // Lisa's country text node lives in the root fragment (F0).
        let root_tree = &mirror.fragments[0].tree;
        let countries = root_tree.find_all("country");
        let lisa_country = root_tree.children(countries[1]).next().unwrap();
        let updates =
            vec![(FragmentId(0), UpdateOp::EditText { node: lisa_country, text: "US".into() })];
        for (fragment, op) in &updates {
            paxml_fragment::apply_update(&mut mirror.fragments[fragment.index()], op).unwrap();
        }
        let update = server.apply_updates(&updates).unwrap();
        assert_eq!(update.mode, ExecMode::Update);
        let outcome = update.update.as_ref().unwrap();
        assert_eq!(outcome.applied_ops, 1);
        assert_eq!(outcome.refreshed_sessions, 2);
        assert_eq!(update.clean_site_visits(), 0, "clean sites must not be visited");
        assert_eq!(update.max_visits_per_site(), 1);

        // Both prepared queries are current — served with zero visits — and
        // agree with a from-scratch evaluation over the updated fragments.
        for (q, query_text) in
            [(q1, "client[country/text()='US']/broker/name"), (q2, "client/name")]
        {
            let scratch = server_for(Algorithm::PaX2, &mirror);
            let expected = scratch.query_once(query_text).unwrap().answer_origins();
            let report = server.execute(&q).unwrap();
            assert!(report.from_cache);
            assert_eq!(report.max_visits_per_site(), 0);
            assert_eq!(report.answer_origins(), expected, "stale cache for {query_text}");
        }
    }

    #[test]
    fn unknown_fragments_fail_before_any_visit_and_empty_updates_are_free() {
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker"]).unwrap();
        let server = server_for(Algorithm::PaX2, &fragmented);
        let node = fragmented.fragments[1].tree.root();
        let err = server.apply_updates(&[(FragmentId(99), UpdateOp::DeleteSubtree { node })]);
        assert!(matches!(err, Err(PaxError::Fragment(_))));
        assert_eq!(server.cumulative_stats().rounds, 0);

        let report = server.apply_updates(&[]).unwrap();
        assert_eq!(report.rounds(), 0);
        assert_eq!(report.network_bytes(), 0);
        assert!(report.update.unwrap().dirty_fragments.is_empty());
    }

    #[test]
    fn builder_validates_its_configuration() {
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker"]).unwrap();
        assert!(matches!(
            PaxServer::builder().sites(0).deploy(&fragmented),
            Err(PaxError::InvalidConfig { .. })
        ));
        let mut assignment = BTreeMap::new();
        assignment.insert(FragmentId(1), SiteId(9));
        assert!(matches!(
            PaxServer::builder().sites(2).assignment(assignment).deploy(&fragmented),
            Err(PaxError::InvalidConfig { .. })
        ));
        // Defaults: one site per fragment.
        let server = PaxServer::builder().deploy(&fragmented).unwrap();
        assert_eq!(server.deployment().site_count(), fragmented.fragment_count());
        assert_eq!(server.algorithm(), Algorithm::PaX2);
    }

    #[test]
    fn updates_on_a_naive_server_still_change_the_data() {
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker"]).unwrap();
        let server = server_for(Algorithm::NaiveCentralized, &fragmented);
        let q = server.prepare("client/broker/name").unwrap();
        assert_eq!(
            server.execute(&q).unwrap().answer_texts(),
            vec!["E*trade".to_string(), "CIBC".to_string()]
        );
        let f2 = &fragmented.fragments[2].tree;
        let name = f2.find_first("name").unwrap();
        let text = f2.children(name).next().unwrap();
        let update = server
            .apply_updates(&[(
                FragmentId(2),
                UpdateOp::EditText { node: text, text: "RBC".into() },
            )])
            .unwrap();
        assert_eq!(update.update.unwrap().applied_ops, 1);
        assert_eq!(
            server.execute(&q).unwrap().answer_texts(),
            vec!["E*trade".to_string(), "RBC".to_string()]
        );
    }

    #[test]
    fn prepare_set_shares_whole_queries_and_subtrees() {
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker"]).unwrap();
        let server = server_for(Algorithm::PaX2, &fragmented);

        // Three texts, two normal forms ([a][b] commutes with [b][a] only
        // in compiled form, but a[b][c] and a[c][b] normalize differently;
        // use literal duplicates plus a shared qualifier subtree instead).
        let texts = [
            "client[country/text()='US']/broker/name",
            "client[country/text()='US']/broker/name",
            "client[country/text()='US']/name",
            "client[country/text()='Canada']/broker/name",
        ];
        let (queries, stats) = server.prepare_set(&texts).unwrap();
        assert_eq!(queries.len(), 4);
        assert_eq!(stats.queries, 4);
        assert_eq!(stats.distinct_queries, 3);
        // Duplicate texts share the identical compiled allocation.
        assert!(Arc::ptr_eq(&queries[0].compiled, &queries[1].compiled));
        // The country/text()='US' subtree is compiled once and spliced into
        // the second distinct query from the pool.
        assert!(stats.subtree_hits >= 1, "expected pool hits, got {stats:?}");
        assert!(
            stats.arena_entries < stats.arena_entries_independent,
            "sharing must shrink the pool: {stats:?}"
        );

        // Set-prepared queries execute exactly like singly-prepared ones.
        let expected = centralized::evaluate(&tree, texts[0]).unwrap();
        let report = server.execute(&queries[0]).unwrap();
        assert_eq!(report.answer_origins(), expected.answers);

        // A later single prepare of an equivalent text reuses the compiled
        // Arc through the normal-form index.
        let again = server
            .prepare("client[country/text()='US']/broker/name ")
            .unwrap_or_else(|_| server.prepare("client[country/text()='US']/broker/name").unwrap());
        assert!(Arc::ptr_eq(&again.compiled, &queries[0].compiled));
    }

    #[test]
    fn concurrent_executions_share_one_server_through_an_arc() {
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker", "market"]).unwrap();
        for algorithm in [Algorithm::NaiveCentralized, Algorithm::PaX3, Algorithm::PaX2] {
            let server = Arc::new(
                PaxServer::builder().algorithm(algorithm).sites(4).deploy(&fragmented).unwrap(),
            );
            let q = server.prepare("client[country/text()='US']/broker/name").unwrap();
            let expected = server.execute(&q).unwrap().answer_origins();
            let clients: Vec<_> = (0..4)
                .map(|_| {
                    let server = Arc::clone(&server);
                    let q = q.clone();
                    std::thread::spawn(move || {
                        (0..8).map(|_| server.execute(&q).unwrap().answer_origins()).collect()
                    })
                })
                .collect();
            for client in clients {
                let runs: Vec<Vec<paxml_xml::NodeId>> = client.join().unwrap();
                for run in runs {
                    assert_eq!(run, expected, "{algorithm} diverged under concurrency");
                }
            }
        }
    }
}

//! Incremental re-evaluation under fragment updates.
//!
//! The paper proves its guarantees for *one-shot* evaluation; a production
//! federated store sees its fragments change between queries. Recomputing
//! from scratch after every edit wastes exactly the property partial
//! evaluation buys: a fragment's residual vectors depend **only on its own
//! data** (plus the query), never on other fragments — the unknowns are
//! variables. So the coordinator can cache, per fragment, the outputs of
//! the last combined pass:
//!
//! * the root `QV`/`QDV` vectors,
//! * the ancestor summaries recorded at its virtual nodes,
//! * the unconditional answers, and
//! * the candidate answers *with their residual formulas*.
//!
//! That cache is `QuerySession` (crate-internal): one prepared query's
//! residual-vector state, usable against any borrowed [`Deployment`]. A
//! [`PaxServer`](crate::server::PaxServer) keeps one session per prepared
//! query and maintains *all* of them in the single visit an update round
//! pays to each dirty site; the deprecated [`IncrementalEngine`] wraps one
//! session plus an owned deployment for backward compatibility.
//!
//! When a batch of updates arrives, only the **touched fragments'** vectors
//! are stale. The update round ships the ops to the *dirty* sites (one
//! visit each, which applies the edits and re-runs the combined pass in the
//! same visit), re-unifies `evalFT` over the **dirty cone** of the fragment
//! tree — the updated fragments, their ancestors whose qualifier values
//! change, and the subtrees whose ancestor summaries change — and
//! re-resolves candidate formulas from the coordinator-side cache. Clean
//! sites are **never visited**: even when an update far away flips a
//! qualifier that decides a clean fragment's candidate answers, the cached
//! formula is re-evaluated locally at the coordinator.
//!
//! Compared to the from-scratch protocol this ships candidate formulas to
//! the coordinator once (an `O(|candidates|)` add-on to the first visit) and
//! in exchange drops the second visit entirely: a re-evaluation after
//! updates costs **one visit per dirty site, zero per clean site**, and
//! traffic proportional to the update batch and the dirty fragments' vector
//! sizes — independent of the total data size.
//!
//! ```
//! use paxml_core::server::PaxServer;
//! use paxml_core::Algorithm;
//! use paxml_distsim::Placement;
//! use paxml_fragment::{strategy::cut_at_labels, FragmentId, UpdateOp};
//! use paxml_xml::TreeBuilder;
//!
//! let tree = TreeBuilder::new("clientele")
//!     .open("client").leaf("country", "US")
//!         .open("broker").leaf("name", "E*trade").close()
//!     .close()
//!     .open("client").leaf("country", "Canada")
//!         .open("broker").leaf("name", "CIBC").close()
//!     .close()
//!     .build();
//! let fragmented = cut_at_labels(&tree, &["client"]).unwrap();
//!
//! let mut server = PaxServer::builder()
//!     .algorithm(Algorithm::PaX2)
//!     .sites(3)
//!     .placement(Placement::RoundRobin)
//!     .deploy(&fragmented)
//!     .unwrap();
//! let q = server.prepare("client[country/text()='US']/broker/name").unwrap();
//! assert_eq!(server.execute(&q).unwrap().answer_texts(), vec!["E*trade".to_string()]);
//!
//! // Edit Lisa's country to US — one dirty fragment, one visit, new answer.
//! let lisa = fragmented.fragments[2].tree.find_first("country").unwrap();
//! let text = fragmented.fragments[2].tree.children(lisa).next().unwrap();
//! let update = server.apply_updates(&[(
//!     FragmentId(2),
//!     UpdateOp::EditText { node: text, text: "US".into() },
//! )]).unwrap();
//! assert_eq!(update.clean_site_visits(), 0);
//!
//! // Re-execution is served from the maintained cache: zero visits.
//! let report = server.execute(&q).unwrap();
//! assert_eq!(report.answer_texts(), vec!["E*trade".to_string(), "CIBC".to_string()]);
//! assert_eq!(report.max_visits_per_site(), 0);
//! ```

use crate::deployment::{Deployment, ExecCtx};
use crate::error::PaxResult;
use crate::protocol::{
    CandidateAnswer, FragmentUpdate, InitVector, MsgDeltaAnswer, MsgDeltaVect, MsgUpdate,
    RecomputeInput,
};
use crate::prune::{analyze_with_trie, AnnotationAnalysis, PathTrie};
use crate::report::AnswerItem;
use crate::transport::ProtocolRequest;
use crate::unify::{resolve_summary, DenseAssignment};
use crate::vars::PaxVar;
use crate::EvalOptions;
use paxml_boolex::{BitVector, CompactVector};
use paxml_distsim::{ClusterStats, SiteId};
use paxml_fragment::{FragmentId, FragmentResult, FragmentTree, UpdateOp};
use paxml_xpath::eval::{initial_vector, QualVectors};
use paxml_xpath::{compile_text, CompiledQuery, XPathResult};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The per-fragment cache entry: everything the coordinator keeps from the
/// last combined pass over that fragment. `Serialize` exists only so
/// [`ServerStats::session_cache_bytes`](crate::server::ServerStats) can
/// meter the cache with the same canonical encoding the network charges.
#[derive(Debug, Clone, Default, Serialize)]
struct FragmentCache {
    /// Root `QV`/`QDV` vectors (symbolic in the sub-fragments' variables).
    root: Option<QualVectors<PaxVar>>,
    /// Unconditional answers found in the fragment.
    sure: Vec<AnswerItem>,
    /// Conditional answers with their residual formulas.
    candidates: Vec<CandidateAnswer>,
    /// The fragment's current resolved answers (under the latest variable
    /// assignment).
    resolved: Vec<AnswerItem>,
}

/// The outcome of one incremental re-evaluation.
#[derive(Debug, Clone)]
pub struct IncrementalReport {
    /// Fragments the update batch touched.
    pub dirty_fragments: BTreeSet<FragmentId>,
    /// Sites holding at least one dirty fragment — the only sites visited.
    pub dirty_sites: BTreeSet<SiteId>,
    /// Per-site visit counts of *this* re-evaluation (not cumulative).
    pub visits: BTreeMap<SiteId, u32>,
    /// Update ops applied successfully.
    pub applied_ops: usize,
    /// Fragments whose op sequence was rejected, with the reason (their
    /// remaining ops were skipped; their vectors were still refreshed).
    pub rejected: BTreeMap<FragmentId, String>,
    /// Fragments whose combined pass was re-run site-side.
    pub recomputed_fragments: usize,
    /// Re-unification steps `evalFT` actually performed — bottom-up
    /// (qualifier) steps plus top-down (selection) steps, so a fragment in
    /// both cones counts twice; every other fragment reused cached truth
    /// values. This is the size of the dirty cone the coordinator walked.
    pub reunified_fragments: usize,
    /// Coordinator-side unification operations of this re-evaluation.
    pub unify_ops: u64,
    /// Bytes moved over the network by this re-evaluation.
    pub network_bytes: u64,
    /// The full cluster meters of this re-evaluation only (recorded by the
    /// round's own [`ClusterStats`] recorder, never derived from shared
    /// cumulative counters).
    pub stats: ClusterStats,
    /// Wall-clock time of the re-evaluation as seen by the coordinator.
    pub elapsed: Duration,
}

impl IncrementalReport {
    /// Visits this re-evaluation paid to sites holding *no* dirty fragment.
    /// The incremental protocol guarantees this is zero.
    pub fn clean_site_visits(&self) -> u32 {
        self.visits
            .iter()
            .filter(|(site, _)| !self.dirty_sites.contains(site))
            .map(|(_, v)| v)
            .sum()
    }

    /// The largest visit count any dirty site received (≤ 2; in fact the
    /// update round needs exactly one visit per dirty site).
    pub fn max_visits_per_dirty_site(&self) -> u32 {
        self.visits
            .iter()
            .filter(|(site, _)| self.dirty_sites.contains(site))
            .map(|(_, v)| *v)
            .max()
            .unwrap_or(0)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "incremental: {} dirty fragments on {} sites, {} ops applied, {} recomputed, {} re-unified, {} unify ops, {} bytes, {:?}",
            self.dirty_fragments.len(),
            self.dirty_sites.len(),
            self.applied_ops,
            self.recomputed_fragments,
            self.reunified_fragments,
            self.unify_ops,
            self.network_bytes,
            self.elapsed,
        )
    }
}

/// Coordinator-side work one session did while refreshing its state.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RefreshOutcome {
    /// `evalFT` unification operations performed.
    pub(crate) unify_ops: u64,
    /// Fragments the dirty-cone walk actually re-unified.
    pub(crate) reunified_fragments: usize,
}

/// One prepared query's residual-vector cache: the coordinator-side state
/// that lets re-evaluation after updates visit only dirty sites (and serve
/// clean re-executions with no visit at all). Borrows the deployment per
/// call, so a server can hold many sessions over one deployment.
///
/// `Clone` is copy-on-write at the fragment granularity: the per-fragment
/// cache entries sit behind [`Arc`]s, so cloning a session for the next
/// epoch shares every clean fragment's vectors by reference and only the
/// entries an update actually touches are deep-copied (via
/// [`Arc::make_mut`]).
#[derive(Clone)]
pub(crate) struct QuerySession {
    pub(crate) query: CompiledQuery,
    query_text: String,
    options: EvalOptions,
    analysis: AnnotationAnalysis,
    root_init: Vec<bool>,
    ft: FragmentTree,
    cache: BTreeMap<FragmentId, Arc<FragmentCache>>,
    /// Ancestor summaries recorded at virtual nodes, keyed by the
    /// sub-fragment they stand for (produced by the parent fragment).
    virtuals: BTreeMap<FragmentId, CompactVector<PaxVar>>,
    /// The cached truth values of every `Qual`/`Sel` variable, packed as
    /// per-fragment bitsets.
    assignment: DenseAssignment,
    answers: Vec<AnswerItem>,
    /// Has the initial snapshot round run yet?
    pub(crate) initialized: bool,
}

impl QuerySession {
    /// Build the (empty) session state for one compiled query. No site is
    /// visited until [`QuerySession::run_round`] runs the initial snapshot.
    pub(crate) fn new(
        query: CompiledQuery,
        query_text: &str,
        options: &EvalOptions,
        ft: FragmentTree,
        root_label: &str,
        trie: &PathTrie,
    ) -> QuerySession {
        let analysis = if options.use_annotations {
            analyze_with_trie(&query, trie)
        } else {
            AnnotationAnalysis::keep_all(&ft)
        };
        let root_init: Vec<bool> = initial_vector(&query, root_label);
        let fragments = ft.len();
        QuerySession {
            query,
            query_text: query_text.to_string(),
            options: *options,
            analysis,
            root_init,
            ft,
            cache: BTreeMap::new(),
            virtuals: BTreeMap::new(),
            assignment: DenseAssignment::new(fragments),
            answers: Vec::new(),
            initialized: false,
        }
    }

    /// The query this session evaluates.
    pub(crate) fn query_text(&self) -> &str {
        &self.query_text
    }

    /// The evaluation options the session was created with.
    pub(crate) fn options(&self) -> &EvalOptions {
        &self.options
    }

    /// The current answers, sorted by original-document position.
    pub(crate) fn answers(&self) -> &[AnswerItem] {
        &self.answers
    }

    /// The fragments the annotation analysis kept for this query.
    pub(crate) fn relevant(&self) -> &BTreeSet<FragmentId> {
        &self.analysis.relevant
    }

    /// The initial vector of a fragment's combined pass (same policy as
    /// from-scratch PaX2).
    fn init_for(&self, fragment: FragmentId) -> InitVector {
        if fragment == FragmentId::ROOT {
            InitVector::Exact(BitVector::from_bools(&self.root_init))
        } else if let Some(exact) = self.analysis.exact_init.get(&fragment) {
            InitVector::Exact(BitVector::from_bools(exact))
        } else {
            InitVector::Unknown
        }
    }

    /// The recompute instructions this session wants for a set of dirty
    /// fragments: one entry per dirty fragment the session's analysis kept
    /// (pruned fragments' vectors are irrelevant and stay absent).
    pub(crate) fn recompute_inputs(
        &self,
        dirty: &BTreeSet<FragmentId>,
    ) -> BTreeMap<FragmentId, RecomputeInput> {
        dirty
            .iter()
            .filter(|f| self.analysis.relevant.contains(f))
            .map(|&fragment| {
                (
                    fragment,
                    RecomputeInput {
                        init: self.init_for(fragment),
                        root_is_context: fragment == FragmentId::ROOT && !self.query.absolute,
                    },
                )
            })
            .collect()
    }

    /// Merge a recomputed site delta into the coordinator-side cache.
    /// `Arc::make_mut` unshares exactly the touched entries; clean
    /// fragments' caches stay shared with any prior epoch's sessions.
    pub(crate) fn absorb(&mut self, vect: MsgDeltaVect, answer: MsgDeltaAnswer) {
        for (fragment, root) in vect.roots {
            Arc::make_mut(self.cache.entry(fragment).or_default()).root = Some(root);
        }
        self.virtuals.extend(vect.virtuals);
        for (fragment, sure) in answer.sure {
            Arc::make_mut(self.cache.entry(fragment).or_default()).sure = sure;
        }
        for (fragment, candidates) in answer.candidates {
            Arc::make_mut(self.cache.entry(fragment).or_default()).candidates = candidates;
        }
    }

    /// Bytes of the session's per-fragment cache under the canonical wire
    /// encoding — the coordinator-memory meter behind
    /// [`ServerStats::session_cache_bytes`](crate::server::ServerStats).
    /// Entries shared with other epochs' sessions are charged once per
    /// session (the meter reports the logical, not the deduplicated, size).
    pub(crate) fn cache_bytes(&self) -> u64 {
        self.cache.values().map(|entry| paxml_distsim::encoded_size(entry.as_ref())).sum()
    }

    /// Re-unify `evalFT` over the dirty cone and re-resolve the cached
    /// answers — the coordinator-side half of a refresh, shared by the
    /// engine's own rounds and the server's multi-session update rounds.
    pub(crate) fn refresh_coordinator_state(
        &mut self,
        dirty_fragments: &BTreeSet<FragmentId>,
        initial: bool,
    ) -> RefreshOutcome {
        let mut unify_ops = 0u64;
        let (qual_changed, qual_reunified) =
            self.reunify_qualifiers(dirty_fragments, initial, &mut unify_ops);
        let (sel_changed, sel_reunified) =
            self.reunify_selection(dirty_fragments, &qual_changed, initial, &mut unify_ops);

        // --------------------------------- re-resolve answers from the cache
        let fragments: Vec<FragmentId> = self.cache.keys().copied().collect();
        let mut any_resolved_changed = false;
        for fragment in fragments {
            let needs = initial
                || dirty_fragments.contains(&fragment)
                || sel_changed.contains(&fragment)
                || self.ft.children(fragment).iter().any(|c| qual_changed.contains(c));
            if !needs {
                continue;
            }
            let assignment = &self.assignment;
            let entry = self.cache.get_mut(&fragment).expect("iterating cached fragments");
            let mut resolved = entry.sure.clone();
            for candidate in &entry.candidates {
                unify_ops += 1;
                if candidate.formula.eval_with(&|v| assignment.get(v)) == Some(true) {
                    resolved.push(candidate.item.clone());
                }
            }
            if resolved != entry.resolved {
                Arc::make_mut(entry).resolved = resolved;
                any_resolved_changed = true;
            }
        }
        // The global merge is O(total answers); skip it when no fragment's
        // contribution changed, so untouched-answer updates stay O(|dirty|).
        if any_resolved_changed {
            let mut answers: Vec<AnswerItem> =
                self.cache.values().flat_map(|entry| entry.resolved.iter().cloned()).collect();
            answers.sort();
            answers.dedup();
            self.answers = answers;
        }
        RefreshOutcome { unify_ops, reunified_fragments: qual_reunified + sel_reunified }
    }

    /// One coordinator round over a borrowed (shared) deployment: ship the
    /// ops and recompute instructions to the dirty sites, merge the deltas
    /// into the caches, re-unify the dirty cone and re-resolve answers.
    /// With `initial` set, every relevant fragment is treated as dirty
    /// (and `ops_by_fragment` is empty). The round is pinned to `epoch`:
    /// sites read (and, when ops are present, install) fragment versions
    /// in that epoch's namespace. The round's meters are recorded by its
    /// own [`ExecCtx`], so concurrent activity elsewhere on the deployment
    /// never leaks into this report.
    pub(crate) fn run_round(
        &mut self,
        deployment: &Deployment,
        epoch: u64,
        ops_by_fragment: &BTreeMap<FragmentId, Vec<UpdateOp>>,
        initial: bool,
    ) -> PaxResult<IncrementalReport> {
        let start = Instant::now();
        let mut ctx = ExecCtx::pinned(deployment, epoch, 0);
        let dirty_fragments: BTreeSet<FragmentId> = if initial {
            self.analysis.relevant.iter().copied().collect()
        } else {
            ops_by_fragment.keys().copied().collect()
        };
        // ----------------------------------------------- the one dirty round
        let grouped = ctx.group_by_site(dirty_fragments.iter().copied())?;
        let dirty_sites: BTreeSet<SiteId> = grouped.keys().copied().collect();
        let mut requests: BTreeMap<SiteId, ProtocolRequest> = BTreeMap::new();
        let mut recomputed = 0usize;
        for (&site, fragments) in &grouped {
            let mut per_fragment = BTreeMap::new();
            for &fragment in fragments {
                let recompute = self.analysis.relevant.contains(&fragment);
                if recompute {
                    recomputed += 1;
                }
                per_fragment.insert(
                    fragment,
                    FragmentUpdate {
                        ops: ops_by_fragment.get(&fragment).cloned().unwrap_or_default(),
                        init: self.init_for(fragment),
                        root_is_context: fragment == FragmentId::ROOT && !self.query.absolute,
                        recompute,
                    },
                );
            }
            requests.insert(
                site,
                ProtocolRequest::Update(MsgUpdate {
                    query: self.query.clone(),
                    fragments: per_fragment,
                }),
            );
        }
        debug_assert!(
            requests.keys().all(|s| dirty_sites.contains(s)),
            "the update round must address dirty sites only"
        );
        let responses = ctx.round(requests)?;

        let mut applied_ops = 0usize;
        let mut rejected: BTreeMap<FragmentId, String> = BTreeMap::new();
        for response in responses.into_values() {
            let delta = response.into_delta()?;
            applied_ops += delta.applied.values().sum::<usize>();
            rejected.extend(delta.rejected);
            self.absorb(delta.vect, delta.answer);
        }

        // --------------------- evalFT over the dirty cone + answer refresh
        let refresh = self.refresh_coordinator_state(&dirty_fragments, initial);
        self.initialized = true;

        // ------------------------------------------------------------ report
        let visits: BTreeMap<SiteId, u32> = ctx
            .stats
            .sites
            .iter()
            .map(|(site, s)| (*site, s.visits))
            .filter(|(_, v)| *v > 0)
            .collect();
        Ok(IncrementalReport {
            dirty_fragments,
            dirty_sites,
            visits,
            applied_ops,
            rejected,
            recomputed_fragments: recomputed,
            reunified_fragments: refresh.reunified_fragments,
            unify_ops: refresh.unify_ops,
            network_bytes: ctx.stats.total_bytes(),
            stats: ctx.stats,
            elapsed: start.elapsed(),
        })
    }

    /// Adopt a new fragment tree after a re-fragmentation that left this
    /// session's relevant fragments untouched. The annotation analysis is
    /// re-derived over the new tree, the (possibly stale) entries for the
    /// `touched` fragments are dropped, and the truth-value assignment is
    /// rebuilt from the surviving cached vectors — a pure coordinator-side
    /// refresh that costs **zero site visits**.
    ///
    /// Sessions whose relevant set intersects the touched fragments cannot
    /// be salvaged this way (their residual vectors mention fragments that
    /// no longer exist); the server cold-resets those instead.
    pub(crate) fn retopologize(
        &mut self,
        ft: FragmentTree,
        trie: &PathTrie,
        touched: &BTreeSet<FragmentId>,
    ) {
        self.ft = ft;
        self.analysis = if self.options.use_annotations {
            analyze_with_trie(&self.query, trie)
        } else {
            AnnotationAnalysis::keep_all(&self.ft)
        };
        for fragment in touched {
            self.cache.remove(fragment);
            self.virtuals.remove(fragment);
        }
        // Fragments that left the tree entirely (merged away) must not keep
        // contributing cached answers.
        self.cache.retain(|fragment, _| self.ft.contains(*fragment));
        self.virtuals.retain(|fragment, _| self.ft.contains(*fragment));
        self.assignment = DenseAssignment::new(self.ft.len());
        self.refresh_coordinator_state(&BTreeSet::new(), true);
    }

    /// Bottom-up qualifier re-unification over the dirty cone: a fragment's
    /// `Qual` values are recomputed iff the fragment itself was updated or a
    /// descendant's values changed; everything else reuses the cached truth
    /// values. Returns the set of fragments whose values changed and the
    /// number of fragments actually re-unified.
    fn reunify_qualifiers(
        &mut self,
        dirty: &BTreeSet<FragmentId>,
        initial: bool,
        unify_ops: &mut u64,
    ) -> (BTreeSet<FragmentId>, usize) {
        let mut changed: BTreeSet<FragmentId> = BTreeSet::new();
        let mut reunified = 0usize;
        if !self.query.has_qualifiers() {
            return (changed, reunified);
        }
        let qlen = self.query.qvect_len();
        for fragment in self.ft.bottom_up_order() {
            let needs = initial
                || dirty.contains(&fragment)
                || self.ft.children(fragment).iter().any(|c| changed.contains(c));
            if !needs {
                continue;
            }
            reunified += 1;
            *unify_ops += 2 * qlen as u64;
            let (qv, qdv) = {
                let assignment = &self.assignment;
                match self.cache.get(&fragment).and_then(|e| e.root.as_ref()) {
                    Some(vectors) => (
                        vectors.qv.resolve_bits(&|v| assignment.get(v)),
                        vectors.qdv.resolve_bits(&|v| assignment.get(v)),
                    ),
                    None => (BitVector::all_false(qlen), BitVector::all_false(qlen)),
                }
            };
            if self.assignment.set_qual(fragment, qv, qdv) {
                changed.insert(fragment);
            }
        }
        (changed, reunified)
    }

    /// Top-down selection re-unification over the dirty cone: a fragment's
    /// `Sel` values are recomputed iff its parent was updated (the recorded
    /// summary itself may be new), the parent's own `Sel` values changed, or
    /// the summary mentions a `Qual` variable whose value changed.
    fn reunify_selection(
        &mut self,
        dirty: &BTreeSet<FragmentId>,
        qual_changed: &BTreeSet<FragmentId>,
        initial: bool,
        unify_ops: &mut u64,
    ) -> (BTreeSet<FragmentId>, usize) {
        let slen = self.query.init_len();
        let mut changed: BTreeSet<FragmentId> = BTreeSet::new();
        let mut reunified = 0usize;
        if initial {
            self.assignment.set_sel(FragmentId::ROOT, BitVector::from_bools(&self.root_init));
        }
        for fragment in self.ft.top_down_order() {
            if fragment == FragmentId::ROOT {
                continue;
            }
            let parent = self.ft.parent(fragment).expect("non-root fragments have a parent");
            let needs = initial
                || dirty.contains(&parent)
                || changed.contains(&parent)
                || self.virtuals.get(&fragment).is_some_and(|vector| {
                    vector.variables().iter().any(|var| match var {
                        PaxVar::Qual { fragment: g, .. } => qual_changed.contains(g),
                        _ => false,
                    })
                });
            if !needs {
                continue;
            }
            reunified += 1;
            *unify_ops += slen as u64;
            let sel = match self.virtuals.get(&fragment) {
                Some(vector) => resolve_summary(vector, slen, &self.assignment),
                None => BitVector::all_false(slen),
            };
            if self.assignment.set_sel(fragment, sel) {
                changed.insert(fragment);
            }
        }
        (changed, reunified)
    }
}

/// A long-lived evaluation session: one query over one owned deployment,
/// with the per-fragment residual vectors cached between update batches.
#[deprecated(note = "use `PaxServer::prepare` + `execute` + `apply_updates`, which maintain the \
                     same cache for every prepared query of a session")]
pub struct IncrementalEngine {
    deployment: Deployment,
    session: QuerySession,
}

#[allow(deprecated)]
impl IncrementalEngine {
    /// Compile `query_text`, run the initial full evaluation (one visit per
    /// occupied relevant site), and populate the caches.
    pub fn new(
        deployment: Deployment,
        query_text: &str,
        options: &EvalOptions,
    ) -> XPathResult<IncrementalEngine> {
        let query = compile_text(query_text)?;
        let ft = deployment.fragment_tree.clone();
        let root_label = deployment.root_label.clone();
        let trie = deployment.current_topology().path_trie(&root_label);
        let mut engine = IncrementalEngine {
            deployment,
            session: QuerySession::new(query, query_text, options, ft, &root_label, &trie),
        };
        // The initial evaluation is "everything is dirty, nothing to apply":
        // one update round with empty op lists snapshots every relevant
        // fragment.
        engine
            .session
            .run_round(&engine.deployment, paxml_distsim::LATEST_EPOCH, &BTreeMap::new(), true)
            .expect("the in-process simulator transport cannot fail");
        Ok(engine)
    }

    /// The query this session evaluates.
    pub fn query_text(&self) -> &str {
        self.session.query_text()
    }

    /// The evaluation options the session was created with.
    pub fn options(&self) -> &EvalOptions {
        self.session.options()
    }

    /// The current answers (kept up to date by [`Self::apply_updates`]),
    /// sorted by original-document position.
    pub fn answers(&self) -> &[AnswerItem] {
        self.session.answers()
    }

    /// The current answers' text contents.
    pub fn answer_texts(&self) -> Vec<String> {
        self.session.answers().iter().filter_map(|a| a.text.clone()).collect()
    }

    /// The underlying deployment (for cumulative statistics).
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// Apply a batch of updates and bring the cached answers up to date,
    /// visiting only the sites that hold an updated fragment.
    ///
    /// Ops for the same fragment apply in batch order. Returns an error if
    /// an op names a fragment the deployment does not have; per-op
    /// validation failures are reported per fragment in
    /// [`IncrementalReport::rejected`] instead (the deployment stays
    /// consistent — the fragment's vectors are refreshed either way).
    pub fn apply_updates(
        &mut self,
        updates: &[(FragmentId, UpdateOp)],
    ) -> FragmentResult<IncrementalReport> {
        let mut ops_by_fragment: BTreeMap<FragmentId, Vec<UpdateOp>> = BTreeMap::new();
        for (fragment, op) in updates {
            if fragment.index() >= self.session.ft.len() {
                return Err(paxml_fragment::FragmentError::UnknownFragment {
                    fragment: fragment.index(),
                });
            }
            ops_by_fragment.entry(*fragment).or_default().push(op.clone());
        }
        Ok(self
            .session
            .run_round(&self.deployment, paxml_distsim::LATEST_EPOCH, &ops_by_fragment, false)
            .expect("the in-process simulator transport cannot fail"))
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::pax2;
    use paxml_distsim::Placement;
    use paxml_fragment::{strategy, FragmentedTree};
    use paxml_xml::{NodeId, TreeBuilder, XmlTree};

    fn clientele() -> XmlTree {
        TreeBuilder::new("clientele")
            .open("client")
            .leaf("name", "Anna")
            .leaf("country", "US")
            .open("broker")
            .leaf("name", "E*trade")
            .open("market")
            .leaf("name", "NASDAQ")
            .open("stock")
            .leaf("code", "GOOG")
            .leaf("buy", "$374")
            .leaf("qt", "40")
            .close()
            .close()
            .close()
            .close()
            .open("client")
            .leaf("name", "Lisa")
            .leaf("country", "Canada")
            .open("broker")
            .leaf("name", "CIBC")
            .open("market")
            .leaf("name", "TSE")
            .open("stock")
            .leaf("code", "GOOG")
            .leaf("buy", "$382")
            .leaf("qt", "90")
            .close()
            .close()
            .close()
            .close()
            .build()
    }

    /// From-scratch PaX2 over a *mirror* of the (updated) fragments.
    fn from_scratch(
        mirror: &FragmentedTree,
        query: &str,
        options: &EvalOptions,
        sites: usize,
    ) -> Vec<AnswerItem> {
        let mut d = Deployment::new(mirror, sites, Placement::RoundRobin).sequential();
        pax2::evaluate(&mut d, query, options).unwrap().answers
    }

    /// Apply the same ops to the test's mirror fragments.
    fn mirror_apply(mirror: &mut FragmentedTree, updates: &[(FragmentId, UpdateOp)]) {
        for (fragment, op) in updates {
            paxml_fragment::apply_update(&mut mirror.fragments[fragment.index()], op).unwrap();
        }
    }

    fn text_node_of(tree: &XmlTree, label: &str) -> NodeId {
        let e = tree.find_first(label).unwrap();
        tree.children(e).next().unwrap()
    }

    #[test]
    fn initial_evaluation_matches_pax2() {
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker", "market"]).unwrap();
        for use_annotations in [false, true] {
            let options = EvalOptions { use_annotations };
            for query in [
                "client/name",
                "client[country/text()='US']/broker/name",
                "//stock[qt >= 50]/code",
                "//broker[//stock/code/text()='GOOG']/name",
                "nonexistent/path",
            ] {
                let d = Deployment::new(&fragmented, 4, Placement::RoundRobin).sequential();
                let engine = IncrementalEngine::new(d, query, &options).unwrap();
                let expected = from_scratch(&fragmented, query, &options, 4);
                assert_eq!(
                    engine.answers(),
                    &expected[..],
                    "initial answers differ on {query} (XA={use_annotations})"
                );
            }
        }
    }

    #[test]
    fn update_in_a_clean_fragment_flips_answers_elsewhere_without_visiting_them() {
        // Query: US clients' broker names. The broker fragments hold the
        // answers; the client data (country) lives in the root fragment.
        // Editing Lisa's country flips the qualifier, so the *clean* broker
        // fragment's candidate resolves differently — with zero visits to
        // its site.
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker"]).unwrap();
        let mut mirror = fragmented.clone();
        let query = "client[country/text()='US']/broker/name";
        let d = Deployment::new(&fragmented, 3, Placement::RoundRobin).sequential();
        let mut engine = IncrementalEngine::new(d, query, &EvalOptions::default()).unwrap();
        assert_eq!(engine.answer_texts(), vec!["E*trade".to_string()]);

        // Lisa's country text node lives in the root fragment (F0).
        let root_tree = &mirror.fragments[0].tree;
        let countries = root_tree.find_all("country");
        let lisa_country = root_tree.children(countries[1]).next().unwrap();
        let updates =
            vec![(FragmentId(0), UpdateOp::EditText { node: lisa_country, text: "US".into() })];
        mirror_apply(&mut mirror, &updates);
        let report = engine.apply_updates(&updates).unwrap();

        assert_eq!(engine.answers(), &from_scratch(&mirror, query, &EvalOptions::default(), 3)[..]);
        assert_eq!(engine.answer_texts(), vec!["E*trade".to_string(), "CIBC".to_string()]);
        assert_eq!(report.dirty_fragments.len(), 1);
        assert_eq!(report.clean_site_visits(), 0, "clean sites must not be visited");
        assert_eq!(report.max_visits_per_dirty_site(), 1);
        // CIBC's fragment was *not* recomputed — its cached candidate was
        // re-resolved at the coordinator.
        assert_eq!(report.recomputed_fragments, 1);
    }

    #[test]
    fn inserts_and_deletes_change_answers_incrementally() {
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker"]).unwrap();
        let mut mirror = fragmented.clone();
        let query = "client/broker/name";
        let d = Deployment::new(&fragmented, 3, Placement::RoundRobin).sequential();
        let mut engine = IncrementalEngine::new(d, query, &EvalOptions::default()).unwrap();
        assert_eq!(engine.answer_texts(), vec!["E*trade".to_string(), "CIBC".to_string()]);

        // Insert a second name under Anna's broker (F1), delete CIBC's (F2).
        let f1_root = mirror.fragments[1].tree.root();
        let f2_name = mirror.fragments[2].tree.find_first("name").unwrap();
        let subtree = TreeBuilder::new("name").with(|t, r| {
            t.append_text(r, "E*trade Pro");
        });
        let updates = vec![
            (
                FragmentId(1),
                UpdateOp::InsertSubtree {
                    parent: f1_root,
                    subtree: subtree.build(),
                    origin_base: 1000,
                },
            ),
            (FragmentId(2), UpdateOp::DeleteSubtree { node: f2_name }),
        ];
        mirror_apply(&mut mirror, &updates);
        let report = engine.apply_updates(&updates).unwrap();

        let expected = from_scratch(&mirror, query, &EvalOptions::default(), 3);
        assert_eq!(engine.answers(), &expected[..]);
        let texts = engine.answer_texts();
        assert!(texts.contains(&"E*trade Pro".to_string()));
        assert!(!texts.contains(&"CIBC".to_string()));
        assert_eq!(report.clean_site_visits(), 0);
        assert_eq!(report.applied_ops, 2);
        assert!(report.rejected.is_empty());
    }

    #[test]
    fn annotation_pruned_fragments_still_receive_their_updates() {
        // With XA, `client/name` prunes the broker fragments; an update
        // there must still be applied (the data changes) even though no
        // vectors are recomputed — and a later engine over the same
        // deployment sees the new data.
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker"]).unwrap();
        let mut mirror = fragmented.clone();
        let query = "client/name";
        let d = Deployment::new(&fragmented, 3, Placement::RoundRobin).sequential();
        let mut engine =
            IncrementalEngine::new(d, query, &EvalOptions::with_annotations()).unwrap();
        assert_eq!(engine.answer_texts(), vec!["Anna".to_string(), "Lisa".to_string()]);

        let f1_name = text_node_of(&mirror.fragments[1].tree, "name");
        let updates =
            vec![(FragmentId(1), UpdateOp::EditText { node: f1_name, text: "Fidelity".into() })];
        mirror_apply(&mut mirror, &updates);
        let report = engine.apply_updates(&updates).unwrap();
        assert_eq!(report.recomputed_fragments, 0, "pruned fragments need no recompute");
        assert_eq!(report.applied_ops, 1);
        // The engine's own answers are unaffected...
        assert_eq!(engine.answer_texts(), vec!["Anna".to_string(), "Lisa".to_string()]);
        // ...but the deployment's data did change: a fresh broker query over
        // the same (updated) deployment sees the edit.
        let d2 = Deployment::new(&mirror, 3, Placement::RoundRobin).sequential();
        let e2 = IncrementalEngine::new(d2, "client/broker/name", &EvalOptions::default()).unwrap();
        assert!(e2.answer_texts().contains(&"Fidelity".to_string()));
    }

    #[test]
    fn rejected_ops_are_reported_and_leave_state_consistent() {
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker"]).unwrap();
        let query = "client/broker/name";
        let d = Deployment::new(&fragmented, 3, Placement::RoundRobin).sequential();
        let mut engine = IncrementalEngine::new(d, query, &EvalOptions::default()).unwrap();
        let before = engine.answers().to_vec();

        // Deleting a fragment root is invalid; the op is rejected site-side.
        let f1_root = fragmented.fragments[1].tree.root();
        let report = engine
            .apply_updates(&[(FragmentId(1), UpdateOp::DeleteSubtree { node: f1_root })])
            .unwrap();
        assert_eq!(report.applied_ops, 0);
        assert!(report.rejected.contains_key(&FragmentId(1)));
        assert_eq!(engine.answers(), &before[..], "rejected ops must not change answers");

        // Unknown fragments are an error before any visit happens.
        let visits_before: u32 = engine.deployment().stats().sites.values().map(|s| s.visits).sum();
        assert!(engine
            .apply_updates(&[(FragmentId(99), UpdateOp::DeleteSubtree { node: f1_root })])
            .is_err());
        let visits_after: u32 = engine.deployment().stats().sites.values().map(|s| s.visits).sum();
        assert_eq!(visits_before, visits_after);
    }

    #[test]
    fn empty_update_batch_is_a_visit_free_no_op() {
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker"]).unwrap();
        let d = Deployment::new(&fragmented, 3, Placement::RoundRobin).sequential();
        let mut engine =
            IncrementalEngine::new(d, "client/broker/name", &EvalOptions::default()).unwrap();
        let before = engine.answers().to_vec();
        let report = engine.apply_updates(&[]).unwrap();
        assert!(report.dirty_fragments.is_empty());
        assert!(report.visits.is_empty());
        assert_eq!(report.network_bytes, 0);
        assert_eq!(engine.answers(), &before[..]);
    }

    #[test]
    fn dirty_cone_reunification_stays_local() {
        // A long chain of fragments: an update at one end must not re-unify
        // the whole tree for a qualifier-free query (only the dirty
        // fragment's own subtree cone).
        let mut builder = TreeBuilder::new("r");
        for i in 0..8 {
            builder = builder.open("c").leaf("v", format!("{i}"));
        }
        for _ in 0..8 {
            builder = builder.close();
        }
        let tree = builder.build();
        let fragmented = strategy::cut_at_labels(&tree, &["c"]).unwrap();
        assert_eq!(fragmented.fragment_count(), 9);
        let d = Deployment::new(&fragmented, 4, Placement::RoundRobin).sequential();
        let mut engine = IncrementalEngine::new(d, "//v", &EvalOptions::default()).unwrap();
        assert_eq!(engine.answers().len(), 8);

        // Edit the deepest fragment's text: its subtree cone is just itself.
        let deepest = FragmentId(8);
        let v_text = text_node_of(&fragmented.fragments[8].tree, "v");
        let report = engine
            .apply_updates(&[(deepest, UpdateOp::EditText { node: v_text, text: "edited".into() })])
            .unwrap();
        assert_eq!(engine.answers().len(), 8);
        assert!(engine.answer_texts().contains(&"edited".to_string()));
        assert!(
            report.reunified_fragments <= 2,
            "a leaf update must re-unify only its cone, got {}",
            report.reunified_fragments
        );
        assert_eq!(report.clean_site_visits(), 0);
    }

    #[test]
    fn report_summary_mentions_the_cone() {
        let tree = clientele();
        let fragmented = strategy::cut_at_labels(&tree, &["broker"]).unwrap();
        let d = Deployment::new(&fragmented, 3, Placement::RoundRobin).sequential();
        let mut engine =
            IncrementalEngine::new(d, "client/broker/name", &EvalOptions::default()).unwrap();
        let f1_name = text_node_of(&fragmented.fragments[1].tree, "name");
        let report = engine
            .apply_updates(&[(
                FragmentId(1),
                UpdateOp::EditText { node: f1_name, text: "X".into() },
            )])
            .unwrap();
        let s = report.summary();
        assert!(s.contains("1 dirty fragments"));
        assert!(s.contains("bytes"));
        assert_eq!(engine.query_text(), "client/broker/name");
    }
}

//! Globally unique residual-variable names.
//!
//! During the per-fragment partial evaluation, every unknown value gets a
//! variable. The paper writes them `x₁…`, `y₁…`, `z₁…`, `qz₁…`; here each
//! variable carries the coordinates of the value it stands for, so that
//! unification across fragments (Procedure `evalFT`) is just a lookup.

use paxml_fragment::FragmentId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which of the per-node qualifier vectors a variable refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum QualVecKind {
    /// The `QV` vector (value of every `QVect` entry at the node itself).
    Qv,
    /// The `QDV` vector (value at the node or at some descendant).
    Qdv,
}

/// A residual variable of the distributed evaluation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PaxVar {
    /// The paper's `x`/`y` variables: entry `entry` of the `QV`/`QDV` vector
    /// at the *root of fragment `fragment`*, introduced by the parent
    /// fragment for the virtual node standing in for `fragment`.
    Qual {
        /// The sub-fragment whose root vector is unknown.
        fragment: FragmentId,
        /// Which vector the entry belongs to.
        vector: QualVecKind,
        /// Entry index within `QVect(Q)`.
        entry: usize,
    },
    /// The paper's `z` variables: entry `entry` of the `SV` vector of the
    /// *parent of fragment `fragment`'s root* — the unknown ancestor summary
    /// a non-root fragment starts its top-down pass with.
    Sel {
        /// The fragment whose ancestor summary is unknown.
        fragment: FragmentId,
        /// Entry index within `SVect(Q)` (0 = the empty prefix).
        entry: usize,
    },
    /// The paper's `qz` variables of PaX2: the value of `QVect` entry
    /// `entry` at node `node` of fragment `fragment`, unknown during the
    /// pre-order part of the combined pass and unified locally during the
    /// post-order part. These never appear in any message.
    Local {
        /// The fragment the node belongs to.
        fragment: FragmentId,
        /// Arena index of the node within the fragment.
        node: u32,
        /// Entry index within `QVect(Q)`.
        entry: u32,
    },
}

impl PaxVar {
    /// Is this a PaX2-local placeholder (never allowed to cross the wire)?
    pub fn is_local(&self) -> bool {
        matches!(self, PaxVar::Local { .. })
    }
}

impl fmt::Display for PaxVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PaxVar::Qual { fragment, vector, entry } => {
                let v = match vector {
                    QualVecKind::Qv => "x",
                    QualVecKind::Qdv => "xd",
                };
                write!(f, "{v}[{fragment}.{entry}]")
            }
            PaxVar::Sel { fragment, entry } => write!(f, "z[{fragment}.{entry}]"),
            PaxVar::Local { fragment, node, entry } => {
                write!(f, "qz[{fragment}.n{node}.{entry}]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn variables_are_distinct_per_coordinates() {
        let mut set = BTreeSet::new();
        for fragment in [FragmentId(1), FragmentId(2)] {
            for entry in 0..3 {
                set.insert(PaxVar::Qual { fragment, vector: QualVecKind::Qv, entry });
                set.insert(PaxVar::Qual { fragment, vector: QualVecKind::Qdv, entry });
                set.insert(PaxVar::Sel { fragment, entry });
                set.insert(PaxVar::Local { fragment, node: 7, entry: entry as u32 });
            }
        }
        assert_eq!(set.len(), 2 * 3 * 4);
    }

    #[test]
    fn display_is_compact_and_informative() {
        let v = PaxVar::Qual { fragment: FragmentId(2), vector: QualVecKind::Qv, entry: 8 };
        assert_eq!(v.to_string(), "x[F2.8]");
        let v = PaxVar::Sel { fragment: FragmentId(1), entry: 0 };
        assert_eq!(v.to_string(), "z[F1.0]");
        assert!(!v.is_local());
        let v = PaxVar::Local { fragment: FragmentId(3), node: 12, entry: 4 };
        assert!(v.is_local());
        assert_eq!(v.to_string(), "qz[F3.n12.4]");
    }
}

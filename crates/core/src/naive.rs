//! The **NaiveCentralized** baseline (§3): ship every fragment to the query
//! site, reassemble the document, and evaluate the query with the
//! centralized two-pass algorithm.
//!
//! Each site is visited only once, but the network carries the *entire*
//! document — the behaviour the partial-evaluation algorithms are designed
//! to avoid. The baseline exists so the benchmarks can show the traffic and
//! latency gap.

use crate::deployment::{Deployment, ExecCtx};
use crate::error::PaxResult;
use crate::report::{Algorithm, AnswerItem, EvaluationReport, ExecMode, ExecReport, QueryOutcome};
use crate::transport::ProtocolRequest;
use paxml_distsim::SiteId;
use paxml_fragment::Fragment;
use paxml_xml::NodeId;
use paxml_xpath::{centralized, compile_text, CompiledQuery, XPathResult};
use std::collections::BTreeMap;
use std::time::Instant;

/// Evaluate `query_text` with the naive ship-everything baseline.
#[deprecated(note = "use `PaxServer::prepare` + `execute` (or `query_once`) instead")]
pub fn evaluate(deployment: &mut Deployment, query_text: &str) -> XPathResult<EvaluationReport> {
    let query = compile_text(query_text)?;
    let report = run(deployment, &query, query_text, paxml_distsim::LATEST_EPOCH)
        .expect("the in-process simulator transport cannot fail");
    Ok(report.to_evaluation_report())
}

/// Evaluate an already-compiled query with the naive baseline.
#[deprecated(note = "use `PaxServer::prepare` + `execute` (or `query_once`) instead")]
pub fn evaluate_compiled(
    deployment: &mut Deployment,
    query: &CompiledQuery,
    query_text: &str,
) -> EvaluationReport {
    run(deployment, query, query_text, paxml_distsim::LATEST_EPOCH)
        .expect("the in-process simulator transport cannot fail")
        .to_evaluation_report()
}

/// The naive driver, reported as a unified [`ExecReport`] whose cluster
/// meters cover exactly this execution. Takes the deployment *shared*: any
/// number of runs may execute concurrently, each with its own recorder.
pub(crate) fn run(
    deployment: &Deployment,
    query: &CompiledQuery,
    query_text: &str,
    epoch: u64,
) -> PaxResult<ExecReport> {
    let start = Instant::now();
    let mut ctx = ExecCtx::pinned(deployment, epoch, 0);
    let topology = ctx.topology();

    // One visit per site, routed by the pinned epoch's topology: each site
    // ships exactly the fragments the topology places there, so stale
    // copies left behind by a migration are never read.
    let mut requests: BTreeMap<SiteId, ProtocolRequest> = BTreeMap::new();
    for (site, fragments) in ctx.group_by_site(topology.fragment_tree.ids().iter().copied())? {
        requests.insert(site, ProtocolRequest::FetchFragments(fragments));
    }
    let responses = ctx.round(requests)?;
    let mut shipped: Vec<Fragment> = Vec::new();
    for response in responses.into_values() {
        shipped.extend(response.into_fragments()?);
    }

    // Reassemble the document at the coordinator. Fragment ids may have
    // gaps after re-fragmentations; compacting re-indexes them densely.
    let fragmented = paxml_fragment::compact_fragmentation(shipped, &topology.fragment_tree)
        .expect("shipping every fragment of a topology yields a consistent set");
    let (tree, origin) = paxml_fragment::reassemble_with_origin(&fragmented)
        .expect("shipping every fragment always yields a consistent document");

    // Evaluate centrally at the coordinator.
    let result = centralized::evaluate_compiled(&tree, query);
    let answers: Vec<AnswerItem> = result
        .answers
        .iter()
        .map(|&node| AnswerItem {
            fragment: paxml_fragment::FragmentId::ROOT,
            origin: NodeId::from_index(origin[node.index()] as usize),
            label: tree.label(node).unwrap_or_default().to_string(),
            text: tree.text_of(node),
        })
        .collect();
    let mut answers = answers;
    answers.sort();

    Ok(ExecReport {
        algorithm: Algorithm::NaiveCentralized,
        annotations_used: false,
        mode: ExecMode::Query,
        queries: vec![QueryOutcome {
            query: query_text.to_string(),
            answers,
            fragments_evaluated: topology.fragment_tree.len(),
            coordinator_ops: result.ops,
        }],
        update: None,
        fragments_total: topology.fragment_tree.len(),
        stats: ctx.stats,
        coordinator_ops: result.ops,
        elapsed: start.elapsed(),
        from_cache: false,
        epoch,
        placement_version: topology.version,
    })
}

//! The transport abstraction: one typed surface over which every driver
//! (naive/PaX2/PaX3/batch) and [`PaxServer`](crate::server::PaxServer) talk
//! to their sites, whether the sites are in-process simulator threads or
//! real processes behind TCP sockets.
//!
//! The in-process [`Cluster`] has a *closure*-shaped round API: the
//! coordinator ships a request value and a `Fn(&mut SiteLocal, Req) -> Resp`
//! to run site-side. Closures cannot cross a socket, so the remote-capable
//! surface replaces the closure with data: every site-side task of
//! [`crate::protocol`] gets a variant in [`ProtocolRequest`], and one shared
//! [`dispatch`] function maps each variant to its task. Both transports run
//! the *same* `dispatch` — which is exactly what makes the simulator a
//! conformance oracle for any remote transport: byte-for-byte identical
//! requests, responses, operation counts and traffic meters.
//!
//! A round over a remote transport can fail (a site process can die); the
//! in-process simulator cannot. [`Transport::round_recorded`] is therefore
//! fallible, and the drivers propagate [`PaxError::SiteUnreachable`] to the
//! caller instead of hanging.

use crate::error::{PaxError, PaxResult};
use crate::protocol::{
    batch_collect_task, batch_combined_task, collect_task, combined_task, qualifier_task,
    refrag_task, selection_task, session_update_task, update_task, BatchCollectRequest,
    BatchCollectResponse, BatchCombinedRequest, BatchCombinedResponse, CollectRequest,
    CollectResponse, CombinedRequest, CombinedResponse, MsgDelta, MsgRefrag, MsgSessionDelta,
    MsgSessionUpdate, MsgUpdate, MsgVacuum, QualRequest, QualResponse, RefragOutcome, SelRequest,
    SelResponse,
};
use paxml_distsim::{Cluster, ClusterStats, SiteId, SiteLoadReport, SiteLocal, LATEST_EPOCH};
use paxml_fragment::{Fragment, FragmentId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The envelope every coordinator→site message travels in: a protocol body
/// plus the deployment epoch the visit is pinned to and a retirement
/// watermark. This (not the bare [`ProtocolRequest`]) is the unit that
/// crosses the wire, so its encoded size is the unit both transports charge
/// — which keeps the simulator byte-identical to the socket transport.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochRequest {
    /// The epoch this visit reads (and, for update bodies, installs).
    /// [`LATEST_EPOCH`] means "the newest snapshot, updated in place" — the
    /// semantics of the deprecated unversioned API.
    pub epoch: u64,
    /// Retirement watermark: before the body runs, the site drops every
    /// fragment version that no execution pinned at or above this epoch can
    /// read. Zero retires nothing.
    pub retire_below: u64,
    /// The protocol task to run.
    pub body: ProtocolRequest,
}

impl EpochRequest {
    /// Wrap a body at [`LATEST_EPOCH`] with no retirement — the envelope
    /// the deprecated free-function drivers use.
    pub fn latest(body: ProtocolRequest) -> EpochRequest {
        EpochRequest { epoch: LATEST_EPOCH, retire_below: 0, body }
    }
}

/// A coordinator→site message body: one variant per site-side task of the
/// PaX protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ProtocolRequest {
    /// PaX3 Stage 1: partial qualifier evaluation.
    Qual(QualRequest),
    /// PaX3 Stage 2: selection-path evaluation.
    Sel(SelRequest),
    /// PaX2 Stage 1: combined selection+qualifier pass.
    Combined(CombinedRequest),
    /// PaX2/PaX3 final stage: answer collection.
    Collect(CollectRequest),
    /// Batched combined pass (many queries, one visit).
    BatchCombined(BatchCombinedRequest),
    /// Batched answer collection.
    BatchCollect(BatchCollectRequest),
    /// Incremental update round of a single query session
    /// (`crate::incremental::QuerySession`).
    Update(MsgUpdate),
    /// Server update round: apply ops and refresh every session's vectors.
    SessionUpdate(MsgSessionUpdate),
    /// Naive baseline: ship every fragment stored at the site (as seen from
    /// the request's epoch).
    Fetch,
    /// Ship the named fragments as seen from the request's epoch. Unlike
    /// [`ProtocolRequest::Fetch`] this is *routed*: the coordinator asks
    /// each site only for the fragments the current topology places there,
    /// so stale copies left behind by a migration are never read.
    FetchFragments(Vec<FragmentId>),
    /// Re-fragmentation round: install the shipped fragment payloads as the
    /// envelope epoch's snapshots (see [`MsgRefrag`]).
    Refrag(MsgRefrag),
    /// Explicit retirement sweep: drop fragment versions below the
    /// envelope's `retire_below` watermark, purge the named migrated-away
    /// fragments wholesale, and report what remains. Sent by
    /// `PaxServer::vacuum`, which exists because piggybacked watermarks
    /// only reach sites the next update happens to visit.
    Vacuum(MsgVacuum),
}

/// A site→coordinator message: the response to the same-named
/// [`ProtocolRequest`] variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ProtocolResponse {
    /// Response to [`ProtocolRequest::Qual`].
    Qual(QualResponse),
    /// Response to [`ProtocolRequest::Sel`].
    Sel(SelResponse),
    /// Response to [`ProtocolRequest::Combined`].
    Combined(CombinedResponse),
    /// Response to [`ProtocolRequest::Collect`].
    Collect(CollectResponse),
    /// Response to [`ProtocolRequest::BatchCombined`].
    BatchCombined(BatchCombinedResponse),
    /// Response to [`ProtocolRequest::BatchCollect`].
    BatchCollect(BatchCollectResponse),
    /// Response to [`ProtocolRequest::Update`].
    Delta(MsgDelta),
    /// Response to [`ProtocolRequest::SessionUpdate`].
    SessionDelta(MsgSessionDelta),
    /// Response to [`ProtocolRequest::Fetch`] and
    /// [`ProtocolRequest::FetchFragments`].
    Fragments(Vec<Fragment>),
    /// Response to [`ProtocolRequest::Refrag`].
    Refragged(RefragOutcome),
    /// Response to [`ProtocolRequest::Vacuum`].
    Vacuumed(VacuumOutcome),
}

/// What a [`ProtocolRequest::Vacuum`] sweep did at one site.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct VacuumOutcome {
    /// Fragment versions dropped by this sweep.
    pub dropped: usize,
    /// Fragment versions still held after the sweep (steady state: one per
    /// fragment).
    pub live_versions: usize,
}

/// Run one protocol request against a site. Both transports execute this
/// exact function site-side, so a remote site computes — and is charged —
/// precisely what the simulator computes and charges.
///
/// The envelope is consumed first: versions below the retirement watermark
/// are dropped, then the body runs pinned to the envelope's epoch.
pub fn dispatch(site: &mut SiteLocal, request: EpochRequest) -> ProtocolResponse {
    let EpochRequest { epoch, retire_below, body } = request;
    if let ProtocolRequest::Vacuum(msg) = body {
        let mut dropped = site.retire_below(retire_below);
        for fragment in &msg.purge {
            dropped += site.purge_fragment(*fragment);
        }
        site.charge_ops(1);
        return ProtocolResponse::Vacuumed(VacuumOutcome {
            dropped,
            live_versions: site.version_count(),
        });
    }
    if retire_below > 0 {
        site.retire_below(retire_below);
    }
    match body {
        ProtocolRequest::Qual(r) => ProtocolResponse::Qual(qualifier_task(site, epoch, r)),
        ProtocolRequest::Sel(r) => ProtocolResponse::Sel(selection_task(site, epoch, r)),
        ProtocolRequest::Combined(r) => ProtocolResponse::Combined(combined_task(site, epoch, r)),
        ProtocolRequest::Collect(r) => ProtocolResponse::Collect(collect_task(site, epoch, r)),
        ProtocolRequest::BatchCombined(r) => {
            ProtocolResponse::BatchCombined(batch_combined_task(site, epoch, r))
        }
        ProtocolRequest::BatchCollect(r) => {
            ProtocolResponse::BatchCollect(batch_collect_task(site, epoch, r))
        }
        ProtocolRequest::Update(r) => ProtocolResponse::Delta(update_task(site, epoch, r)),
        ProtocolRequest::SessionUpdate(r) => {
            ProtocolResponse::SessionDelta(session_update_task(site, epoch, r))
        }
        ProtocolRequest::Fetch => {
            // Shipping is charged by the serialized size of the response;
            // the site does no real computation beyond reading its store.
            site.charge_ops(site.cumulative_size_at(epoch) as u64);
            let fragments = site.fragments_at(epoch).iter().map(|f| f.as_ref().clone()).collect();
            ProtocolResponse::Fragments(fragments)
        }
        ProtocolRequest::FetchFragments(ids) => {
            let mut fragments = Vec::with_capacity(ids.len());
            for id in ids {
                if let Some(fragment) = site.fragment_at(id, epoch) {
                    site.charge_ops(paxml_distsim::encoded_size(fragment.as_ref()));
                    fragments.push(fragment.as_ref().clone());
                }
            }
            ProtocolResponse::Fragments(fragments)
        }
        ProtocolRequest::Refrag(r) => ProtocolResponse::Refragged(refrag_task(site, epoch, r)),
        ProtocolRequest::Vacuum(_) => unreachable!("handled before the epoch body match"),
    }
}

macro_rules! response_accessor {
    ($(#[$doc:meta] $fn_name:ident, $variant:ident => $ty:ty;)*) => {
        $(
            #[$doc]
            pub fn $fn_name(self) -> PaxResult<$ty> {
                match self {
                    ProtocolResponse::$variant(inner) => Ok(inner),
                    other => Err(PaxError::Protocol {
                        message: format!(
                            "expected a {} response, got {}",
                            stringify!($variant),
                            other.kind()
                        ),
                    }),
                }
            }
        )*
    };
}

impl ProtocolResponse {
    /// The variant's name, for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolResponse::Qual(_) => "Qual",
            ProtocolResponse::Sel(_) => "Sel",
            ProtocolResponse::Combined(_) => "Combined",
            ProtocolResponse::Collect(_) => "Collect",
            ProtocolResponse::BatchCombined(_) => "BatchCombined",
            ProtocolResponse::BatchCollect(_) => "BatchCollect",
            ProtocolResponse::Delta(_) => "Delta",
            ProtocolResponse::SessionDelta(_) => "SessionDelta",
            ProtocolResponse::Fragments(_) => "Fragments",
            ProtocolResponse::Refragged(_) => "Refragged",
            ProtocolResponse::Vacuumed(_) => "Vacuumed",
        }
    }

    response_accessor! {
        /// Unwrap a Stage-1 qualifier response.
        into_qual, Qual => QualResponse;
        /// Unwrap a Stage-2 selection response.
        into_sel, Sel => SelResponse;
        /// Unwrap a combined-pass response.
        into_combined, Combined => CombinedResponse;
        /// Unwrap an answer-collection response.
        into_collect, Collect => CollectResponse;
        /// Unwrap a batched combined-pass response.
        into_batch_combined, BatchCombined => BatchCombinedResponse;
        /// Unwrap a batched collection response.
        into_batch_collect, BatchCollect => BatchCollectResponse;
        /// Unwrap an incremental-update delta.
        into_delta, Delta => MsgDelta;
        /// Unwrap a session-update delta.
        into_session_delta, SessionDelta => MsgSessionDelta;
        /// Unwrap a naive-baseline fragment shipment.
        into_fragments, Fragments => Vec<Fragment>;
        /// Unwrap a re-fragmentation outcome.
        into_refragged, Refragged => RefragOutcome;
        /// Unwrap a retirement-sweep outcome.
        into_vacuumed, Vacuumed => VacuumOutcome;
    }
}

/// The coordinator's view of a set of sites, independent of how the sites
/// are reached. [`Cluster`] implements it in-process; `paxml-wire`'s
/// `TcpCluster` implements it over sockets. Everything a driver needs —
/// rounds, placement lookups, scratch-slot allocation, meters — goes
/// through this trait, so drivers are transport-agnostic by construction.
pub trait Transport: Send + Sync {
    /// One coordinator round: deliver each request to its site, run
    /// [`dispatch`] there, collect the responses. Request and response
    /// traffic and per-site work are recorded both into the transport's
    /// cumulative counters and into `recorder`.
    fn round_recorded(
        &self,
        recorder: &mut ClusterStats,
        requests: BTreeMap<SiteId, EpochRequest>,
    ) -> PaxResult<BTreeMap<SiteId, ProtocolResponse>>;

    /// Number of sites.
    fn site_count(&self) -> usize;

    /// The site storing a fragment.
    fn site_of(&self, fragment: FragmentId) -> SiteId;

    /// All sites that hold at least one fragment.
    fn occupied_sites(&self) -> BTreeSet<SiteId>;

    /// Hand out `n` scratch slots no other caller will ever receive (see
    /// [`Cluster::allocate_slots`]).
    fn allocate_slots(&self, n: usize) -> usize;

    /// A consistent snapshot of the cumulative meters since the transport
    /// started.
    fn stats(&self) -> ClusterStats;

    /// Reset all site scratch state and statistics.
    fn reset(&self);

    /// Number of parked scratch entries at a site (test instrumentation:
    /// the scratch-leak regression tests assert this returns to zero).
    fn scratch_len(&self, site: SiteId) -> usize;

    /// What the site currently holds: every fragment with a live version
    /// list, with the encoded size of its newest snapshot. A control-plane
    /// inspection (like [`Transport::scratch_len`]): nothing is charged to
    /// the traffic meters. Transports that cannot inspect their sites
    /// report no fragments.
    fn site_load(&self, site: SiteId) -> SiteLoadReport {
        SiteLoadReport { site, fragments: Vec::new() }
    }

    /// Downcast to the in-process simulator, when that is what this is.
    /// Simulator-only knobs (round latency, per-site delays, sequential
    /// mode) are applied through this; remote transports ignore them.
    fn as_cluster(&self) -> Option<&Cluster> {
        None
    }
}

impl Transport for Cluster {
    fn round_recorded(
        &self,
        recorder: &mut ClusterStats,
        requests: BTreeMap<SiteId, EpochRequest>,
    ) -> PaxResult<BTreeMap<SiteId, ProtocolResponse>> {
        Ok(Cluster::round_recorded(self, recorder, requests, dispatch))
    }

    fn site_count(&self) -> usize {
        Cluster::site_count(self)
    }

    fn site_of(&self, fragment: FragmentId) -> SiteId {
        Cluster::site_of(self, fragment)
    }

    fn occupied_sites(&self) -> BTreeSet<SiteId> {
        Cluster::occupied_sites(self)
    }

    fn allocate_slots(&self, n: usize) -> usize {
        Cluster::allocate_slots(self, n)
    }

    fn stats(&self) -> ClusterStats {
        Cluster::stats(self)
    }

    fn reset(&self) {
        Cluster::reset(self)
    }

    fn scratch_len(&self, site: SiteId) -> usize {
        self.inspect_site(site).scratch_len()
    }

    fn site_load(&self, site: SiteId) -> SiteLoadReport {
        SiteLoadReport { site, fragments: self.inspect_site(site).fragment_bytes_at(LATEST_EPOCH) }
    }

    fn as_cluster(&self) -> Option<&Cluster> {
        Some(self)
    }
}

//! The transport abstraction: one typed surface over which every driver
//! (naive/PaX2/PaX3/batch) and [`PaxServer`](crate::server::PaxServer) talk
//! to their sites, whether the sites are in-process simulator threads or
//! real processes behind TCP sockets.
//!
//! The in-process [`Cluster`] has a *closure*-shaped round API: the
//! coordinator ships a request value and a `Fn(&mut SiteLocal, Req) -> Resp`
//! to run site-side. Closures cannot cross a socket, so the remote-capable
//! surface replaces the closure with data: every site-side task of
//! [`crate::protocol`] gets a variant in [`ProtocolRequest`], and one shared
//! [`dispatch`] function maps each variant to its task. Both transports run
//! the *same* `dispatch` — which is exactly what makes the simulator a
//! conformance oracle for any remote transport: byte-for-byte identical
//! requests, responses, operation counts and traffic meters.
//!
//! A round over a remote transport can fail (a site process can die); the
//! in-process simulator cannot. [`Transport::round_recorded`] is therefore
//! fallible, and the drivers propagate [`PaxError::SiteUnreachable`] to the
//! caller instead of hanging.

use crate::error::{PaxError, PaxResult};
use crate::protocol::{
    batch_collect_task, batch_combined_task, collect_task, combined_task, qualifier_task,
    refrag_task, selection_task, session_update_task, update_task, BatchCollectRequest,
    BatchCollectResponse, BatchCombinedRequest, BatchCombinedResponse, CollectRequest,
    CollectResponse, CombinedRequest, CombinedResponse, MsgDelta, MsgRefrag, MsgSessionDelta,
    MsgSessionUpdate, MsgUpdate, MsgVacuum, QualRequest, QualResponse, RefragOutcome, SelRequest,
    SelResponse,
};
use paxml_distsim::{
    Cluster, ClusterStats, FaultKind, FaultPlan, ReplicaSet, SiteId, SiteLoadReport, SiteLocal,
    LATEST_EPOCH,
};
use paxml_fragment::{Fragment, FragmentId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// The envelope every coordinator→site message travels in: a protocol body
/// plus the deployment epoch the visit is pinned to and a retirement
/// watermark. This (not the bare [`ProtocolRequest`]) is the unit that
/// crosses the wire, so its encoded size is the unit both transports charge
/// — which keeps the simulator byte-identical to the socket transport.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochRequest {
    /// The epoch this visit reads (and, for update bodies, installs).
    /// [`LATEST_EPOCH`] means "the newest snapshot, updated in place" — the
    /// semantics of the deprecated unversioned API.
    pub epoch: u64,
    /// Retirement watermark: before the body runs, the site drops every
    /// fragment version that no execution pinned at or above this epoch can
    /// read. Zero retires nothing.
    pub retire_below: u64,
    /// The protocol task to run.
    pub body: ProtocolRequest,
}

impl EpochRequest {
    /// Wrap a body at [`LATEST_EPOCH`] with no retirement — the envelope
    /// the deprecated free-function drivers use.
    pub fn latest(body: ProtocolRequest) -> EpochRequest {
        EpochRequest { epoch: LATEST_EPOCH, retire_below: 0, body }
    }
}

/// A coordinator→site message body: one variant per site-side task of the
/// PaX protocol.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ProtocolRequest {
    /// PaX3 Stage 1: partial qualifier evaluation.
    Qual(QualRequest),
    /// PaX3 Stage 2: selection-path evaluation.
    Sel(SelRequest),
    /// PaX2 Stage 1: combined selection+qualifier pass.
    Combined(CombinedRequest),
    /// PaX2/PaX3 final stage: answer collection.
    Collect(CollectRequest),
    /// Batched combined pass (many queries, one visit).
    BatchCombined(BatchCombinedRequest),
    /// Batched answer collection.
    BatchCollect(BatchCollectRequest),
    /// Incremental update round of a single query session
    /// (`crate::incremental::QuerySession`).
    Update(MsgUpdate),
    /// Server update round: apply ops and refresh every session's vectors.
    SessionUpdate(MsgSessionUpdate),
    /// Naive baseline: ship every fragment stored at the site (as seen from
    /// the request's epoch).
    Fetch,
    /// Ship the named fragments as seen from the request's epoch. Unlike
    /// [`ProtocolRequest::Fetch`] this is *routed*: the coordinator asks
    /// each site only for the fragments the current topology places there,
    /// so stale copies left behind by a migration are never read.
    FetchFragments(Vec<FragmentId>),
    /// Re-fragmentation round: install the shipped fragment payloads as the
    /// envelope epoch's snapshots (see [`MsgRefrag`]).
    Refrag(MsgRefrag),
    /// Explicit retirement sweep: drop fragment versions below the
    /// envelope's `retire_below` watermark, purge the named migrated-away
    /// fragments wholesale, and report what remains. Sent by
    /// `PaxServer::vacuum`, which exists because piggybacked watermarks
    /// only reach sites the next update happens to visit.
    Vacuum(MsgVacuum),
}

impl ProtocolRequest {
    /// The variant's name — the "in-flight operation" named in transport
    /// error details.
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolRequest::Qual(_) => "Qual",
            ProtocolRequest::Sel(_) => "Sel",
            ProtocolRequest::Combined(_) => "Combined",
            ProtocolRequest::Collect(_) => "Collect",
            ProtocolRequest::BatchCombined(_) => "BatchCombined",
            ProtocolRequest::BatchCollect(_) => "BatchCollect",
            ProtocolRequest::Update(_) => "Update",
            ProtocolRequest::SessionUpdate(_) => "SessionUpdate",
            ProtocolRequest::Fetch => "Fetch",
            ProtocolRequest::FetchFragments(_) => "FetchFragments",
            ProtocolRequest::Refrag(_) => "Refrag",
            ProtocolRequest::Vacuum(_) => "Vacuum",
        }
    }
}

/// A site→coordinator message: the response to the same-named
/// [`ProtocolRequest`] variant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ProtocolResponse {
    /// Response to [`ProtocolRequest::Qual`].
    Qual(QualResponse),
    /// Response to [`ProtocolRequest::Sel`].
    Sel(SelResponse),
    /// Response to [`ProtocolRequest::Combined`].
    Combined(CombinedResponse),
    /// Response to [`ProtocolRequest::Collect`].
    Collect(CollectResponse),
    /// Response to [`ProtocolRequest::BatchCombined`].
    BatchCombined(BatchCombinedResponse),
    /// Response to [`ProtocolRequest::BatchCollect`].
    BatchCollect(BatchCollectResponse),
    /// Response to [`ProtocolRequest::Update`].
    Delta(MsgDelta),
    /// Response to [`ProtocolRequest::SessionUpdate`].
    SessionDelta(MsgSessionDelta),
    /// Response to [`ProtocolRequest::Fetch`] and
    /// [`ProtocolRequest::FetchFragments`].
    Fragments(Vec<Fragment>),
    /// Response to [`ProtocolRequest::Refrag`].
    Refragged(RefragOutcome),
    /// Response to [`ProtocolRequest::Vacuum`].
    Vacuumed(VacuumOutcome),
}

/// What a [`ProtocolRequest::Vacuum`] sweep did at one site.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct VacuumOutcome {
    /// Fragment versions dropped by this sweep.
    pub dropped: usize,
    /// Fragment versions still held after the sweep (steady state: one per
    /// fragment).
    pub live_versions: usize,
}

/// Run one protocol request against a site. Both transports execute this
/// exact function site-side, so a remote site computes — and is charged —
/// precisely what the simulator computes and charges.
///
/// The envelope is consumed first: versions below the retirement watermark
/// are dropped, then the body runs pinned to the envelope's epoch.
pub fn dispatch(site: &mut SiteLocal, request: EpochRequest) -> ProtocolResponse {
    let EpochRequest { epoch, retire_below, body } = request;
    if let ProtocolRequest::Vacuum(msg) = body {
        let mut dropped = site.retire_below(retire_below);
        for fragment in &msg.purge {
            dropped += site.purge_fragment(*fragment);
        }
        site.charge_ops(1);
        return ProtocolResponse::Vacuumed(VacuumOutcome {
            dropped,
            live_versions: site.version_count(),
        });
    }
    if retire_below > 0 {
        site.retire_below(retire_below);
    }
    match body {
        ProtocolRequest::Qual(r) => ProtocolResponse::Qual(qualifier_task(site, epoch, r)),
        ProtocolRequest::Sel(r) => ProtocolResponse::Sel(selection_task(site, epoch, r)),
        ProtocolRequest::Combined(r) => ProtocolResponse::Combined(combined_task(site, epoch, r)),
        ProtocolRequest::Collect(r) => ProtocolResponse::Collect(collect_task(site, epoch, r)),
        ProtocolRequest::BatchCombined(r) => {
            ProtocolResponse::BatchCombined(batch_combined_task(site, epoch, r))
        }
        ProtocolRequest::BatchCollect(r) => {
            ProtocolResponse::BatchCollect(batch_collect_task(site, epoch, r))
        }
        ProtocolRequest::Update(r) => ProtocolResponse::Delta(update_task(site, epoch, r)),
        ProtocolRequest::SessionUpdate(r) => {
            ProtocolResponse::SessionDelta(session_update_task(site, epoch, r))
        }
        ProtocolRequest::Fetch => {
            // Shipping is charged by the serialized size of the response;
            // the site does no real computation beyond reading its store.
            site.charge_ops(site.cumulative_size_at(epoch) as u64);
            let fragments = site.fragments_at(epoch).iter().map(|f| f.as_ref().clone()).collect();
            ProtocolResponse::Fragments(fragments)
        }
        ProtocolRequest::FetchFragments(ids) => {
            let mut fragments = Vec::with_capacity(ids.len());
            for id in ids {
                if let Some(fragment) = site.fragment_at(id, epoch) {
                    site.charge_ops(paxml_distsim::encoded_size(fragment.as_ref()));
                    fragments.push(fragment.as_ref().clone());
                }
            }
            ProtocolResponse::Fragments(fragments)
        }
        ProtocolRequest::Refrag(r) => ProtocolResponse::Refragged(refrag_task(site, epoch, r)),
        ProtocolRequest::Vacuum(_) => unreachable!("handled before the epoch body match"),
    }
}

macro_rules! response_accessor {
    ($(#[$doc:meta] $fn_name:ident, $variant:ident => $ty:ty;)*) => {
        $(
            #[$doc]
            pub fn $fn_name(self) -> PaxResult<$ty> {
                match self {
                    ProtocolResponse::$variant(inner) => Ok(inner),
                    other => Err(PaxError::Protocol {
                        message: format!(
                            "expected a {} response, got {}",
                            stringify!($variant),
                            other.kind()
                        ),
                    }),
                }
            }
        )*
    };
}

impl ProtocolResponse {
    /// The variant's name, for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolResponse::Qual(_) => "Qual",
            ProtocolResponse::Sel(_) => "Sel",
            ProtocolResponse::Combined(_) => "Combined",
            ProtocolResponse::Collect(_) => "Collect",
            ProtocolResponse::BatchCombined(_) => "BatchCombined",
            ProtocolResponse::BatchCollect(_) => "BatchCollect",
            ProtocolResponse::Delta(_) => "Delta",
            ProtocolResponse::SessionDelta(_) => "SessionDelta",
            ProtocolResponse::Fragments(_) => "Fragments",
            ProtocolResponse::Refragged(_) => "Refragged",
            ProtocolResponse::Vacuumed(_) => "Vacuumed",
        }
    }

    response_accessor! {
        /// Unwrap a Stage-1 qualifier response.
        into_qual, Qual => QualResponse;
        /// Unwrap a Stage-2 selection response.
        into_sel, Sel => SelResponse;
        /// Unwrap a combined-pass response.
        into_combined, Combined => CombinedResponse;
        /// Unwrap an answer-collection response.
        into_collect, Collect => CollectResponse;
        /// Unwrap a batched combined-pass response.
        into_batch_combined, BatchCombined => BatchCombinedResponse;
        /// Unwrap a batched collection response.
        into_batch_collect, BatchCollect => BatchCollectResponse;
        /// Unwrap an incremental-update delta.
        into_delta, Delta => MsgDelta;
        /// Unwrap a session-update delta.
        into_session_delta, SessionDelta => MsgSessionDelta;
        /// Unwrap a naive-baseline fragment shipment.
        into_fragments, Fragments => Vec<Fragment>;
        /// Unwrap a re-fragmentation outcome.
        into_refragged, Refragged => RefragOutcome;
        /// Unwrap a retirement-sweep outcome.
        into_vacuumed, Vacuumed => VacuumOutcome;
    }
}

/// Socket-level tuning for remote transports, threaded from
/// `PaxServerBuilder::tcp_options` down to `paxml-wire`'s `TcpCluster`
/// through [`Transport::configure_tcp`]. The defaults are the values that
/// used to be hard-coded consts in `crates/wire/src/tcp.rs`; in-process
/// transports ignore all of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpOptions {
    /// Per-read deadline on every site socket: a site that accepts the
    /// connection but never replies fails the round after this long instead
    /// of hanging the coordinator.
    pub read_timeout: Duration,
    /// How many times to retry the initial connect to a site before giving
    /// up (site processes come up asynchronously).
    pub connect_attempts: u32,
    /// Linear backoff increment between connect attempts.
    pub connect_backoff_step: Duration,
    /// Ceiling on the per-attempt connect backoff.
    pub connect_backoff_cap: Duration,
    /// How many connect attempts a liveness *probe* makes before declaring
    /// the site still dead. Deliberately much smaller than
    /// `connect_attempts`: probes run on the serving path when a
    /// quarantined site comes up for readmission, and must answer fast.
    pub probe_attempts: u32,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            read_timeout: Duration::from_secs(30),
            connect_attempts: 40,
            connect_backoff_step: Duration::from_millis(5),
            connect_backoff_cap: Duration::from_millis(150),
            probe_attempts: 2,
        }
    }
}

/// The error a transport raises when its [`FaultPlan`] refuses to deliver a
/// round. Shared by both transports so an injected fault surfaces
/// identically in-process and over TCP: `Kill`/`Drop` are transient
/// [`PaxError::SiteUnreachable`] (failover retries them), `Garble` is a
/// permanent [`PaxError::Protocol`] (retrying re-reads the same
/// corruption). `Delay` never fails a round and must be handled by the
/// caller before constructing an error.
pub fn injected_fault_error(
    site: SiteId,
    kind: &FaultKind,
    peer: &str,
    operation: &str,
) -> PaxError {
    match kind {
        FaultKind::Kill => PaxError::SiteUnreachable {
            site,
            detail: format!("{peer}: injected Kill fault while sending {operation}"),
        },
        FaultKind::Drop => PaxError::SiteUnreachable {
            site,
            detail: format!("{peer}: injected Drop fault: {operation} request lost in flight"),
        },
        FaultKind::Garble => PaxError::Protocol {
            message: format!("{peer}: injected Garble fault: undecodable reply to {operation}"),
        },
        FaultKind::Delay(d) => {
            unreachable!("a Delay({d:?}) fault stalls the round instead of failing it")
        }
    }
}

/// The coordinator's view of a set of sites, independent of how the sites
/// are reached. [`Cluster`] implements it in-process; `paxml-wire`'s
/// `TcpCluster` implements it over sockets. Everything a driver needs —
/// rounds, placement lookups, scratch-slot allocation, meters — goes
/// through this trait, so drivers are transport-agnostic by construction.
pub trait Transport: Send + Sync {
    /// One coordinator round: deliver each request to its site, run
    /// [`dispatch`] there, collect the responses. Request and response
    /// traffic and per-site work are recorded both into the transport's
    /// cumulative counters and into `recorder`.
    fn round_recorded(
        &self,
        recorder: &mut ClusterStats,
        requests: BTreeMap<SiteId, EpochRequest>,
    ) -> PaxResult<BTreeMap<SiteId, ProtocolResponse>>;

    /// Number of sites.
    fn site_count(&self) -> usize;

    /// The *primary* site storing a fragment (the first replica).
    fn site_of(&self, fragment: FragmentId) -> SiteId;

    /// All sites storing a fragment, primary first. Transports that predate
    /// replication report a solo set around [`Transport::site_of`].
    fn replicas_of(&self, fragment: FragmentId) -> ReplicaSet {
        ReplicaSet::solo(self.site_of(fragment))
    }

    /// All sites that hold at least one fragment copy.
    fn occupied_sites(&self) -> BTreeSet<SiteId>;

    /// Install (or clear) a deterministic [`FaultPlan`] consulted before
    /// every subsequent round. Transports without fault injection ignore
    /// it.
    fn set_fault_plan(&self, _plan: Option<FaultPlan>) {}

    /// Is the site answering *right now*? Used by the health tracker to
    /// re-probe a quarantined site before readmitting it. Must be cheap
    /// (bounded by a couple of connect attempts, never the full connect
    /// backoff) and must not advance the fault clock or the meters.
    fn probe(&self, _site: SiteId) -> bool {
        true
    }

    /// Apply socket-level tuning. In-process transports have no sockets and
    /// ignore it.
    fn configure_tcp(&self, _options: &TcpOptions) {}

    /// Hand out `n` scratch slots no other caller will ever receive (see
    /// [`Cluster::allocate_slots`]).
    fn allocate_slots(&self, n: usize) -> usize;

    /// A consistent snapshot of the cumulative meters since the transport
    /// started.
    fn stats(&self) -> ClusterStats;

    /// Reset all site scratch state and statistics.
    fn reset(&self);

    /// Number of parked scratch entries at a site (test instrumentation:
    /// the scratch-leak regression tests assert this returns to zero).
    fn scratch_len(&self, site: SiteId) -> usize;

    /// What the site currently holds: every fragment with a live version
    /// list, with the encoded size of its newest snapshot. A control-plane
    /// inspection (like [`Transport::scratch_len`]): nothing is charged to
    /// the traffic meters. Transports that cannot inspect their sites
    /// report no fragments.
    fn site_load(&self, site: SiteId) -> SiteLoadReport {
        SiteLoadReport { site, fragments: Vec::new() }
    }

    /// Downcast to the in-process simulator, when that is what this is.
    /// Simulator-only knobs (round latency, per-site delays, sequential
    /// mode) are applied through this; remote transports ignore them.
    fn as_cluster(&self) -> Option<&Cluster> {
        None
    }
}

impl Transport for Cluster {
    fn round_recorded(
        &self,
        recorder: &mut ClusterStats,
        requests: BTreeMap<SiteId, EpochRequest>,
    ) -> PaxResult<BTreeMap<SiteId, ProtocolResponse>> {
        // The fault gate: with a plan installed, every attempted round
        // advances the fault clock and is checked against the schedule
        // *atomically* — a faulted target site fails the whole round with
        // nothing delivered, exactly like the TCP transport dropping the
        // round on a dead socket.
        if let Some(plan) = self.fault_plan() {
            let tick = self.next_fault_tick();
            let targets = requests.keys().copied();
            if let Some((site, kind)) = plan.first_failure(tick, targets) {
                let operation = requests.get(&site).map(|r| r.body.kind()).unwrap_or("round");
                let peer = format!("sim://{site}");
                return Err(injected_fault_error(site, &kind, &peer, operation));
            }
            let stall = plan.total_delay(tick, requests.keys().copied());
            if !stall.is_zero() {
                std::thread::sleep(stall);
            }
        }
        Ok(Cluster::round_recorded(self, recorder, requests, dispatch))
    }

    fn site_count(&self) -> usize {
        Cluster::site_count(self)
    }

    fn site_of(&self, fragment: FragmentId) -> SiteId {
        Cluster::site_of(self, fragment)
    }

    fn replicas_of(&self, fragment: FragmentId) -> ReplicaSet {
        Cluster::replicas_of(self, fragment)
    }

    fn occupied_sites(&self) -> BTreeSet<SiteId> {
        Cluster::occupied_sites(self)
    }

    fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        Cluster::set_fault_plan(self, plan)
    }

    fn probe(&self, site: SiteId) -> bool {
        // An in-process site is always alive; only the fault schedule can
        // make it look dead. Probes read the current fault clock without
        // advancing it — they are not rounds.
        match self.fault_plan() {
            Some(plan) => !matches!(
                plan.fault_at(site, self.current_fault_tick()),
                Some(FaultKind::Kill) | Some(FaultKind::Drop) | Some(FaultKind::Garble)
            ),
            None => true,
        }
    }

    fn allocate_slots(&self, n: usize) -> usize {
        Cluster::allocate_slots(self, n)
    }

    fn stats(&self) -> ClusterStats {
        Cluster::stats(self)
    }

    fn reset(&self) {
        Cluster::reset(self)
    }

    fn scratch_len(&self, site: SiteId) -> usize {
        self.inspect_site(site).scratch_len()
    }

    fn site_load(&self, site: SiteId) -> SiteLoadReport {
        SiteLoadReport { site, fragments: self.inspect_site(site).fragment_bytes_at(LATEST_EPOCH) }
    }

    fn as_cluster(&self) -> Option<&Cluster> {
        Some(self)
    }
}

//! Algorithm **PaX3** (§3): three stages, at most three visits per site.
//!
//! * **Stage 1** — every site partially evaluates the qualifiers of the
//!   query over each of its fragments, bottom-up (the extended ParBoX of
//!   §3.1), and ships the root `QV`/`QDV` vectors to the coordinator, which
//!   unifies them over the fragment tree (`evalFT`).
//! * **Stage 2** — every (relevant) site evaluates the selection path
//!   top-down over each fragment, with qualifiers now fully known, starting
//!   from an unknown ancestor summary (fresh variables) unless the fragment
//!   is the root fragment or the XPath-annotation optimization provides an
//!   exact summary. Sites ship one vector per virtual node; the coordinator
//!   unifies them top-down.
//! * **Stage 3** — sites resolve their candidate answers with the now-known
//!   ancestor summaries and ship exactly the answer nodes.
//!
//! When the query has no qualifiers Stage 1 is skipped; when the
//! XPath-annotation optimization provides exact ancestor summaries Stage 3
//! is skipped as well — matching the visit counts measured in Experiment 1.

use crate::deployment::{Deployment, ExecCtx};
use crate::error::PaxResult;
use crate::protocol::{CollectRequest, InitVector, QualRequest, SelFragmentInput, SelRequest};
use crate::prune::{analyze_with_trie, AnnotationAnalysis};
use crate::report::{Algorithm, AnswerItem, EvaluationReport, ExecMode, ExecReport, QueryOutcome};
use crate::transport::ProtocolRequest;
use crate::unify::{unify_qualifiers, unify_selection, DenseAssignment};
use crate::vars::PaxVar;
use crate::EvalOptions;
use paxml_boolex::{BitVector, CompactVector};
use paxml_fragment::FragmentId;
use paxml_xpath::eval::{initial_vector, QualVectors};
use paxml_xpath::{compile_text, CompiledQuery, XPathResult};
use std::collections::BTreeMap;
use std::time::Instant;

/// Evaluate `query_text` over the deployment with PaX3.
#[deprecated(note = "use `PaxServer::prepare` + `execute` (or `query_once`) instead")]
pub fn evaluate(
    deployment: &mut Deployment,
    query_text: &str,
    options: &EvalOptions,
) -> XPathResult<EvaluationReport> {
    let query = compile_text(query_text)?;
    let report = run(deployment, &query, query_text, options, paxml_distsim::LATEST_EPOCH)
        .expect("the in-process simulator transport cannot fail");
    Ok(report.to_evaluation_report())
}

/// Evaluate an already-compiled query with PaX3.
#[deprecated(note = "use `PaxServer::prepare` + `execute` (or `query_once`) instead")]
pub fn evaluate_compiled(
    deployment: &mut Deployment,
    query: &CompiledQuery,
    query_text: &str,
    options: &EvalOptions,
) -> EvaluationReport {
    run(deployment, query, query_text, options, paxml_distsim::LATEST_EPOCH)
        .expect("the in-process simulator transport cannot fail")
        .to_evaluation_report()
}

/// The PaX3 driver: the three-stage protocol, reported as a unified
/// [`ExecReport`] whose cluster meters cover exactly this execution. Takes
/// the deployment *shared*: any number of runs may execute concurrently,
/// each with its own recorder and scratch slot.
pub(crate) fn run(
    deployment: &Deployment,
    query: &CompiledQuery,
    query_text: &str,
    options: &EvalOptions,
    epoch: u64,
) -> PaxResult<ExecReport> {
    let start = Instant::now();
    let mut ctx = ExecCtx::pinned(deployment, epoch, 0);
    let topology = ctx.topology();
    let slot = deployment.allocate_slots(1);
    let ft = topology.fragment_tree.clone();
    let analysis = if options.use_annotations {
        analyze_with_trie(query, &topology.path_trie(&deployment.root_label))
    } else {
        AnnotationAnalysis::keep_all(&ft)
    };
    let mut coordinator_ops: u64 = 0;
    let mut answers: Vec<AnswerItem> = Vec::new();

    // ----------------------------------------------------------------- Stage 1
    let mut assignment = DenseAssignment::new(ft.len());
    if query.has_qualifiers() {
        let requests = stage1_requests(&mut ctx, &topology, query, slot, &analysis.relevant)?;
        let responses = ctx.round(requests)?;
        let mut roots: BTreeMap<FragmentId, QualVectors<PaxVar>> = BTreeMap::new();
        for response in responses.into_values() {
            roots.extend(response.into_qual()?.roots);
        }
        coordinator_ops += (ft.len() * query.qvect_len()) as u64;
        unify_qualifiers(&ft, &roots, query.qvect_len(), &mut assignment);
    }

    // ----------------------------------------------------------------- Stage 2
    let root_init: Vec<bool> = initial_vector(query, &deployment.root_label);
    let mut requests: BTreeMap<paxml_distsim::SiteId, ProtocolRequest> = BTreeMap::new();
    let mut finals_pending: Vec<FragmentId> = Vec::new();
    for (&site, fragments) in &ctx.group_by_site(analysis.relevant.iter().copied())? {
        let mut inputs = BTreeMap::new();
        for &fragment in fragments {
            let init = if fragment == FragmentId::ROOT {
                InitVector::Exact(BitVector::from_bools(&root_init))
            } else if let Some(exact) = analysis.exact_init.get(&fragment) {
                InitVector::Exact(BitVector::from_bools(exact))
            } else {
                InitVector::Unknown
            };
            let exact = matches!(init, InitVector::Exact(_));
            if !exact {
                finals_pending.push(fragment);
            }
            let qual_values = if query.has_qualifiers() {
                assignment.restrict_for_fragment(fragment, ft.children(fragment))
            } else {
                Vec::new()
            };
            inputs.insert(
                fragment,
                SelFragmentInput {
                    qual_values,
                    init,
                    root_is_context: fragment == FragmentId::ROOT && !query.absolute,
                    collect_answers_now: exact,
                },
            );
        }
        requests.insert(
            site,
            ProtocolRequest::Sel(SelRequest { slot, query: query.clone(), fragments: inputs }),
        );
    }
    let responses = ctx.round(requests)?;
    let mut virtuals: BTreeMap<FragmentId, CompactVector<PaxVar>> = BTreeMap::new();
    for response in responses.into_values() {
        let response = response.into_sel()?;
        virtuals.extend(response.virtuals);
        answers.extend(response.answers);
    }

    // ----------------------------------------------------------------- Stage 3
    if !finals_pending.is_empty() {
        coordinator_ops += (ft.len() * query.init_len()) as u64;
        unify_selection(&ft, &virtuals, &root_init, &mut assignment);
        let mut requests: BTreeMap<paxml_distsim::SiteId, ProtocolRequest> = BTreeMap::new();
        for (&site, fragments) in &ctx.group_by_site(finals_pending.iter().copied())? {
            let mut per_fragment = BTreeMap::new();
            for &fragment in fragments {
                per_fragment.insert(fragment, assignment.restrict_for_fragment(fragment, &[]));
            }
            requests.insert(
                site,
                ProtocolRequest::Collect(CollectRequest { slot, fragments: per_fragment }),
            );
        }
        let responses = ctx.round(requests)?;
        for response in responses.into_values() {
            answers.extend(response.into_collect()?.answers);
        }
    }

    answers.sort();
    answers.dedup();
    Ok(ExecReport {
        algorithm: Algorithm::PaX3,
        annotations_used: options.use_annotations,
        mode: ExecMode::Query,
        queries: vec![QueryOutcome {
            query: query_text.to_string(),
            answers,
            fragments_evaluated: analysis.relevant.len(),
            coordinator_ops,
        }],
        update: None,
        fragments_total: ft.len(),
        stats: ctx.stats,
        coordinator_ops,
        elapsed: start.elapsed(),
        from_cache: false,
        epoch,
        placement_version: topology.version,
    })
}

/// Build the Stage-1 requests: every site is asked to evaluate the
/// qualifiers over *all* of its fragments (the annotation optimization only
/// kicks in from Stage 2 onward, exactly as in the paper). Only the
/// `relevant` fragments park their per-node vectors site-side — Stage 2
/// visits exactly those, so anything else parked would never be taken back.
fn stage1_requests(
    ctx: &mut crate::deployment::ExecCtx<'_>,
    topology: &crate::deployment::Topology,
    query: &CompiledQuery,
    slot: usize,
    relevant: &std::collections::BTreeSet<FragmentId>,
) -> crate::error::PaxResult<BTreeMap<paxml_distsim::SiteId, ProtocolRequest>> {
    let all: Vec<FragmentId> = topology.fragment_tree.ids().to_vec();
    Ok(ctx
        .group_by_site(all)?
        .into_iter()
        .map(|(site, fragments)| {
            let park: Vec<FragmentId> =
                fragments.iter().copied().filter(|f| relevant.contains(f)).collect();
            (
                site,
                ProtocolRequest::Qual(QualRequest { slot, query: query.clone(), fragments, park }),
            )
        })
        .collect())
}

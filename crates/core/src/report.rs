//! Evaluation reports: answers plus the measured costs that back the paper's
//! performance guarantees.

use paxml_distsim::{ClusterStats, SiteId};
use paxml_fragment::FragmentId;
use paxml_xml::{NodeId, XmlTree};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::Duration;

/// One answer node shipped back to the query site.
///
/// Field order matters: `Ord` is derived, so answers sort by their position
/// in the *original* document first — the order the paper's examples (and
/// this crate's reports) present answers in.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AnswerItem {
    /// The node's id *in the original, unfragmented tree* (via the
    /// fragment's origin map) — the canonical identity used to compare
    /// distributed and centralized results.
    pub origin: NodeId,
    /// The fragment the node was found in.
    pub fragment: FragmentId,
    /// The element's label.
    pub label: String,
    /// The element's direct text content, when any (e.g. the broker *name*
    /// answers of the running example).
    pub text: Option<String>,
}

/// Which algorithm produced a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Ship every fragment to the query site and evaluate centrally.
    NaiveCentralized,
    /// The three-stage partial-evaluation algorithm (§3).
    PaX3,
    /// The two-stage partial-evaluation algorithm (§4).
    PaX2,
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::NaiveCentralized => write!(f, "NaiveCentralized"),
            Algorithm::PaX3 => write!(f, "PaX3"),
            Algorithm::PaX2 => write!(f, "PaX2"),
        }
    }
}

/// The outcome of one distributed query evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvaluationReport {
    /// The algorithm that ran.
    pub algorithm: Algorithm,
    /// Was the XPath-annotation optimization (§5) enabled?
    pub annotations_used: bool,
    /// The query as given.
    pub query: String,
    /// The answers, sorted by their position in the original document.
    pub answers: Vec<AnswerItem>,
    /// Number of fragments that actually participated (after pruning).
    pub fragments_evaluated: usize,
    /// Total number of fragments in the fragment tree.
    pub fragments_total: usize,
    /// Network / visit / computation counters recorded by the simulator.
    pub stats: ClusterStats,
    /// Work done at the coordinator itself (only meaningful for the
    /// `NaiveCentralized` baseline, which evaluates the whole tree there).
    pub coordinator_ops: u64,
    /// Wall-clock time of the whole evaluation as seen by the coordinator.
    pub elapsed: Duration,
}

impl EvaluationReport {
    /// The answers' origin node ids, sorted — the canonical comparison key.
    pub fn answer_origins(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.answers.iter().map(|a| a.origin).collect();
        out.sort();
        out
    }

    /// The answers' text contents (useful in examples and tests).
    pub fn answer_texts(&self) -> Vec<String> {
        self.answers.iter().filter_map(|a| a.text.clone()).collect()
    }

    /// Maximum number of visits any site received — the paper's headline
    /// guarantee (≤ 3 for PaX3, ≤ 2 for PaX2).
    pub fn max_visits_per_site(&self) -> u32 {
        self.stats.max_visits_per_site()
    }

    /// Total bytes moved over the (simulated) network.
    pub fn network_bytes(&self) -> u64 {
        self.stats.total_bytes()
    }

    /// Total computation (sum over sites, in elementary operations), plus
    /// the coordinator's own work.
    pub fn total_ops(&self) -> u64 {
        self.stats.total_ops + self.coordinator_ops
    }

    /// The parallel (perceived) computation time.
    pub fn parallel_time(&self) -> Duration {
        self.stats.parallel_time()
    }

    /// Deterministic model of the parallel computation cost: the sum over
    /// rounds of the maximum per-site operation count — the quantity bounded
    /// by `O(|Q| · max_Si |F_Si|)` in §3.4. Unlike wall-clock times it does
    /// not depend on how many cores the simulating host has.
    pub fn parallel_ops(&self) -> u64 {
        self.stats.parallel_ops
    }

    /// Sum of per-site busy time — the paper's Experiment-3 metric.
    pub fn total_computation_time(&self) -> Duration {
        self.stats.total_busy()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{}{}: {} answers, {} fragments of {} evaluated, {} visits max/site, {} bytes, {} ops, parallel {:?}",
            self.algorithm,
            if self.annotations_used { "-XA" } else { "-NA" },
            self.answers.len(),
            self.fragments_evaluated,
            self.fragments_total,
            self.max_visits_per_site(),
            self.network_bytes(),
            self.total_ops(),
            self.parallel_time(),
        )
    }
}

/// What kind of work one [`ExecReport`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecMode {
    /// One query executed (`PaxServer::execute` / `query_once`).
    Query,
    /// A batch of queries executed together (`PaxServer::execute_batch`).
    Batch,
    /// A batch of fragment updates applied (`PaxServer::apply_updates`).
    Update,
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecMode::Query => write!(f, "query"),
            ExecMode::Batch => write!(f, "batch"),
            ExecMode::Update => write!(f, "update"),
        }
    }
}

/// One query's slice of an [`ExecReport`]: its answers plus the per-query
/// meters (the cluster-level meters are shared across the execution and live
/// on the report itself).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryOutcome {
    /// The query text as prepared.
    pub query: String,
    /// The answers, sorted by their position in the original document.
    pub answers: Vec<AnswerItem>,
    /// Number of fragments that actually participated (after pruning).
    pub fragments_evaluated: usize,
    /// Coordinator-side unification work attributable to this query.
    pub coordinator_ops: u64,
}

/// The update-specific slice of an [`ExecReport`] (mode
/// [`ExecMode::Update`]).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UpdateOutcome {
    /// Fragments the update batch touched.
    pub dirty_fragments: BTreeSet<FragmentId>,
    /// Sites holding at least one dirty fragment — the only sites the
    /// update round is allowed to visit.
    pub dirty_sites: BTreeSet<SiteId>,
    /// Update ops applied successfully.
    pub applied_ops: usize,
    /// Fragments whose op sequence was rejected, with the reason (their
    /// remaining ops were skipped; any session vectors were still
    /// refreshed).
    pub rejected: BTreeMap<FragmentId, String>,
    /// Prepared-query sessions whose residual-vector caches were refreshed
    /// in the same visit the ops were applied in.
    pub refreshed_sessions: usize,
    /// Fragment snapshots recomputed site-side across all sessions.
    pub recomputed_fragments: usize,
    /// `evalFT` steps performed across all sessions' dirty cones.
    pub reunified_fragments: usize,
}

/// The outcome of one execution against a `PaxServer` session — the unified
/// report every entry point (`execute`, `execute_batch`, `apply_updates`,
/// `query_once`) returns.
///
/// The cluster meters ([`ExecReport::stats`]) are **per-execution deltas**:
/// the server snapshots the deployment's cumulative counters around each
/// execution, so back-to-back executions each report their own visits and
/// bytes — no `reset()` needed, ever. Per-query data (answers, pruning,
/// unification work) lives in [`ExecReport::queries`]; update-only data in
/// [`ExecReport::update`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecReport {
    /// The algorithm the server is configured with. Note: batch executions
    /// always run the shared-visit combined protocol (PaX2's machinery)
    /// regardless of this label — a PaX3 server's batch report carries
    /// `PaX3` but its meters come from the two-visit batch engine (the ≤ 3
    /// bound holds a fortiori).
    pub algorithm: Algorithm,
    /// Was the XPath-annotation optimization (§5) enabled?
    pub annotations_used: bool,
    /// What kind of execution this report describes.
    pub mode: ExecMode,
    /// One outcome per query (exactly one for [`ExecMode::Query`], one per
    /// batch member for [`ExecMode::Batch`], empty for updates).
    pub queries: Vec<QueryOutcome>,
    /// Update-specific details ([`ExecMode::Update`] only).
    pub update: Option<UpdateOutcome>,
    /// Total number of fragments in the fragment tree.
    pub fragments_total: usize,
    /// Network / visit / computation counters of **this execution only**.
    pub stats: ClusterStats,
    /// Coordinator-side work of this execution (unification, or the naive
    /// baseline's centralized evaluation).
    pub coordinator_ops: u64,
    /// Wall-clock time of the execution as seen by the coordinator.
    pub elapsed: Duration,
    /// Was this execution served entirely from the server's residual-vector
    /// cache (zero site visits)?
    pub from_cache: bool,
    /// The deployment epoch this execution was pinned to: queries report
    /// the epoch whose snapshots they read, updates the epoch they
    /// published. Executions outside an epoch-versioned server (the
    /// deprecated free-function drivers) report
    /// [`paxml_distsim::LATEST_EPOCH`].
    pub epoch: u64,
    /// The version of the placement map (fragment → site topology) that
    /// routed this execution's visits. 0 is the deploy-time topology; every
    /// published re-fragmentation increments it. Lets tests and benches
    /// assert which topology served a read across an online rebalance.
    pub placement_version: u64,
}

impl ExecReport {
    /// The answers of a single-query execution (the first query's answers;
    /// empty for updates).
    pub fn answers(&self) -> &[AnswerItem] {
        self.queries.first().map(|q| q.answers.as_slice()).unwrap_or(&[])
    }

    /// The answers' origin node ids, sorted — the canonical comparison key.
    /// For batches this is the first query's; use [`ExecReport::queries`]
    /// for the rest.
    pub fn answer_origins(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.answers().iter().map(|a| a.origin).collect();
        out.sort();
        out
    }

    /// The answers' text contents (useful in examples and tests).
    pub fn answer_texts(&self) -> Vec<String> {
        self.answers().iter().filter_map(|a| a.text.clone()).collect()
    }

    /// Number of queries this execution carried.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Did this execution carry no queries (an update, or an empty batch)?
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Answers summed over every query of the execution.
    pub fn total_answers(&self) -> usize {
        self.queries.iter().map(|q| q.answers.len()).sum()
    }

    /// Maximum number of visits any site received **during this execution**
    /// — the paper's headline guarantee (≤ 3 for PaX3, ≤ 2 for PaX2 and for
    /// a whole PaX2 batch, ≤ 1 for the naive baseline and for an update
    /// round).
    pub fn max_visits_per_site(&self) -> u32 {
        self.stats.max_visits_per_site()
    }

    /// Per-site visit counts of this execution.
    pub fn visits_per_site(&self) -> BTreeMap<SiteId, u32> {
        self.stats.sites.iter().map(|(site, s)| (*site, s.visits)).collect()
    }

    /// Visits this execution paid to sites holding *no* dirty fragment.
    /// Meaningful for [`ExecMode::Update`], where the incremental protocol
    /// guarantees zero; executions without an update slice return 0.
    pub fn clean_site_visits(&self) -> u32 {
        match &self.update {
            Some(update) => self
                .stats
                .sites
                .iter()
                .filter(|(site, _)| !update.dirty_sites.contains(site))
                .map(|(_, s)| s.visits)
                .sum(),
            None => 0,
        }
    }

    /// Total bytes moved over the (simulated) network by this execution.
    pub fn network_bytes(&self) -> u64 {
        self.stats.total_bytes()
    }

    /// Coordinator rounds this execution needed.
    pub fn rounds(&self) -> u32 {
        self.stats.rounds
    }

    /// Total computation (sum over sites plus the coordinator's own work).
    pub fn total_ops(&self) -> u64 {
        self.stats.total_ops + self.coordinator_ops
    }

    /// The parallel (perceived) computation time of this execution.
    pub fn parallel_time(&self) -> Duration {
        self.stats.parallel_time()
    }

    /// Deterministic model of the parallel computation cost (see
    /// [`ClusterStats::parallel_ops`]).
    pub fn parallel_ops(&self) -> u64 {
        self.stats.parallel_ops
    }

    /// Sum of per-site busy time — the paper's Experiment-3 metric.
    pub fn total_computation_time(&self) -> Duration {
        self.stats.total_busy()
    }

    /// Queries per second of coordinator wall-clock time (batch executions).
    pub fn queries_per_second(&self) -> f64 {
        if self.elapsed.is_zero() {
            return f64::INFINITY;
        }
        self.queries.len() as f64 / self.elapsed.as_secs_f64()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut out =
            format!("{}{}", self.algorithm, if self.annotations_used { "-XA" } else { "-NA" },);
        match self.mode {
            ExecMode::Query => {}
            ExecMode::Batch => out.push_str("-batch"),
            ExecMode::Update => out.push_str("-update"),
        }
        out.push_str(&format!(
            ": {} answers, {} visits max/site, {} rounds, {} bytes, {} ops, parallel {:?}",
            self.total_answers(),
            self.max_visits_per_site(),
            self.rounds(),
            self.network_bytes(),
            self.total_ops(),
            self.parallel_time(),
        ));
        if let Some(q) = self.queries.first() {
            if self.queries.len() == 1 {
                out.push_str(&format!(
                    ", {} of {} fragments",
                    q.fragments_evaluated, self.fragments_total
                ));
            } else {
                out.push_str(&format!(", {} queries", self.queries.len()));
            }
        }
        if let Some(update) = &self.update {
            out.push_str(&format!(
                ", {} dirty fragments on {} sites, {} ops applied, {} sessions refreshed",
                update.dirty_fragments.len(),
                update.dirty_sites.len(),
                update.applied_ops,
                update.refreshed_sessions,
            ));
        }
        if self.from_cache {
            out.push_str(" (cached)");
        }
        out
    }

    /// View this execution as the legacy single-query
    /// [`EvaluationReport`] (the first query's slice).
    pub fn to_evaluation_report(&self) -> EvaluationReport {
        let outcome = self.queries.first();
        EvaluationReport {
            algorithm: self.algorithm,
            annotations_used: self.annotations_used,
            query: outcome.map(|q| q.query.clone()).unwrap_or_default(),
            answers: outcome.map(|q| q.answers.clone()).unwrap_or_default(),
            fragments_evaluated: outcome.map(|q| q.fragments_evaluated).unwrap_or(0),
            fragments_total: self.fragments_total,
            stats: self.stats.clone(),
            coordinator_ops: self.coordinator_ops,
            elapsed: self.elapsed,
        }
    }
}

/// Build an [`AnswerItem`] from a node of a fragment.
pub fn answer_item(
    fragment: FragmentId,
    tree: &XmlTree,
    node: NodeId,
    origin: NodeId,
) -> AnswerItem {
    AnswerItem {
        origin,
        fragment,
        label: tree.label(node).unwrap_or_default().to_string(),
        text: tree.text_of(node),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxml_xml::TreeBuilder;

    #[test]
    fn answer_item_captures_label_and_text() {
        let t = TreeBuilder::new("broker").leaf("name", "Bache").build();
        let name = t.find_first("name").unwrap();
        let item = answer_item(FragmentId(1), &t, name, NodeId::from_index(42));
        assert_eq!(item.label, "name");
        assert_eq!(item.text, Some("Bache".to_string()));
        assert_eq!(item.origin.index(), 42);
    }

    #[test]
    fn report_accessors() {
        let t = TreeBuilder::new("broker").leaf("name", "Bache").build();
        let name = t.find_first("name").unwrap();
        let report = EvaluationReport {
            algorithm: Algorithm::PaX2,
            annotations_used: true,
            query: "//broker/name".into(),
            answers: vec![
                answer_item(FragmentId(1), &t, name, NodeId::from_index(9)),
                answer_item(FragmentId(0), &t, name, NodeId::from_index(3)),
            ],
            fragments_evaluated: 2,
            fragments_total: 5,
            stats: ClusterStats::default(),
            coordinator_ops: 7,
            elapsed: Duration::from_millis(1),
        };
        assert_eq!(report.answer_origins(), vec![NodeId::from_index(3), NodeId::from_index(9)]);
        assert_eq!(report.answer_texts(), vec!["Bache".to_string(), "Bache".to_string()]);
        assert_eq!(report.total_ops(), 7);
        let s = report.summary();
        assert!(s.contains("PaX2-XA"));
        assert!(s.contains("2 answers"));
        assert_eq!(Algorithm::PaX3.to_string(), "PaX3");
        assert_eq!(Algorithm::NaiveCentralized.to_string(), "NaiveCentralized");
    }
}

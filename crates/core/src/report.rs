//! Evaluation reports: answers plus the measured costs that back the paper's
//! performance guarantees.

use paxml_distsim::ClusterStats;
use paxml_fragment::FragmentId;
use paxml_xml::{NodeId, XmlTree};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// One answer node shipped back to the query site.
///
/// Field order matters: `Ord` is derived, so answers sort by their position
/// in the *original* document first — the order the paper's examples (and
/// this crate's reports) present answers in.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AnswerItem {
    /// The node's id *in the original, unfragmented tree* (via the
    /// fragment's origin map) — the canonical identity used to compare
    /// distributed and centralized results.
    pub origin: NodeId,
    /// The fragment the node was found in.
    pub fragment: FragmentId,
    /// The element's label.
    pub label: String,
    /// The element's direct text content, when any (e.g. the broker *name*
    /// answers of the running example).
    pub text: Option<String>,
}

/// Which algorithm produced a report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Ship every fragment to the query site and evaluate centrally.
    NaiveCentralized,
    /// The three-stage partial-evaluation algorithm (§3).
    PaX3,
    /// The two-stage partial-evaluation algorithm (§4).
    PaX2,
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Algorithm::NaiveCentralized => write!(f, "NaiveCentralized"),
            Algorithm::PaX3 => write!(f, "PaX3"),
            Algorithm::PaX2 => write!(f, "PaX2"),
        }
    }
}

/// The outcome of one distributed query evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvaluationReport {
    /// The algorithm that ran.
    pub algorithm: Algorithm,
    /// Was the XPath-annotation optimization (§5) enabled?
    pub annotations_used: bool,
    /// The query as given.
    pub query: String,
    /// The answers, sorted by their position in the original document.
    pub answers: Vec<AnswerItem>,
    /// Number of fragments that actually participated (after pruning).
    pub fragments_evaluated: usize,
    /// Total number of fragments in the fragment tree.
    pub fragments_total: usize,
    /// Network / visit / computation counters recorded by the simulator.
    pub stats: ClusterStats,
    /// Work done at the coordinator itself (only meaningful for the
    /// `NaiveCentralized` baseline, which evaluates the whole tree there).
    pub coordinator_ops: u64,
    /// Wall-clock time of the whole evaluation as seen by the coordinator.
    pub elapsed: Duration,
}

impl EvaluationReport {
    /// The answers' origin node ids, sorted — the canonical comparison key.
    pub fn answer_origins(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self.answers.iter().map(|a| a.origin).collect();
        out.sort();
        out
    }

    /// The answers' text contents (useful in examples and tests).
    pub fn answer_texts(&self) -> Vec<String> {
        self.answers.iter().filter_map(|a| a.text.clone()).collect()
    }

    /// Maximum number of visits any site received — the paper's headline
    /// guarantee (≤ 3 for PaX3, ≤ 2 for PaX2).
    pub fn max_visits_per_site(&self) -> u32 {
        self.stats.max_visits_per_site()
    }

    /// Total bytes moved over the (simulated) network.
    pub fn network_bytes(&self) -> u64 {
        self.stats.total_bytes()
    }

    /// Total computation (sum over sites, in elementary operations), plus
    /// the coordinator's own work.
    pub fn total_ops(&self) -> u64 {
        self.stats.total_ops + self.coordinator_ops
    }

    /// The parallel (perceived) computation time.
    pub fn parallel_time(&self) -> Duration {
        self.stats.parallel_time()
    }

    /// Deterministic model of the parallel computation cost: the sum over
    /// rounds of the maximum per-site operation count — the quantity bounded
    /// by `O(|Q| · max_Si |F_Si|)` in §3.4. Unlike wall-clock times it does
    /// not depend on how many cores the simulating host has.
    pub fn parallel_ops(&self) -> u64 {
        self.stats.parallel_ops
    }

    /// Sum of per-site busy time — the paper's Experiment-3 metric.
    pub fn total_computation_time(&self) -> Duration {
        self.stats.total_busy()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{}{}: {} answers, {} fragments of {} evaluated, {} visits max/site, {} bytes, {} ops, parallel {:?}",
            self.algorithm,
            if self.annotations_used { "-XA" } else { "-NA" },
            self.answers.len(),
            self.fragments_evaluated,
            self.fragments_total,
            self.max_visits_per_site(),
            self.network_bytes(),
            self.total_ops(),
            self.parallel_time(),
        )
    }
}

/// Build an [`AnswerItem`] from a node of a fragment.
pub fn answer_item(
    fragment: FragmentId,
    tree: &XmlTree,
    node: NodeId,
    origin: NodeId,
) -> AnswerItem {
    AnswerItem {
        origin,
        fragment,
        label: tree.label(node).unwrap_or_default().to_string(),
        text: tree.text_of(node),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxml_xml::TreeBuilder;

    #[test]
    fn answer_item_captures_label_and_text() {
        let t = TreeBuilder::new("broker").leaf("name", "Bache").build();
        let name = t.find_first("name").unwrap();
        let item = answer_item(FragmentId(1), &t, name, NodeId::from_index(42));
        assert_eq!(item.label, "name");
        assert_eq!(item.text, Some("Bache".to_string()));
        assert_eq!(item.origin.index(), 42);
    }

    #[test]
    fn report_accessors() {
        let t = TreeBuilder::new("broker").leaf("name", "Bache").build();
        let name = t.find_first("name").unwrap();
        let report = EvaluationReport {
            algorithm: Algorithm::PaX2,
            annotations_used: true,
            query: "//broker/name".into(),
            answers: vec![
                answer_item(FragmentId(1), &t, name, NodeId::from_index(9)),
                answer_item(FragmentId(0), &t, name, NodeId::from_index(3)),
            ],
            fragments_evaluated: 2,
            fragments_total: 5,
            stats: ClusterStats::default(),
            coordinator_ops: 7,
            elapsed: Duration::from_millis(1),
        };
        assert_eq!(report.answer_origins(), vec![NodeId::from_index(3), NodeId::from_index(9)]);
        assert_eq!(report.answer_texts(), vec!["Bache".to_string(), "Bache".to_string()]);
        assert_eq!(report.total_ops(), 7);
        let s = report.summary();
        assert!(s.contains("PaX2-XA"));
        assert!(s.contains("2 answers"));
        assert_eq!(Algorithm::PaX3.to_string(), "PaX3");
        assert_eq!(Algorithm::NaiveCentralized.to_string(), "NaiveCentralized");
    }
}

//! Algorithm **PaX2** (§4): two stages, at most two visits per site.
//!
//! PaX2 folds the first two stages of PaX3 into one traversal per fragment:
//! a pre-order computation of the selection vectors (with placeholder
//! variables for the still-unknown qualifier values) and a post-order
//! computation of the qualifier vectors, unified locally once a node's
//! subtree has been fully visited (Examples 4.1–4.3). One coordinator round
//! later, the sites learn the truth values of their residual variables and
//! ship exactly the answer nodes.
//!
//! With the XPath-annotation optimization PaX2 additionally restricts the
//! combined pass to the relevant fragments — unlike PaX3, whose Stage 1 must
//! still touch every fragment — which is why `PaX2-XA` wins on Q3 in the
//! paper's Figure 10(c).

use crate::deployment::{Deployment, ExecCtx};
use crate::error::PaxResult;
use crate::protocol::{CollectRequest, CombinedFragmentInput, CombinedRequest, InitVector};
use crate::prune::{analyze_with_trie, AnnotationAnalysis};
use crate::report::{Algorithm, AnswerItem, EvaluationReport, ExecMode, ExecReport, QueryOutcome};
use crate::transport::ProtocolRequest;
use crate::unify::{unify_qualifiers, unify_selection, DenseAssignment};
use crate::vars::PaxVar;
use crate::EvalOptions;
use paxml_boolex::{BitVector, CompactVector};
use paxml_fragment::FragmentId;
use paxml_xpath::eval::{initial_vector, QualVectors};
use paxml_xpath::{compile_text, CompiledQuery, XPathResult};
use std::collections::BTreeMap;
use std::time::Instant;

/// Evaluate `query_text` over the deployment with PaX2.
#[deprecated(note = "use `PaxServer::prepare` + `execute` (or `query_once`) instead")]
pub fn evaluate(
    deployment: &mut Deployment,
    query_text: &str,
    options: &EvalOptions,
) -> XPathResult<EvaluationReport> {
    let query = compile_text(query_text)?;
    let report = run(deployment, &query, query_text, options, paxml_distsim::LATEST_EPOCH)
        .expect("the in-process simulator transport cannot fail");
    Ok(report.to_evaluation_report())
}

/// Evaluate an already-compiled query with PaX2.
#[deprecated(note = "use `PaxServer::prepare` + `execute` (or `query_once`) instead")]
pub fn evaluate_compiled(
    deployment: &mut Deployment,
    query: &CompiledQuery,
    query_text: &str,
    options: &EvalOptions,
) -> EvaluationReport {
    run(deployment, query, query_text, options, paxml_distsim::LATEST_EPOCH)
        .expect("the in-process simulator transport cannot fail")
        .to_evaluation_report()
}

/// The PaX2 driver: the two-visit protocol, reported as a unified
/// [`ExecReport`] whose cluster meters cover exactly this execution. Takes
/// the deployment *shared*: any number of PaX2 runs may execute
/// concurrently, each with its own recorder and scratch slot.
pub(crate) fn run(
    deployment: &Deployment,
    query: &CompiledQuery,
    query_text: &str,
    options: &EvalOptions,
    epoch: u64,
) -> PaxResult<ExecReport> {
    let start = Instant::now();
    let mut ctx = ExecCtx::pinned(deployment, epoch, 0);
    let topology = ctx.topology();
    let slot = deployment.allocate_slots(1);
    let ft = topology.fragment_tree.clone();
    let analysis = if options.use_annotations {
        analyze_with_trie(query, &topology.path_trie(&deployment.root_label))
    } else {
        AnnotationAnalysis::keep_all(&ft)
    };
    let mut coordinator_ops: u64 = 0;
    let mut answers: Vec<AnswerItem> = Vec::new();

    // ------------------------------------------------------- Stage 1 (combined)
    let root_init: Vec<bool> = initial_vector(query, &deployment.root_label);
    let mut requests: BTreeMap<paxml_distsim::SiteId, ProtocolRequest> = BTreeMap::new();
    let mut finals_pending: Vec<FragmentId> = Vec::new();
    for (&site, fragments) in &ctx.group_by_site(analysis.relevant.iter().copied())? {
        let mut inputs = BTreeMap::new();
        for &fragment in fragments {
            let init = if fragment == FragmentId::ROOT {
                InitVector::Exact(BitVector::from_bools(&root_init))
            } else if let Some(exact) = analysis.exact_init.get(&fragment) {
                InitVector::Exact(BitVector::from_bools(exact))
            } else {
                InitVector::Unknown
            };
            // Answers are certain after the combined pass only when both the
            // ancestor summary is exact *and* no qualifier can depend on a
            // missing sub-fragment — i.e. the query has no qualifiers at all.
            let collect_now = matches!(init, InitVector::Exact(_)) && !query.has_qualifiers();
            if !collect_now {
                finals_pending.push(fragment);
            }
            inputs.insert(
                fragment,
                CombinedFragmentInput {
                    init,
                    root_is_context: fragment == FragmentId::ROOT && !query.absolute,
                    collect_answers_now: collect_now,
                },
            );
        }
        requests.insert(
            site,
            ProtocolRequest::Combined(CombinedRequest {
                slot,
                query: query.clone(),
                fragments: inputs,
            }),
        );
    }
    let responses = ctx.round(requests)?;
    let mut roots: BTreeMap<FragmentId, QualVectors<PaxVar>> = BTreeMap::new();
    let mut virtuals: BTreeMap<FragmentId, CompactVector<PaxVar>> = BTreeMap::new();
    for response in responses.into_values() {
        let response = response.into_combined()?;
        roots.extend(response.roots);
        virtuals.extend(response.virtuals);
        answers.extend(response.answers);
    }

    // ------------------------------------------------------------ Coordinator
    let mut assignment = DenseAssignment::new(ft.len());
    if query.has_qualifiers() {
        coordinator_ops += (ft.len() * query.qvect_len()) as u64;
        unify_qualifiers(&ft, &roots, query.qvect_len(), &mut assignment);
    }

    // ----------------------------------------------------- Stage 2 (collection)
    if !finals_pending.is_empty() {
        coordinator_ops += (ft.len() * query.init_len()) as u64;
        unify_selection(&ft, &virtuals, &root_init, &mut assignment);
        let mut requests: BTreeMap<paxml_distsim::SiteId, ProtocolRequest> = BTreeMap::new();
        for (&site, fragments) in &ctx.group_by_site(finals_pending.iter().copied())? {
            let mut per_fragment = BTreeMap::new();
            for &fragment in fragments {
                per_fragment.insert(
                    fragment,
                    assignment.restrict_for_fragment(fragment, ft.children(fragment)),
                );
            }
            requests.insert(
                site,
                ProtocolRequest::Collect(CollectRequest { slot, fragments: per_fragment }),
            );
        }
        let responses = ctx.round(requests)?;
        for response in responses.into_values() {
            answers.extend(response.into_collect()?.answers);
        }
    }

    answers.sort();
    answers.dedup();
    Ok(ExecReport {
        algorithm: Algorithm::PaX2,
        annotations_used: options.use_annotations,
        mode: ExecMode::Query,
        queries: vec![QueryOutcome {
            query: query_text.to_string(),
            answers,
            fragments_evaluated: analysis.relevant.len(),
            coordinator_ops,
        }],
        update: None,
        fragments_total: ft.len(),
        stats: ctx.stats,
        coordinator_ops,
        elapsed: start.elapsed(),
        from_cache: false,
        epoch,
        placement_version: topology.version,
    })
}

//! The simulator side of the shared wire-layout byte vectors: for every
//! canonical case in `tests/common/wire_vectors.rs` (repo root), assert
//! that [`paxml_distsim::encoded_size`] charges exactly the number of
//! bytes the real codec produces. The mirror test in
//! `crates/wire/tests/byte_vectors.rs` checks the bytes themselves, so
//! the two charging models cannot drift apart on `Option`, empty-map and
//! varint-boundary edge cases without one of these files failing.

use std::collections::BTreeMap;

macro_rules! case {
    ($name:ident, $ty:ty, $value:expr, [$($byte:expr),* $(,)?]) => {
        #[test]
        fn $name() {
            let value: $ty = $value;
            let expected: &[u8] = &[$($byte),*];
            assert_eq!(
                paxml_distsim::encoded_size(&value),
                expected.len() as u64,
                "encoded_size disagrees with the canonical byte vector for {}",
                stringify!($name),
            );
        }
    };
}

include!("../../../tests/common/wire_vectors.rs");

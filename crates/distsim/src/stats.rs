//! Cost accounting: visits, messages, bytes, per-site computation.
//!
//! These counters are the measurable form of the paper's performance
//! guarantees:
//!
//! * **visits per site** — PaX3 must stay ≤ 3, PaX2 ≤ 2 (§3, §4);
//! * **network traffic** — `O(|Q|·|FT| + |ans|)` bytes (§3.4);
//! * **total computation** — sum of per-site work, comparable to the
//!   centralized algorithm;
//! * **parallel computation** — the maximum per-site work in each round,
//!   summed over rounds, which models the perceived latency.

use crate::site::SiteId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// Counters for one site.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SiteStats {
    /// Number of times the coordinator visited (sent work to) this site.
    pub visits: u32,
    /// Elementary operations the site performed (as reported by the tasks).
    pub ops: u64,
    /// Wall-clock time the site spent executing tasks, in nanoseconds.
    pub busy_nanos: u64,
    /// Bytes received from the coordinator.
    pub bytes_received: u64,
    /// Bytes sent back to the coordinator.
    pub bytes_sent: u64,
}

/// A snapshot of what one site currently stores: the storage-side input of
/// the rebalance planner, reported per site without charging the byte
/// meters (it is control-plane observability, not protocol traffic).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteLoadReport {
    /// The reporting site.
    pub site: SiteId,
    /// Per-fragment resident bytes (newest snapshots, canonical encoding).
    pub fragments: Vec<(paxml_fragment::FragmentId, u64)>,
}

impl SiteLoadReport {
    /// Number of distinct fragments resident at the site.
    pub fn fragment_count(&self) -> usize {
        self.fragments.len()
    }

    /// Total resident bytes across the site's fragments.
    pub fn resident_bytes(&self) -> u64 {
        self.fragments.iter().map(|(_, b)| b).sum()
    }
}

/// Counters for a whole distributed execution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClusterStats {
    /// Per-site counters.
    pub sites: BTreeMap<SiteId, SiteStats>,
    /// Number of coordinator→sites rounds (each round visits every selected
    /// site once, in parallel).
    pub rounds: u32,
    /// Number of individual messages exchanged (requests + responses).
    pub messages: u64,
    /// Wall-clock time of the whole execution as perceived by the
    /// coordinator: for every round, the slowest site determines the round's
    /// duration (parallel computation cost), in nanoseconds.
    pub parallel_nanos: u64,
    /// Elementary operations summed over all rounds and sites — the paper's
    /// *total computation* cost.
    pub total_ops: u64,
    /// Sum over rounds of the *maximum* per-site operations in that round —
    /// a deterministic, machine-independent model of the parallel
    /// computation cost `O(|Q|·max_Si |F_Si|)` (useful when the host has
    /// fewer cores than simulated sites and wall-clock times are noisy).
    pub parallel_ops: u64,
}

impl ClusterStats {
    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.sites.values().map(|s| s.bytes_received + s.bytes_sent).sum()
    }

    /// The maximum number of visits any single site received.
    pub fn max_visits_per_site(&self) -> u32 {
        self.sites.values().map(|s| s.visits).max().unwrap_or(0)
    }

    /// Total operations across sites (recomputed from the per-site counters;
    /// equals [`ClusterStats::total_ops`]).
    pub fn total_site_ops(&self) -> u64 {
        self.sites.values().map(|s| s.ops).sum()
    }

    /// Sum of per-site busy time — the "total computation time" plotted in
    /// the paper's Experiment 3 (Fig. 11).
    pub fn total_busy(&self) -> Duration {
        Duration::from_nanos(self.sites.values().map(|s| s.busy_nanos).sum())
    }

    /// The parallel (perceived) execution time — what Figures 9 and 10 plot.
    pub fn parallel_time(&self) -> Duration {
        Duration::from_nanos(self.parallel_nanos)
    }

    /// Record one site's participation in a round.
    pub fn record_site_work(
        &mut self,
        site: SiteId,
        ops: u64,
        busy: Duration,
        bytes_received: u64,
        bytes_sent: u64,
    ) {
        let entry = self.sites.entry(site).or_default();
        entry.visits += 1;
        entry.ops += ops;
        entry.busy_nanos += busy.as_nanos() as u64;
        entry.bytes_received += bytes_received;
        entry.bytes_sent += bytes_sent;
        self.messages += 2; // request + response
        self.total_ops += ops;
    }

    /// Record the completion of a parallel round whose slowest site took
    /// `slowest` wall-clock time and performed at most `max_ops` operations.
    pub fn record_round(&mut self, slowest: Duration, max_ops: u64) {
        self.rounds += 1;
        self.parallel_nanos += slowest.as_nanos() as u64;
        self.parallel_ops += max_ops;
    }

    /// The counters accumulated *since* `baseline` was captured — the
    /// per-execution view of a long-lived cluster whose counters only grow.
    ///
    /// Executions snapshot the cumulative stats before they start and report
    /// `current.delta_since(&baseline)`, so back-to-back executions over one
    /// deployment each report their own visits/bytes without anyone having
    /// to remember a `reset()` call. Sites with no activity since the
    /// baseline are omitted from the delta.
    pub fn delta_since(&self, baseline: &ClusterStats) -> ClusterStats {
        let mut delta = ClusterStats {
            sites: BTreeMap::new(),
            rounds: self.rounds.saturating_sub(baseline.rounds),
            messages: self.messages.saturating_sub(baseline.messages),
            parallel_nanos: self.parallel_nanos.saturating_sub(baseline.parallel_nanos),
            total_ops: self.total_ops.saturating_sub(baseline.total_ops),
            parallel_ops: self.parallel_ops.saturating_sub(baseline.parallel_ops),
        };
        for (site, s) in &self.sites {
            let before = baseline.sites.get(site).cloned().unwrap_or_default();
            let d = SiteStats {
                visits: s.visits.saturating_sub(before.visits),
                ops: s.ops.saturating_sub(before.ops),
                busy_nanos: s.busy_nanos.saturating_sub(before.busy_nanos),
                bytes_received: s.bytes_received.saturating_sub(before.bytes_received),
                bytes_sent: s.bytes_sent.saturating_sub(before.bytes_sent),
            };
            if d != SiteStats::default() {
                delta.sites.insert(*site, d);
            }
        }
        delta
    }

    /// Merge the counters of another execution into this one (used when an
    /// algorithm is composed of several phases measured separately).
    pub fn merge(&mut self, other: &ClusterStats) {
        for (site, s) in &other.sites {
            let entry = self.sites.entry(*site).or_default();
            entry.visits += s.visits;
            entry.ops += s.ops;
            entry.busy_nanos += s.busy_nanos;
            entry.bytes_received += s.bytes_received;
            entry.bytes_sent += s.bytes_sent;
        }
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.parallel_nanos += other.parallel_nanos;
        self.total_ops += other.total_ops;
        self.parallel_ops += other.parallel_ops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_site_work_accumulates() {
        let mut s = ClusterStats::default();
        s.record_site_work(SiteId(0), 100, Duration::from_micros(5), 64, 32);
        s.record_site_work(SiteId(0), 50, Duration::from_micros(3), 10, 20);
        s.record_site_work(SiteId(1), 10, Duration::from_micros(1), 5, 5);
        assert_eq!(s.sites[&SiteId(0)].visits, 2);
        assert_eq!(s.sites[&SiteId(0)].ops, 150);
        assert_eq!(s.sites[&SiteId(1)].visits, 1);
        assert_eq!(s.max_visits_per_site(), 2);
        assert_eq!(s.total_ops, 160);
        assert_eq!(s.total_site_ops(), 160);
        assert_eq!(s.total_bytes(), 64 + 32 + 10 + 20 + 5 + 5);
        assert_eq!(s.messages, 6);
    }

    #[test]
    fn rounds_accumulate_parallel_time() {
        let mut s = ClusterStats::default();
        s.record_round(Duration::from_millis(2), 10);
        s.record_round(Duration::from_millis(3), 20);
        assert_eq!(s.rounds, 2);
        assert_eq!(s.parallel_time(), Duration::from_millis(5));
        assert_eq!(s.parallel_ops, 30);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = ClusterStats::default();
        a.record_site_work(SiteId(0), 10, Duration::from_micros(1), 1, 1);
        a.record_round(Duration::from_micros(1), 10);
        let mut b = ClusterStats::default();
        b.record_site_work(SiteId(0), 5, Duration::from_micros(2), 2, 2);
        b.record_site_work(SiteId(2), 7, Duration::from_micros(3), 3, 3);
        b.record_round(Duration::from_micros(3), 7);
        a.merge(&b);
        assert_eq!(a.sites[&SiteId(0)].visits, 2);
        assert_eq!(a.sites[&SiteId(0)].ops, 15);
        assert_eq!(a.sites[&SiteId(2)].ops, 7);
        assert_eq!(a.rounds, 2);
        assert_eq!(a.total_ops, 22);
        assert_eq!(a.parallel_ops, 17);
    }

    #[test]
    fn delta_since_reports_only_the_new_work() {
        let mut s = ClusterStats::default();
        s.record_site_work(SiteId(0), 100, Duration::from_micros(5), 64, 32);
        s.record_round(Duration::from_micros(5), 100);
        let baseline = s.clone();
        s.record_site_work(SiteId(0), 40, Duration::from_micros(2), 8, 8);
        s.record_site_work(SiteId(1), 10, Duration::from_micros(1), 4, 4);
        s.record_round(Duration::from_micros(2), 40);

        let delta = s.delta_since(&baseline);
        assert_eq!(delta.sites[&SiteId(0)].visits, 1);
        assert_eq!(delta.sites[&SiteId(0)].ops, 40);
        assert_eq!(delta.sites[&SiteId(1)].visits, 1);
        assert_eq!(delta.rounds, 1);
        assert_eq!(delta.total_ops, 50);
        assert_eq!(delta.total_bytes(), 8 + 8 + 4 + 4);
        assert_eq!(delta.max_visits_per_site(), 1);

        // A delta against itself is empty, including the per-site map.
        let idle = s.delta_since(&s.clone());
        assert!(idle.sites.is_empty());
        assert_eq!(idle.rounds, 0);
    }

    #[test]
    fn empty_stats_have_sane_defaults() {
        let s = ClusterStats::default();
        assert_eq!(s.max_visits_per_site(), 0);
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.parallel_time(), Duration::ZERO);
    }
}

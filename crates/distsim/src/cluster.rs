//! The simulated cluster: sites, fragment placement, and the coordinator's
//! visit primitive — callable from any number of coordinator threads at
//! once.
//!
//! The paper's setting is a coordinator site `S_Q` plus a number of sites
//! each holding one or more fragments, communicating over a network. This
//! module reproduces that setting on one machine:
//!
//! * each **round** ([`Cluster::round`]) models the coordinator visiting a
//!   subset of the sites in parallel — every selected site runs the supplied
//!   task on its own long-lived worker thread against its local fragments
//!   and scratch state;
//! * rounds take `&self`: a cluster is `Sync`, and **concurrent rounds from
//!   different coordinator threads are safe** — each round collects its
//!   responses over a private channel, sites serialize overlapping visits on
//!   their own mutex, and per-execution state is kept apart by caller-owned
//!   scratch *slots* ([`Cluster::allocate_slots`]);
//! * the worker threads form a **persistent per-site pool**: they are
//!   spawned once per cluster (lazily, on the first parallel round) and fed
//!   jobs over channels, so thread setup cost does not scale with
//!   `rounds × sites` the way the earlier thread-per-site-per-round design
//!   did — a difference that compounds under batch workloads;
//! * every request and response is measured with the byte-counting
//!   serializer, so network traffic is accounted exactly;
//! * cost accounting is **recorder-threaded**: [`Cluster::round_recorded`]
//!   writes each round's meters both into the cluster's cumulative
//!   [`ClusterStats`] (snapshot via [`Cluster::stats`]) *and* into a
//!   caller-owned per-execution recorder, so concurrent executions each see
//!   exactly their own visits/bytes/ops without racing `delta_since`
//!   snapshots of a shared counter;
//! * per-round wall-clock cost is the **slowest** site's task time (plus the
//!   configurable per-round network latency), modelling the parallel
//!   computation cost of §3.4; per-site busy time accumulates into the total
//!   computation cost.
//!
//! ```
//! use paxml_distsim::{Cluster, Placement};
//! use paxml_fragment::strategy::cut_children_of_root;
//! use paxml_xml::TreeBuilder;
//!
//! let tree = TreeBuilder::new("sites")
//!     .open("site").leaf("person", "p1").close()
//!     .open("site").leaf("person", "p2").close()
//!     .open("site").leaf("person", "p3").close()
//!     .build();
//! let fragmented = cut_children_of_root(&tree).unwrap();
//! let cluster = Cluster::new(&fragmented, 2, Placement::RoundRobin);
//!
//! // One round: ask every occupied site how many nodes it stores. Each
//! // site runs the task on its own worker thread; the cluster accounts one
//! // visit per site and the exact request/response bytes.
//! let responses = cluster.broadcast((), |site, ()| site.cumulative_size() as u64);
//! let total: u64 = responses.values().sum();
//! assert_eq!(total as usize, fragmented.total_real_nodes());
//! assert_eq!(cluster.stats().rounds, 1);
//! assert_eq!(cluster.stats().max_visits_per_site(), 1);
//! assert!(cluster.stats().total_bytes() > 0);
//! ```

use crate::bytecount::encoded_size;
use crate::fault::{FaultPlan, ReplicaSet};
use crate::site::{SiteId, SiteLocal};
use crate::stats::ClusterStats;
use paxml_fragment::{FragmentId, FragmentedTree};
use serde::Serialize;
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How fragments are placed onto sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Fragment `F_i` goes to site `S_{i mod site_count}` — the placement
    /// used by Experiment 1 (one fragment per machine when
    /// `site_count >= fragment_count`).
    RoundRobin,
    /// Every fragment on site `S0` (degenerate single-site deployment, the
    /// first iteration of Experiment 1).
    SingleSite,
}

/// What a worker reports back to the coordinator after running one job.
struct RoundOutcome {
    site: SiteId,
    /// The type-erased response (downcast by [`Cluster::round`], which knows
    /// the concrete type).
    response: Box<dyn Any + Send>,
    /// Encoded size of the response, measured site-side before erasure.
    response_bytes: u64,
    ops: u64,
    busy: Duration,
}

/// What a round collects per site: the outcome, or the payload of a
/// panicking task (re-raised on that round's coordinator thread so a faulty
/// task crashes its round immediately instead of hanging it).
type WorkerResult = Result<RoundOutcome, Box<dyn Any + Send>>;

/// A job shipped to a site's worker thread. The job runs the site task,
/// catches any panic, and ships the result back on the channel of the round
/// that posted it — workers themselves are round-agnostic, which is what
/// lets rounds from different coordinator threads overlap without their
/// responses crossing.
type Job = Box<dyn FnOnce(&mut SiteLocal) + Send>;

/// The persistent per-site worker threads plus their job channels.
struct WorkerPool {
    job_senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn spawn(sites: &[Arc<Mutex<SiteLocal>>]) -> Self {
        let mut job_senders = Vec::with_capacity(sites.len());
        let mut handles = Vec::with_capacity(sites.len());
        for (index, site) in sites.iter().enumerate() {
            let (job_tx, job_rx) = channel::<Job>();
            let site = Arc::clone(site);
            let handle = std::thread::Builder::new()
                .name(format!("paxml-site-{index}"))
                .spawn(move || {
                    // The worker owns nothing but a channel end and a handle
                    // on its site; it idles on `recv` between rounds and
                    // exits when the cluster drops its job sender. Jobs never
                    // unwind (each catches its own panic before the site
                    // guard drops, so the mutex is not poisoned) and deliver
                    // their outcome to their round's private channel.
                    while let Ok(job) = job_rx.recv() {
                        let mut guard =
                            site.lock().expect("a site task panicked while holding the site");
                        job(&mut guard);
                    }
                })
                .expect("spawning a site worker thread");
            job_senders.push(job_tx);
            handles.push(handle);
        }
        WorkerPool { job_senders, handles }
    }
}

/// The simulated cluster.
///
/// `Cluster` is `Sync`: rounds take `&self` and may be issued from many
/// coordinator threads concurrently (see the module docs for how responses
/// and meters are kept apart). Configuration fields (`sequential`,
/// `round_latency`, `site_delay`) are plain data set up before the cluster
/// is shared.
pub struct Cluster {
    sites: Vec<Arc<Mutex<SiteLocal>>>,
    assignment: BTreeMap<FragmentId, ReplicaSet>,
    /// The persistent worker pool (spawned lazily on the first round that
    /// actually runs in parallel; `sequential` clusters never spawn it).
    pool: OnceLock<WorkerPool>,
    /// Extra latency charged to every round, modelling one network round
    /// trip between the coordinator and the sites.
    pub round_latency: Duration,
    /// Artificial per-site slow-down used by failure/skew-injection tests.
    pub site_delay: BTreeMap<SiteId, Duration>,
    /// Run rounds sequentially (deterministic debugging) instead of on the
    /// per-site worker pool.
    pub sequential: bool,
    /// Cumulative cost counters, updated once per round under a lock so a
    /// [`Cluster::stats`] snapshot never observes a torn round.
    stats: Mutex<ClusterStats>,
    /// Source of unique scratch slots (see [`Cluster::allocate_slots`]).
    next_slot: AtomicUsize,
    /// The installed fault schedule, if any (interior mutability so a test
    /// can arm faults on an already-shared cluster).
    fault: Mutex<Option<FaultPlan>>,
    /// Round counter indexing the fault plan: advanced once per attempted
    /// round while a plan is installed, so the same workload replays the
    /// same fault sequence.
    fault_tick: AtomicU64,
}

impl Cluster {
    /// Build a cluster with `site_count` sites and distribute the fragments
    /// of `fragmented` according to `placement` (one copy each).
    pub fn new(fragmented: &FragmentedTree, site_count: usize, placement: Placement) -> Self {
        Self::replicated(fragmented, site_count, placement, 1)
    }

    /// Build a cluster where every fragment lives on `replication` sites:
    /// the primary chosen by `placement`, plus secondaries on the next sites
    /// round-robin (`(primary + k) mod site_count`) — which also guarantees
    /// copies are never co-located. `replication` is clamped to
    /// `site_count`.
    pub fn replicated(
        fragmented: &FragmentedTree,
        site_count: usize,
        placement: Placement,
        replication: usize,
    ) -> Self {
        let site_count = site_count.max(1);
        let copies = replication.clamp(1, site_count);
        let mut assignment = BTreeMap::new();
        for fragment in &fragmented.fragments {
            let primary = match placement {
                Placement::RoundRobin => fragment.id.index() % site_count,
                Placement::SingleSite => 0,
            };
            let set = ReplicaSet::of((0..copies).map(|k| SiteId((primary + k) % site_count)));
            assignment.insert(fragment.id, set);
        }
        Self::with_replicas(fragmented, site_count, assignment)
    }

    /// Build a cluster with an explicit fragment→site assignment (fragments
    /// not mentioned default to `S0`; each fragment gets one copy).
    pub fn with_assignment(
        fragmented: &FragmentedTree,
        site_count: usize,
        assignment: BTreeMap<FragmentId, SiteId>,
    ) -> Self {
        let replicas =
            assignment.into_iter().map(|(f, site)| (f, ReplicaSet::solo(site))).collect();
        Self::with_replicas(fragmented, site_count, replicas)
    }

    /// Build a cluster with an explicit fragment→replica-set assignment
    /// (fragments not mentioned default to a solo copy on `S0`; site indices
    /// beyond the last site are clamped to it). Every replica site stores a
    /// full copy of the fragment.
    pub fn with_replicas(
        fragmented: &FragmentedTree,
        site_count: usize,
        assignment: BTreeMap<FragmentId, ReplicaSet>,
    ) -> Self {
        let site_count = site_count.max(1);
        let mut sites: Vec<SiteLocal> =
            (0..site_count).map(|i| SiteLocal::new(SiteId(i))).collect();
        let mut final_assignment = BTreeMap::new();
        for fragment in &fragmented.fragments {
            let set = assignment.get(&fragment.id).cloned().unwrap_or(ReplicaSet::solo(SiteId(0)));
            // Clamp out-of-range members; `of` re-dedupes whatever collides.
            let set =
                ReplicaSet::of(set.sites().iter().map(|s| SiteId(s.index().min(site_count - 1))));
            for &site in set.sites() {
                sites[site.index()].add_fragment(fragment.clone());
            }
            final_assignment.insert(fragment.id, set);
        }
        Cluster {
            sites: sites.into_iter().map(|s| Arc::new(Mutex::new(s))).collect(),
            assignment: final_assignment,
            pool: OnceLock::new(),
            round_latency: Duration::ZERO,
            site_delay: BTreeMap::new(),
            sequential: false,
            stats: Mutex::new(ClusterStats::default()),
            next_slot: AtomicUsize::new(0),
            fault: Mutex::new(None),
            fault_tick: AtomicU64::new(0),
        }
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// The primary site storing a fragment (the first replica).
    pub fn site_of(&self, fragment: FragmentId) -> SiteId {
        self.replicas_of(fragment).primary()
    }

    /// All sites storing a fragment, primary first.
    pub fn replicas_of(&self, fragment: FragmentId) -> ReplicaSet {
        self.assignment
            .get(&fragment)
            .cloned()
            .expect("every fragment was assigned to a replica set at construction")
    }

    /// The full fragment→replica-set assignment.
    pub fn assignment(&self) -> &BTreeMap<FragmentId, ReplicaSet> {
        &self.assignment
    }

    /// The fragments stored at a given site.
    pub fn fragments_at(&self, site: SiteId) -> Vec<FragmentId> {
        self.lock_site(site).fragment_ids()
    }

    /// The set of *primary* sites of the given fragments.
    pub fn sites_holding(&self, fragments: &[FragmentId]) -> BTreeSet<SiteId> {
        fragments.iter().map(|f| self.site_of(*f)).collect()
    }

    /// All sites that hold at least one fragment copy.
    pub fn occupied_sites(&self) -> BTreeSet<SiteId> {
        self.assignment.values().flat_map(|set| set.sites().iter().copied()).collect()
    }

    /// Install (or clear) the deterministic fault schedule consulted before
    /// every subsequent round. Interior mutability: faults can be armed on a
    /// cluster already shared behind an `Arc`.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        *self.fault.lock().expect("the fault-plan lock is never poisoned") = plan;
    }

    /// A snapshot of the installed fault schedule, if any.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault.lock().expect("the fault-plan lock is never poisoned").clone()
    }

    /// Advance and return the round tick used to index the fault plan. The
    /// transport calls this once per attempted round while a plan is
    /// installed.
    pub fn next_fault_tick(&self) -> u64 {
        self.fault_tick.fetch_add(1, Ordering::Relaxed)
    }

    /// The round tick the *next* round will be indexed at, without
    /// advancing the clock (probes peek; only rounds tick).
    pub fn current_fault_tick(&self) -> u64 {
        self.fault_tick.load(Ordering::Relaxed)
    }

    /// The cumulative data size of the largest site, `max_Si |F_Si|` — the
    /// quantity the paper's parallel-computation bound is stated in.
    pub fn max_cumulative_site_size(&self) -> usize {
        self.sites.iter().map(|s| Self::lock(s).cumulative_size()).max().unwrap_or(0)
    }

    /// A consistent snapshot of the cumulative cost counters since the
    /// cluster started. Counters are committed whole-round under a lock, so
    /// two snapshots bracketing any set of (even concurrent) executions
    /// yield an accurate [`ClusterStats::delta_since`]. Per-execution meters
    /// come from the recorder threaded through
    /// [`Cluster::round_recorded`] instead.
    pub fn stats(&self) -> ClusterStats {
        self.stats.lock().expect("the stats lock is never poisoned").clone()
    }

    /// Hand out `n` scratch *slots* no other caller will ever receive.
    ///
    /// A slot is the namespace key executions use to keep their per-site
    /// scratch state apart (candidate answer sets between the two PaX
    /// visits, per-query batch state). Executions that may run concurrently
    /// over one cluster must not share slots; allocating is a single atomic
    /// add. Returns the first slot of the contiguous block `[base, base+n)`.
    pub fn allocate_slots(&self, n: usize) -> usize {
        self.next_slot.fetch_add(n.max(1), Ordering::Relaxed)
    }

    /// Reset all scratch state and statistics (between query executions).
    pub fn reset(&self) {
        for site in &self.sites {
            Self::lock(site).clear_scratch();
        }
        *self.stats.lock().expect("the stats lock is never poisoned") = ClusterStats::default();
    }

    /// Direct read-only access to a site, for assertions in tests. Algorithm
    /// code must not use this to bypass the messaging layer. The guard must
    /// be dropped before the next round starts, or the round deadlocks.
    pub fn inspect_site(&self, site: SiteId) -> MutexGuard<'_, SiteLocal> {
        self.lock_site(site)
    }

    fn lock_site(&self, site: SiteId) -> MutexGuard<'_, SiteLocal> {
        Self::lock(&self.sites[site.index()])
    }

    fn lock(site: &Arc<Mutex<SiteLocal>>) -> MutexGuard<'_, SiteLocal> {
        site.lock().expect("a site task panicked while holding the site")
    }

    /// One coordinator round with per-execution accounting: send each
    /// request to its site, run `task` there (in parallel across the
    /// persistent site workers), collect the responses, and record the
    /// round's meters both into the cluster's cumulative counters and into
    /// the caller's `recorder`.
    ///
    /// Every targeted site is *visited* exactly once per round regardless of
    /// how many fragments it stores, which is precisely how the paper counts
    /// visits. Rounds issued concurrently from different threads are safe:
    /// overlapping visits to one site serialize on that site's lock, and
    /// each round's responses travel over a channel private to the round.
    pub fn round_recorded<Req, Resp, F>(
        &self,
        recorder: &mut ClusterStats,
        requests: BTreeMap<SiteId, Req>,
        task: F,
    ) -> BTreeMap<SiteId, Resp>
    where
        Req: Serialize + Send + 'static,
        Resp: Serialize + Send + 'static,
        F: Fn(&mut SiteLocal, Req) -> Resp + Send + Sync + 'static,
    {
        if requests.is_empty() {
            return BTreeMap::new();
        }

        // Measure request sizes before moving them into the site jobs.
        let request_bytes: BTreeMap<SiteId, u64> =
            requests.iter().map(|(s, r)| (*s, encoded_size(r))).collect();

        for site in requests.keys() {
            assert!(site.index() < self.sites.len(), "request addressed to unknown site {site}");
        }

        let task = Arc::new(task);
        let make_job = |site_id: SiteId, req: Req, task: Arc<F>, delay: Option<Duration>| {
            move |site: &mut SiteLocal| -> RoundOutcome {
                let ops_before = site.ops();
                let start = Instant::now();
                let response = task(site, req);
                let mut busy = start.elapsed();
                if let Some(extra) = delay {
                    busy += extra;
                }
                RoundOutcome {
                    site: site_id,
                    response_bytes: encoded_size(&response),
                    response: Box::new(response),
                    ops: site.ops() - ops_before,
                    busy,
                }
            }
        };

        let mut outcomes: Vec<RoundOutcome> = Vec::with_capacity(requests.len());
        if self.sequential || requests.len() == 1 {
            // Inline execution on the coordinator thread: deterministic, and
            // avoids a pool wake-up when only one site is involved. Panics
            // are caught and re-raised after the site guard is released, so
            // a faulty task cannot poison the site mutex.
            for (site_id, req) in requests {
                let delay = self.site_delay.get(&site_id).copied();
                let job = make_job(site_id, req, Arc::clone(&task), delay);
                let mut guard = self.lock_site(site_id);
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(&mut guard)));
                drop(guard);
                match outcome {
                    Ok(outcome) => outcomes.push(outcome),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        } else {
            let pool = self.pool.get_or_init(|| WorkerPool::spawn(&self.sites));
            // A channel *per round*: results of overlapping rounds cannot
            // cross, because each job carries its own round's sender.
            let (results_tx, results_rx) = channel::<WorkerResult>();
            let expected = requests.len();
            for (site_id, req) in requests {
                let delay = self.site_delay.get(&site_id).copied();
                let inner = make_job(site_id, req, Arc::clone(&task), delay);
                let results_tx = results_tx.clone();
                let job: Job = Box::new(move |site: &mut SiteLocal| {
                    // The catch happens before the worker's site guard
                    // drops, so the mutex is not poisoned; if the round's
                    // coordinator is already gone the send result is moot.
                    let outcome =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| inner(site)));
                    let _ = results_tx.send(outcome);
                });
                pool.job_senders[site_id.index()].send(job).expect("site worker thread is alive");
            }
            drop(results_tx);
            // Drain *every* targeted site before acting on a failure, so a
            // caught round leaves no job of its own still running when the
            // caller observes the panic.
            let mut panicked: Option<Box<dyn Any + Send>> = None;
            for _ in 0..expected {
                match results_rx.recv().expect("site worker thread is alive") {
                    Ok(outcome) => outcomes.push(outcome),
                    Err(payload) => panicked = Some(payload),
                }
            }
            if let Some(payload) = panicked {
                // Re-raise a site task's panic on the round's coordinator
                // thread so a faulty task crashes the round loudly (matching
                // the pre-pool scoped-thread behaviour) instead of hanging
                // it.
                std::panic::resume_unwind(payload);
            }
        }

        // Account the round: per-execution into the recorder, cumulative
        // under the stats lock (one commit per round, so snapshots never see
        // half a round).
        let mut responses = BTreeMap::new();
        let mut slowest = Duration::ZERO;
        let mut max_ops = 0u64;
        let mut cumulative = self.stats.lock().expect("the stats lock is never poisoned");
        for outcome in outcomes {
            let req_bytes = request_bytes.get(&outcome.site).copied().unwrap_or(0);
            for target in [&mut *cumulative, &mut *recorder] {
                target.record_site_work(
                    outcome.site,
                    outcome.ops,
                    outcome.busy,
                    req_bytes,
                    outcome.response_bytes,
                );
            }
            if outcome.busy > slowest {
                slowest = outcome.busy;
            }
            if outcome.ops > max_ops {
                max_ops = outcome.ops;
            }
            let response = *outcome
                .response
                .downcast::<Resp>()
                .expect("a round's responses all have the task's response type");
            responses.insert(outcome.site, response);
        }
        cumulative.record_round(slowest + self.round_latency, max_ops);
        recorder.record_round(slowest + self.round_latency, max_ops);
        responses
    }

    /// [`Cluster::round_recorded`] without a per-execution recorder (the
    /// meters still accumulate into the cluster's cumulative counters).
    pub fn round<Req, Resp, F>(
        &self,
        requests: BTreeMap<SiteId, Req>,
        task: F,
    ) -> BTreeMap<SiteId, Resp>
    where
        Req: Serialize + Send + 'static,
        Resp: Serialize + Send + 'static,
        F: Fn(&mut SiteLocal, Req) -> Resp + Send + Sync + 'static,
    {
        let mut scratch = ClusterStats::default();
        self.round_recorded(&mut scratch, requests, task)
    }

    /// Convenience wrapper: visit *every occupied site* with the same
    /// (cloneable) request.
    pub fn broadcast<Req, Resp, F>(&self, request: Req, task: F) -> BTreeMap<SiteId, Resp>
    where
        Req: Serialize + Send + Clone + 'static,
        Resp: Serialize + Send + 'static,
        F: Fn(&mut SiteLocal, Req) -> Resp + Send + Sync + 'static,
    {
        let mut scratch = ClusterStats::default();
        self.broadcast_recorded(&mut scratch, request, task)
    }

    /// [`Cluster::broadcast`] with per-execution accounting into `recorder`.
    pub fn broadcast_recorded<Req, Resp, F>(
        &self,
        recorder: &mut ClusterStats,
        request: Req,
        task: F,
    ) -> BTreeMap<SiteId, Resp>
    where
        Req: Serialize + Send + Clone + 'static,
        Resp: Serialize + Send + 'static,
        F: Fn(&mut SiteLocal, Req) -> Resp + Send + Sync + 'static,
    {
        let requests: BTreeMap<SiteId, Req> =
            self.occupied_sites().into_iter().map(|s| (s, request.clone())).collect();
        self.round_recorded(recorder, requests, task)
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            // Closing the job channels lets every worker fall out of its
            // receive loop; join so no thread outlives its cluster.
            drop(pool.job_senders);
            for handle in pool.handles {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxml_fragment::strategy::cut_children_of_root;
    use paxml_xml::TreeBuilder;

    fn fragmented() -> FragmentedTree {
        let tree = TreeBuilder::new("sites")
            .open("site")
            .leaf("person", "p1")
            .close()
            .open("site")
            .leaf("person", "p2")
            .close()
            .open("site")
            .leaf("person", "p3")
            .close()
            .build();
        cut_children_of_root(&tree).unwrap()
    }

    #[test]
    fn round_robin_placement_spreads_fragments() {
        let f = fragmented();
        let cluster = Cluster::new(&f, 2, Placement::RoundRobin);
        assert_eq!(cluster.site_count(), 2);
        assert_eq!(cluster.site_of(FragmentId(0)), SiteId(0));
        assert_eq!(cluster.site_of(FragmentId(1)), SiteId(1));
        assert_eq!(cluster.site_of(FragmentId(2)), SiteId(0));
        assert_eq!(cluster.fragments_at(SiteId(0)), vec![FragmentId(0), FragmentId(2)]);
        assert_eq!(cluster.occupied_sites().len(), 2);
    }

    #[test]
    fn single_site_placement_puts_everything_on_s0() {
        let f = fragmented();
        let cluster = Cluster::new(&f, 4, Placement::SingleSite);
        assert_eq!(cluster.occupied_sites(), std::iter::once(SiteId(0)).collect());
        assert_eq!(cluster.max_cumulative_site_size(), f.total_real_nodes());
    }

    #[test]
    fn explicit_assignment_is_respected_and_clamped() {
        let f = fragmented();
        let mut assignment = BTreeMap::new();
        assignment.insert(FragmentId(1), SiteId(1));
        assignment.insert(FragmentId(2), SiteId(99)); // clamped to the last site
        let cluster = Cluster::with_assignment(&f, 2, assignment);
        assert_eq!(cluster.site_of(FragmentId(0)), SiteId(0)); // default
        assert_eq!(cluster.site_of(FragmentId(1)), SiteId(1));
        assert_eq!(cluster.site_of(FragmentId(2)), SiteId(1));
    }

    #[test]
    fn replicated_placement_stores_every_copy_and_never_colocates() {
        let f = fragmented();
        let cluster = Cluster::replicated(&f, 3, Placement::RoundRobin, 2);
        for fragment in [FragmentId(0), FragmentId(1), FragmentId(2), FragmentId(3)] {
            let set = cluster.replicas_of(fragment);
            assert_eq!(set.len(), 2, "every fragment has two distinct copies");
            // The primary matches the unreplicated round-robin placement…
            assert_eq!(set.primary(), SiteId(fragment.index() % 3));
            assert_eq!(cluster.site_of(fragment), set.primary());
            // …and each replica site actually stores the fragment.
            for &site in set.sites() {
                assert!(cluster.fragments_at(site).contains(&fragment));
            }
        }
        assert_eq!(cluster.occupied_sites().len(), 3);
        // Replication clamps to the site count instead of wrapping into
        // duplicates.
        let full = Cluster::replicated(&f, 2, Placement::RoundRobin, 5);
        assert_eq!(full.replicas_of(FragmentId(0)).len(), 2);
    }

    #[test]
    fn fault_plan_is_armed_and_ticked_through_interior_mutability() {
        let f = fragmented();
        let cluster = Arc::new(Cluster::new(&f, 2, Placement::RoundRobin));
        assert!(cluster.fault_plan().is_none());
        let plan = FaultPlan::scripted(vec![crate::fault::FaultEvent {
            site: SiteId(1),
            from_round: 0,
            to_round: 1,
            kind: crate::fault::FaultKind::Kill,
        }]);
        cluster.set_fault_plan(Some(plan.clone()));
        assert_eq!(cluster.fault_plan(), Some(plan));
        assert_eq!(cluster.next_fault_tick(), 0);
        assert_eq!(cluster.next_fault_tick(), 1);
        cluster.set_fault_plan(None);
        assert!(cluster.fault_plan().is_none());
    }

    #[test]
    fn rounds_count_visits_messages_and_bytes() {
        let f = fragmented();
        let cluster = Cluster::new(&f, 3, Placement::RoundRobin);
        let responses = cluster.broadcast("how many nodes?".to_string(), |site, _req| {
            site.charge_ops(10);
            site.cumulative_size() as u64
        });
        assert_eq!(responses.len(), 3);
        let total: u64 = responses.values().sum();
        assert_eq!(total as usize, f.total_real_nodes());
        assert_eq!(cluster.stats().rounds, 1);
        assert_eq!(cluster.stats().max_visits_per_site(), 1);
        assert_eq!(cluster.stats().messages, 6);
        assert_eq!(cluster.stats().total_ops, 30);
        assert!(cluster.stats().total_bytes() > 0);

        // A second, targeted round visits only one site.
        let mut one = BTreeMap::new();
        one.insert(SiteId(1), 5u32);
        let responses = cluster.round(one, |site, factor| {
            site.charge_ops(1);
            site.cumulative_size() as u64 * factor as u64
        });
        assert_eq!(responses.len(), 1);
        assert_eq!(cluster.stats().rounds, 2);
        assert_eq!(cluster.stats().sites[&SiteId(1)].visits, 2);
        assert_eq!(cluster.stats().sites[&SiteId(0)].visits, 1);
    }

    #[test]
    fn recorder_sees_exactly_its_own_rounds() {
        let f = fragmented();
        let cluster = Cluster::new(&f, 3, Placement::RoundRobin);
        // Unrecorded background traffic.
        cluster.broadcast(0u8, |site, _| {
            site.charge_ops(5);
            0u8
        });
        let mut recorder = ClusterStats::default();
        cluster.broadcast_recorded(&mut recorder, 0u8, |site, _| {
            site.charge_ops(7);
            0u8
        });
        assert_eq!(recorder.rounds, 1);
        assert_eq!(recorder.total_ops, 21);
        assert_eq!(recorder.max_visits_per_site(), 1);
        // Cumulative counters saw both rounds.
        assert_eq!(cluster.stats().rounds, 2);
        assert_eq!(cluster.stats().total_ops, 36);
    }

    #[test]
    fn slot_allocation_never_repeats() {
        let f = fragmented();
        let cluster = Arc::new(Cluster::new(&f, 2, Placement::RoundRobin));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cluster = Arc::clone(&cluster);
                std::thread::spawn(move || {
                    (0..50).map(|_| cluster.allocate_slots(3)).collect::<Vec<usize>>()
                })
            })
            .collect();
        let mut seen = BTreeSet::new();
        for handle in handles {
            for base in handle.join().unwrap() {
                assert!(seen.insert(base), "slot base {base} handed out twice");
                assert_eq!(base % 3, 0);
            }
        }
    }

    #[test]
    fn sequential_and_parallel_rounds_agree() {
        let f = fragmented();
        let parallel = Cluster::new(&f, 3, Placement::RoundRobin);
        let mut sequential = Cluster::new(&f, 3, Placement::RoundRobin);
        sequential.sequential = true;
        let task = |site: &mut SiteLocal, _req: u8| site.fragment_ids().len() as u64;
        let a = parallel.broadcast(0u8, task);
        let b = sequential.broadcast(0u8, task);
        assert_eq!(a, b);
    }

    #[test]
    fn worker_pool_threads_persist_across_rounds() {
        let f = fragmented();
        let cluster = Cluster::new(&f, 3, Placement::RoundRobin);
        assert!(cluster.pool.get().is_none(), "pool is lazy");
        for round in 0..20 {
            let responses = cluster.broadcast(round as u32, |site, r| {
                site.charge_ops(1);
                r as u64 + site.id.index() as u64
            });
            assert_eq!(responses.len(), 3);
        }
        // Twenty multi-site rounds ran on the same three threads.
        let pool = cluster.pool.get().expect("pool spawned on first parallel round");
        assert_eq!(pool.handles.len(), 3);
        assert_eq!(cluster.stats().rounds, 20);
        assert_eq!(cluster.stats().total_ops, 60);
    }

    #[test]
    fn concurrent_rounds_do_not_cross_responses_or_tear_stats() {
        // Many coordinator threads hammer one shared cluster with rounds of
        // *different* response types; every thread must see exactly its own
        // responses (the per-round channel guarantee) and the cumulative
        // counters must equal the sum of all per-thread recorders.
        let f = fragmented();
        let cluster = Arc::new(Cluster::new(&f, 3, Placement::RoundRobin));
        let threads = 4u32;
        let rounds_per_thread = 25u32;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let cluster = Arc::clone(&cluster);
                std::thread::spawn(move || {
                    let mut recorder = ClusterStats::default();
                    for i in 0..rounds_per_thread {
                        if t % 2 == 0 {
                            let responses =
                                cluster.broadcast_recorded(&mut recorder, t, |site, req| {
                                    site.charge_ops(1);
                                    format!("t{req}-s{}", site.id.index())
                                });
                            assert_eq!(responses.len(), 3);
                            for (site, response) in &responses {
                                assert_eq!(response, &format!("t{t}-s{}", site.index()));
                            }
                        } else {
                            let responses =
                                cluster.broadcast_recorded(&mut recorder, i as u64, |site, req| {
                                    site.charge_ops(1);
                                    req * 1000 + site.id.index() as u64
                                });
                            assert_eq!(responses.len(), 3);
                            for (site, response) in &responses {
                                assert_eq!(*response, i as u64 * 1000 + site.index() as u64);
                            }
                        }
                    }
                    recorder
                })
            })
            .collect();
        let mut merged = ClusterStats::default();
        for handle in handles {
            merged.merge(&handle.join().unwrap());
        }
        let cumulative = cluster.stats();
        assert_eq!(cumulative.rounds, threads * rounds_per_thread);
        assert_eq!(cumulative.rounds, merged.rounds);
        assert_eq!(cumulative.total_ops, merged.total_ops);
        assert_eq!(cumulative.messages, merged.messages);
        for (site, stats) in &cumulative.sites {
            assert_eq!(stats.visits, merged.sites[site].visits);
            assert_eq!(stats.bytes_received, merged.sites[site].bytes_received);
            assert_eq!(stats.bytes_sent, merged.sites[site].bytes_sent);
        }
    }

    #[test]
    #[should_panic(expected = "task blew up")]
    fn a_panicking_site_task_crashes_the_round_not_hangs_it() {
        let f = fragmented();
        let cluster = Cluster::new(&f, 3, Placement::RoundRobin);
        cluster.broadcast(0u8, |site, _| {
            if site.id == SiteId(1) {
                panic!("task blew up");
            }
            0u8
        });
    }

    #[test]
    fn a_caught_panic_leaves_no_stale_outcomes_for_later_rounds() {
        let f = fragmented();
        let cluster = Cluster::new(&f, 3, Placement::RoundRobin);
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cluster.broadcast(0u8, |site, _| {
                if site.id == SiteId(2) {
                    panic!("task blew up");
                }
                0u8
            })
        }));
        assert!(boom.is_err());
        // The surviving sites' outcomes from the aborted round must not leak
        // into this one: a fresh round sees exactly its own responses, with
        // its own response type.
        let responses = cluster.broadcast(0u8, |site, _| format!("site {}", site.id.index()));
        assert_eq!(responses.len(), 3);
        assert_eq!(responses[&SiteId(1)], "site 1");
    }

    #[test]
    fn a_batch_round_panic_is_reraised_exactly_once_and_does_not_poison_later_rounds() {
        // Regression test for the worker-pool panic path: even when *several*
        // sites panic in the same (batch-style) round, the coordinator
        // re-raises exactly one panic, the site mutexes stay usable, and the
        // pool serves subsequent rounds with no stale outcomes.
        let f = fragmented();
        let cluster = Cluster::new(&f, 3, Placement::RoundRobin);

        let mut observed_panics = 0;
        for _ in 0..2 {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                cluster.broadcast(0u8, |site, _| {
                    if site.id != SiteId(0) {
                        panic!("site {} blew up", site.id);
                    }
                    0u8
                })
            }));
            if caught.is_err() {
                observed_panics += 1;
            }
        }
        // One panic per failing round — two sites panicking in one round must
        // not surface as two unwinds, and no unwind may leak into the second
        // catch block's round beyond its own.
        assert_eq!(observed_panics, 2);

        // The pool is intact: a healthy batch round over every site works,
        // sees only its own responses, and the per-site scratch state is
        // still writable (the mutexes were never poisoned).
        let responses = cluster.broadcast(0u8, |site, _| {
            site.put_scratch("ok", true);
            site.id.index() as u64
        });
        assert_eq!(responses.len(), 3);
        assert_eq!(responses[&SiteId(2)], 2);
        let ok = cluster.broadcast(0u8, |site, _| *site.scratch::<bool>("ok").unwrap());
        assert!(ok.values().all(|&b| b));
    }

    #[test]
    fn sequential_clusters_never_spawn_workers() {
        let f = fragmented();
        let mut cluster = Cluster::new(&f, 3, Placement::RoundRobin);
        cluster.sequential = true;
        for _ in 0..5 {
            cluster.broadcast(0u8, |_, _| 0u8);
        }
        assert!(cluster.pool.get().is_none());
        assert_eq!(cluster.stats().rounds, 5);
    }

    #[test]
    fn scratch_state_persists_across_rounds() {
        let f = fragmented();
        let cluster = Cluster::new(&f, 2, Placement::RoundRobin);
        cluster.broadcast(0u8, |site, _| {
            site.put_scratch("marker", site.id.index() as u64 + 100);
            0u8
        });
        let markers = cluster.broadcast(0u8, |site, _| *site.scratch::<u64>("marker").unwrap());
        assert_eq!(markers[&SiteId(0)], 100);
        assert_eq!(markers[&SiteId(1)], 101);
        cluster.reset();
        let cleared = cluster.broadcast(0u8, |site, _| site.scratch::<u64>("marker").is_none());
        assert!(cleared.values().all(|&b| b));
        assert_eq!(cluster.stats().rounds, 1); // reset cleared the earlier rounds
    }

    #[test]
    fn site_delay_inflates_parallel_time() {
        let f = fragmented();
        let mut cluster = Cluster::new(&f, 3, Placement::RoundRobin);
        cluster.site_delay.insert(SiteId(1), Duration::from_millis(5));
        cluster.broadcast(0u8, |_, _| 0u8);
        assert!(cluster.stats().parallel_time() >= Duration::from_millis(5));
    }

    #[test]
    fn round_latency_is_charged_per_round() {
        let f = fragmented();
        let mut cluster = Cluster::new(&f, 2, Placement::RoundRobin);
        cluster.round_latency = Duration::from_millis(2);
        cluster.broadcast(0u8, |_, _| 0u8);
        cluster.broadcast(0u8, |_, _| 0u8);
        assert!(cluster.stats().parallel_time() >= Duration::from_millis(4));
    }

    #[test]
    fn empty_round_is_a_no_op() {
        let f = fragmented();
        let cluster = Cluster::new(&f, 2, Placement::RoundRobin);
        let out: BTreeMap<SiteId, u8> = cluster.round(BTreeMap::<SiteId, u8>::new(), |_, r| r);
        assert!(out.is_empty());
        assert_eq!(cluster.stats().rounds, 0);
    }

    #[test]
    fn larger_responses_cost_more_bytes() {
        let f = fragmented();
        let small = Cluster::new(&f, 1, Placement::SingleSite);
        let large = Cluster::new(&f, 1, Placement::SingleSite);
        small.broadcast(0u8, |_, _| "x".to_string());
        large.broadcast(0u8, |_, _| "x".repeat(10_000));
        assert!(large.stats().total_bytes() > small.stats().total_bytes() + 9_000);
    }
}

//! Replica sets and the deterministic fault-injection plan.
//!
//! Two concerns live here because they are two halves of one failure model:
//!
//! * [`ReplicaSet`] — where a fragment lives when placement is *replicated*:
//!   an ordered, deduplicated list of sites, primary first. A replication
//!   factor of 1 degenerates to the old single-site placement, which is why
//!   a bare [`SiteId`] converts into a solo set.
//! * [`FaultPlan`] — a *scripted* schedule of per-site, per-round faults.
//!   Instead of killing processes (racy, irreproducible), the coordinator
//!   consults the plan before delivering each round: a site inside a fault
//!   window behaves dead ([`FaultKind::Kill`]), lossy ([`FaultKind::Drop`]),
//!   slow ([`FaultKind::Delay`]) or corrupt ([`FaultKind::Garble`]) — and
//!   *revives by schedule* when the window passes. The same plan over the
//!   same workload replays bit-identically on both transports.
//!
//! Rounds are counted by a per-transport tick (one per attempted round), so
//! fault windows are expressed in round numbers, not wall-clock time.

use crate::site::SiteId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Duration;

/// The ordered set of sites holding copies of one fragment.
///
/// Invariants (enforced by every constructor): non-empty, deduplicated,
/// order-preserving — the first entry is the **primary**, the replica a
/// healthy coordinator routes to, so fault-free meters are bit-identical to
/// unreplicated placement. Later entries are failover order.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ReplicaSet(Vec<SiteId>);

impl ReplicaSet {
    /// A single-copy set: the degenerate, unreplicated placement.
    pub fn solo(site: SiteId) -> Self {
        ReplicaSet(vec![site])
    }

    /// Build a set from an explicit site list, preserving order and
    /// dropping duplicates. Panics if `sites` is empty — a fragment with no
    /// placement is unroutable.
    pub fn of(sites: impl IntoIterator<Item = SiteId>) -> Self {
        let mut out: Vec<SiteId> = Vec::new();
        for site in sites {
            if !out.contains(&site) {
                out.push(site);
            }
        }
        assert!(!out.is_empty(), "a replica set cannot be empty");
        ReplicaSet(out)
    }

    /// The primary replica — where a healthy coordinator routes.
    pub fn primary(&self) -> SiteId {
        self.0[0]
    }

    /// All replicas, primary first.
    pub fn sites(&self) -> &[SiteId] {
        &self.0
    }

    /// Number of copies.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Always false — the constructors reject empty sets — but clippy wants
    /// `is_empty` next to `len`.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Does this set place a copy on `site`?
    pub fn contains(&self, site: SiteId) -> bool {
        self.0.contains(&site)
    }

    /// Replace the copy at `from` with one at `to` (a migration of one
    /// replica). No-op when `from` is absent; if `to` is already a member
    /// the `from` entry is simply dropped (the sets never hold duplicates).
    pub fn migrate(&mut self, from: SiteId, to: SiteId) {
        if let Some(position) = self.0.iter().position(|&s| s == from) {
            if self.0.contains(&to) {
                self.0.remove(position);
                assert!(!self.0.is_empty(), "a migration cannot empty a replica set");
            } else {
                self.0[position] = to;
            }
        }
    }
}

impl From<SiteId> for ReplicaSet {
    fn from(site: SiteId) -> Self {
        ReplicaSet::solo(site)
    }
}

impl fmt::Display for ReplicaSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, site) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{site}")?;
        }
        write!(f, "}}")
    }
}

/// What happens to a site inside a fault window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// The site is dead: requests addressed to it are not delivered and the
    /// round fails with an unreachable error. Transient — failover retries.
    Kill,
    /// Requests to the site take this much longer (the coordinator stalls
    /// for the duration before delivering the round).
    Delay(Duration),
    /// The request is silently lost: indistinguishable from [`Kill`] at the
    /// coordinator (no reply ever comes back, so the deadline fires).
    /// Transient.
    ///
    /// [`Kill`]: FaultKind::Kill
    Drop,
    /// The site answers, but its reply fails to decode. Surfaces as a
    /// protocol error — **permanent**, because a codec mismatch is a bug,
    /// not weather; retrying would re-read the same corruption.
    Garble,
}

/// One scheduled fault: `site` misbehaves as `kind` for every round tick in
/// `[from_round, to_round]` (inclusive). When the transport's round counter
/// passes `to_round` the site has *revived* — no explicit heal event exists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// The faulty site.
    pub site: SiteId,
    /// First round tick (inclusive) the fault is active.
    pub from_round: u64,
    /// Last round tick (inclusive) the fault is active.
    pub to_round: u64,
    /// What the fault does.
    pub kind: FaultKind,
}

/// A deterministic, replayable schedule of site faults.
///
/// The plan is consulted by the transport at the start of every round: for
/// each addressed site, the first event covering the current round tick
/// applies. The tick is a per-transport atomic counter incremented once per
/// attempted round, so the same workload issued in the same order replays
/// the same fault sequence — on the in-process simulator and over TCP alike.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An explicit, hand-written schedule.
    pub fn scripted(events: Vec<FaultEvent>) -> Self {
        FaultPlan { events }
    }

    /// A seeded pseudo-random schedule: `count` kill windows of
    /// `window_len` rounds each, spread over `sites` sites and the first
    /// `horizon` rounds. The same seed always yields the same plan (the
    /// generator is a self-contained splitmix64, so the plan does not
    /// depend on any global RNG state).
    pub fn random_kills(seed: u64, sites: usize, horizon: u64, count: usize, window: u64) -> Self {
        let mut state = seed;
        let mut next = move || {
            // splitmix64: tiny, seedable, and good enough to spread windows.
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut events = Vec::with_capacity(count);
        for _ in 0..count {
            let site = SiteId((next() % sites.max(1) as u64) as usize);
            let from = next() % horizon.max(1);
            events.push(FaultEvent {
                site,
                from_round: from,
                to_round: from + window,
                kind: FaultKind::Kill,
            });
        }
        FaultPlan { events }
    }

    /// The scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The fault (if any) active for `site` at round `tick` — the first
    /// covering event wins.
    pub fn fault_at(&self, site: SiteId, tick: u64) -> Option<&FaultKind> {
        self.events
            .iter()
            .find(|e| e.site == site && e.from_round <= tick && tick <= e.to_round)
            .map(|e| &e.kind)
    }

    /// The first non-delay fault among `sites` at round `tick`, in site
    /// order — what the transport reports when it refuses to deliver the
    /// round. Delay faults never fail a round; collect them with
    /// [`FaultPlan::total_delay`] instead.
    pub fn first_failure(
        &self,
        tick: u64,
        sites: impl IntoIterator<Item = SiteId>,
    ) -> Option<(SiteId, FaultKind)> {
        for site in sites {
            match self.fault_at(site, tick) {
                Some(FaultKind::Delay(_)) | None => continue,
                Some(kind) => return Some((site, kind.clone())),
            }
        }
        None
    }

    /// The summed delay injected into a round addressing `sites` at `tick`.
    pub fn total_delay(&self, tick: u64, sites: impl IntoIterator<Item = SiteId>) -> Duration {
        let mut total = Duration::ZERO;
        for site in sites {
            if let Some(FaultKind::Delay(d)) = self.fault_at(site, tick) {
                total += *d;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_sets_dedupe_and_keep_primary_first() {
        let set = ReplicaSet::of([SiteId(2), SiteId(0), SiteId(2), SiteId(1)]);
        assert_eq!(set.sites(), &[SiteId(2), SiteId(0), SiteId(1)]);
        assert_eq!(set.primary(), SiteId(2));
        assert_eq!(set.len(), 3);
        assert!(set.contains(SiteId(0)));
        assert!(!set.contains(SiteId(3)));
        assert_eq!(set.to_string(), "{S2,S0,S1}");
        let solo: ReplicaSet = SiteId(4).into();
        assert_eq!(solo.sites(), &[SiteId(4)]);
    }

    #[test]
    fn migrate_replaces_one_copy_in_place() {
        let mut set = ReplicaSet::of([SiteId(0), SiteId(1)]);
        set.migrate(SiteId(0), SiteId(2));
        assert_eq!(set.sites(), &[SiteId(2), SiteId(1)]);
        // Migrating onto an existing member collapses the duplicate.
        set.migrate(SiteId(2), SiteId(1));
        assert_eq!(set.sites(), &[SiteId(1)]);
        // Migrating an absent copy is a no-op.
        set.migrate(SiteId(9), SiteId(0));
        assert_eq!(set.sites(), &[SiteId(1)]);
    }

    #[test]
    fn fault_windows_cover_inclusive_ranges_and_revive_after() {
        let plan = FaultPlan::scripted(vec![
            FaultEvent { site: SiteId(1), from_round: 2, to_round: 4, kind: FaultKind::Kill },
            FaultEvent {
                site: SiteId(0),
                from_round: 3,
                to_round: 3,
                kind: FaultKind::Delay(Duration::from_millis(7)),
            },
        ]);
        assert_eq!(plan.fault_at(SiteId(1), 1), None);
        assert_eq!(plan.fault_at(SiteId(1), 2), Some(&FaultKind::Kill));
        assert_eq!(plan.fault_at(SiteId(1), 4), Some(&FaultKind::Kill));
        assert_eq!(plan.fault_at(SiteId(1), 5), None, "the site revives by schedule");
        // Delay never fails a round; Kill does.
        assert_eq!(plan.first_failure(3, [SiteId(0)]), None);
        assert_eq!(
            plan.first_failure(3, [SiteId(0), SiteId(1)]),
            Some((SiteId(1), FaultKind::Kill))
        );
        assert_eq!(plan.total_delay(3, [SiteId(0), SiteId(1)]), Duration::from_millis(7));
        assert_eq!(plan.total_delay(9, [SiteId(0)]), Duration::ZERO);
    }

    #[test]
    fn random_kill_plans_are_seed_deterministic() {
        let a = FaultPlan::random_kills(42, 3, 100, 5, 4);
        let b = FaultPlan::random_kills(42, 3, 100, 5, 4);
        let c = FaultPlan::random_kills(43, 3, 100, 5, 4);
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, c, "different seeds diverge");
        assert_eq!(a.events().len(), 5);
        for event in a.events() {
            assert!(event.site.index() < 3);
            assert_eq!(event.to_round - event.from_round, 4);
            assert_eq!(event.kind, FaultKind::Kill);
        }
    }
}

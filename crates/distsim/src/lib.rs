//! # paxml-distsim — the simulated distributed substrate
//!
//! The paper evaluates its algorithms on ten LAN-connected machines; this
//! crate reproduces that setting in-process so the algorithmic guarantees
//! can be measured deterministically:
//!
//! * [`Cluster`] — a set of [`SiteLocal`] sites holding fragments, visited by
//!   a coordinator in parallel **rounds** served by a persistent pool of
//!   per-site worker threads (spawned once per cluster, fed over channels).
//!   Rounds take `&self`: a cluster is `Sync` and serves rounds from any
//!   number of coordinator threads at once, with per-execution meters
//!   threaded through a caller-owned [`ClusterStats`] recorder
//!   ([`Cluster::round_recorded`]) and per-execution site scratch kept
//!   apart by unique slots ([`Cluster::allocate_slots`]);
//! * request/response **byte accounting** via a counting serde serializer
//!   ([`encoded_size`]) — no bytes are charged that the algorithms did not
//!   actually put into a message;
//! * **visit counting** — the paper's "each site is visited at most
//!   three/two times" guarantee becomes an assertable number;
//! * **cost meters** — per-site elementary operations, per-site busy time,
//!   per-round parallel time, modelling the paper's total and parallel
//!   computation costs.
//!
//! The algorithms themselves (PaX3, PaX2, the baselines) live in
//! `paxml-core`; this crate deliberately knows nothing about XPath.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod bytecount;
mod cluster;
mod fault;
mod site;
mod stats;

pub use bytecount::encoded_size;
pub use cluster::{Cluster, Placement};
pub use fault::{FaultEvent, FaultKind, FaultPlan, ReplicaSet};
pub use site::{SiteId, SiteLocal, LATEST_EPOCH};
pub use stats::{ClusterStats, SiteLoadReport, SiteStats};

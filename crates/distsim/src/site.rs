//! A simulated site: the fragments it stores plus scratch state kept between
//! visits.
//!
//! Fragment storage is **epoch-versioned**: a site keeps, per fragment, a
//! short list of immutable snapshots tagged with the update epoch that
//! installed them. A visit pinned to epoch `e` reads the newest snapshot
//! installed at or before `e`, so an update round building epoch `e+1` never
//! disturbs readers still executing against epoch `e`. Old snapshots are
//! dropped by [`SiteLocal::retire_below`] once the coordinator proves no
//! in-flight execution can still pin them.

use paxml_fragment::{Fragment, FragmentId};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// The epoch sentinel that always resolves to a fragment's newest snapshot.
/// Drivers running outside an epoch-pinned server (the deprecated
/// free-function API) read and write at this epoch: reads see the latest
/// version and updates replace it in place, which reproduces the historical
/// unversioned semantics exactly.
pub const LATEST_EPOCH: u64 = u64::MAX;

/// Identifier of a site (`S0`, `S1`, … in the paper's figures).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SiteId(pub usize);

impl SiteId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// The state a site keeps locally.
///
/// Besides its fragments, a site may keep arbitrary *scratch state* between
/// visits — e.g. the per-node qualifier vectors computed during Stage 1 of
/// PaX3, which Stage 2 reads on the next visit, or the candidate-answer sets
/// that Stage 3 resolves. The scratch store is keyed by string and typed via
/// downcasting, so the algorithm crates can stash whatever they need without
/// this crate knowing their types.
pub struct SiteLocal {
    /// This site's id.
    pub id: SiteId,
    /// Per-fragment version lists, sorted by install epoch (ascending).
    /// Every list is non-empty; the snapshots are shared `Arc`s so reading
    /// a version never copies the tree.
    versions: BTreeMap<FragmentId, Vec<(u64, Arc<Fragment>)>>,
    scratch: HashMap<String, Box<dyn Any + Send>>,
    ops: u64,
}

impl SiteLocal {
    /// Create an empty site.
    pub fn new(id: SiteId) -> Self {
        SiteLocal { id, versions: BTreeMap::new(), scratch: HashMap::new(), ops: 0 }
    }

    /// Store a fragment at this site as the epoch-0 snapshot (the initial
    /// deployment), dropping any previous versions of the same fragment.
    pub fn add_fragment(&mut self, fragment: Fragment) {
        self.versions.insert(fragment.id, vec![(0, Arc::new(fragment))]);
    }

    /// The snapshot of a fragment a reader pinned to `epoch` sees: the
    /// newest version installed at or before `epoch`. With
    /// [`LATEST_EPOCH`] this is simply the newest version.
    pub fn fragment_at(&self, fragment: FragmentId, epoch: u64) -> Option<Arc<Fragment>> {
        let versions = self.versions.get(&fragment)?;
        versions.iter().rev().find(|(e, _)| *e <= epoch).map(|(_, f)| Arc::clone(f))
    }

    /// The snapshot an update building `epoch` starts from: the newest
    /// version installed **strictly before** `epoch`. Strictness matters
    /// for crash consistency — a failed epoch build may leave an orphaned
    /// version at `epoch` on sites it reached, and a retry must not apply
    /// its ops on top of that orphan. With [`LATEST_EPOCH`] the base is the
    /// newest version (in-place update semantics).
    pub fn update_base(&self, fragment: FragmentId, epoch: u64) -> Option<Arc<Fragment>> {
        let versions = self.versions.get(&fragment)?;
        if epoch == LATEST_EPOCH {
            return versions.last().map(|(_, f)| Arc::clone(f));
        }
        versions.iter().rev().find(|(e, _)| *e < epoch).map(|(_, f)| Arc::clone(f))
    }

    /// Install `fragment` as the snapshot of install-epoch `epoch`,
    /// replacing an existing version at exactly that epoch (a retried epoch
    /// build overwrites its own orphan). With [`LATEST_EPOCH`] the newest
    /// version is replaced in place, keeping its install epoch.
    pub fn install_version(&mut self, epoch: u64, fragment: Fragment) {
        let versions = self.versions.entry(fragment.id).or_default();
        if epoch == LATEST_EPOCH {
            match versions.last_mut() {
                Some(last) => last.1 = Arc::new(fragment),
                None => versions.push((0, Arc::new(fragment))),
            }
            return;
        }
        match versions.binary_search_by_key(&epoch, |(e, _)| *e) {
            Ok(i) => versions[i].1 = Arc::new(fragment),
            Err(i) => versions.insert(i, (epoch, Arc::new(fragment))),
        }
    }

    /// Drop every version no reader can still pin, given that all in-flight
    /// and future executions are pinned at or above `watermark`: per
    /// fragment, keep the newest version installed at or before the
    /// watermark (the one a reader at the watermark reads) plus everything
    /// newer. Returns the number of versions dropped.
    pub fn retire_below(&mut self, watermark: u64) -> usize {
        let mut dropped = 0;
        for versions in self.versions.values_mut() {
            let keep_from = versions.iter().rposition(|(e, _)| *e <= watermark).unwrap_or(0);
            dropped += keep_from;
            versions.drain(..keep_from);
        }
        dropped
    }

    /// Drop **every** version of a fragment, returning how many were held.
    ///
    /// This is the reclamation step after a re-fragmentation retired the
    /// fragment from this site's placement (it migrated away, or was merged
    /// into its parent). The coordinator only issues it once the retirement
    /// watermark has passed the epoch that removed the fragment, so no
    /// pinned reader can still be routed here for it.
    pub fn purge_fragment(&mut self, fragment: FragmentId) -> usize {
        self.versions.remove(&fragment).map(|v| v.len()).unwrap_or(0)
    }

    /// Per-fragment resident bytes of the snapshots a reader pinned to
    /// `epoch` sees, under the canonical wire encoding — the storage-side
    /// half of a site load report (the rebalance planner's input).
    pub fn fragment_bytes_at(&self, epoch: u64) -> Vec<(FragmentId, u64)> {
        self.versions
            .iter()
            .filter_map(|(id, v)| {
                v.iter()
                    .rev()
                    .find(|(e, _)| *e <= epoch)
                    .map(|(_, f)| (*id, crate::encoded_size(f.as_ref())))
            })
            .collect()
    }

    /// The newest snapshot of every fragment stored here, in id order.
    pub fn latest_fragments(&self) -> Vec<Arc<Fragment>> {
        self.versions.values().filter_map(|v| v.last().map(|(_, f)| Arc::clone(f))).collect()
    }

    /// Every fragment's snapshot as seen from `epoch`, in id order.
    pub fn fragments_at(&self, epoch: u64) -> Vec<Arc<Fragment>> {
        self.versions
            .values()
            .filter_map(|v| v.iter().rev().find(|(e, _)| *e <= epoch).map(|(_, f)| Arc::clone(f)))
            .collect()
    }

    /// Fragment ids stored here, in id order.
    pub fn fragment_ids(&self) -> Vec<FragmentId> {
        self.versions.keys().copied().collect()
    }

    /// Number of distinct fragments stored here.
    pub fn fragment_count(&self) -> usize {
        self.versions.len()
    }

    /// Total number of fragment versions held, across all fragments. Steady
    /// state after retirement is one per fragment (leak regression tests
    /// assert on this).
    pub fn version_count(&self) -> usize {
        self.versions.values().map(Vec::len).sum()
    }

    /// Cumulative number of (non-virtual) nodes stored at this site in its
    /// newest snapshots — `|F_{S_i}|` in the paper's parallel-computation
    /// bound.
    pub fn cumulative_size(&self) -> usize {
        self.cumulative_size_at(LATEST_EPOCH)
    }

    /// Cumulative number of (non-virtual) nodes in the snapshots a reader
    /// pinned to `epoch` sees.
    pub fn cumulative_size_at(&self, epoch: u64) -> usize {
        self.fragments_at(epoch)
            .iter()
            .map(|f| f.tree.all_nodes().filter(|&n| !f.tree.is_virtual(n)).count())
            .sum()
    }

    /// Charge `n` elementary operations to this site for the current visit.
    pub fn charge_ops(&mut self, n: u64) {
        self.ops += n;
    }

    /// Total operations charged so far (monotone across visits).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Store a typed value in the scratch state (replacing any previous
    /// value under the same key).
    pub fn put_scratch<T: Send + 'static>(&mut self, key: impl Into<String>, value: T) {
        self.scratch.insert(key.into(), Box::new(value));
    }

    /// Borrow a typed value from the scratch state.
    pub fn scratch<T: 'static>(&self, key: &str) -> Option<&T> {
        self.scratch.get(key).and_then(|b| b.downcast_ref::<T>())
    }

    /// Mutably borrow a typed value from the scratch state.
    pub fn scratch_mut<T: 'static>(&mut self, key: &str) -> Option<&mut T> {
        self.scratch.get_mut(key).and_then(|b| b.downcast_mut::<T>())
    }

    /// Remove and return a typed value from the scratch state.
    pub fn take_scratch<T: 'static>(&mut self, key: &str) -> Option<T> {
        let boxed = self.scratch.remove(key)?;
        match boxed.downcast::<T>() {
            Ok(v) => Some(*v),
            Err(original) => {
                // Wrong type requested: put the value back untouched.
                self.scratch.insert(key.to_string(), original);
                None
            }
        }
    }

    /// Number of entries currently parked in the scratch store. Steady
    /// state is zero: an execution must take back everything it parks
    /// (per-execution scratch slots are never reused, so a leaked entry
    /// would accumulate forever — leak regression tests assert on this).
    pub fn scratch_len(&self) -> usize {
        self.scratch.len()
    }

    /// Drop all scratch state (between independent query executions).
    pub fn clear_scratch(&mut self) {
        self.scratch.clear();
    }
}

impl fmt::Debug for SiteLocal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SiteLocal")
            .field("id", &self.id)
            .field("fragments", &self.fragment_ids())
            .field("versions", &self.version_count())
            .field("scratch_keys", &self.scratch.keys().collect::<Vec<_>>())
            .field("ops", &self.ops)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxml_xml::XmlTree;

    fn fragment(id: usize, label: &str) -> Fragment {
        Fragment {
            id: FragmentId(id),
            tree: XmlTree::with_root_element(label),
            root_label: label.to_string(),
            origin: vec![0],
        }
    }

    #[test]
    fn site_holds_multiple_fragments() {
        let mut s = SiteLocal::new(SiteId(2));
        s.add_fragment(fragment(2, "market"));
        s.add_fragment(fragment(4, "market"));
        assert_eq!(s.fragment_ids(), vec![FragmentId(2), FragmentId(4)]);
        assert_eq!(s.cumulative_size(), 2);
        assert_eq!(s.fragment_count(), 2);
        assert_eq!(s.version_count(), 2);
        assert_eq!(s.id.to_string(), "S2");
    }

    #[test]
    fn epoch_versions_are_isolated_and_retire() {
        let mut s = SiteLocal::new(SiteId(0));
        s.add_fragment(fragment(1, "v0"));
        // Epoch 1 and 2 install fresh snapshots on top of epoch 0.
        s.install_version(1, fragment(1, "v1"));
        s.install_version(2, fragment(1, "v2"));
        assert_eq!(s.version_count(), 3);
        assert_eq!(s.fragment_at(FragmentId(1), 0).unwrap().root_label, "v0");
        assert_eq!(s.fragment_at(FragmentId(1), 1).unwrap().root_label, "v1");
        assert_eq!(s.fragment_at(FragmentId(1), 2).unwrap().root_label, "v2");
        assert_eq!(s.fragment_at(FragmentId(1), LATEST_EPOCH).unwrap().root_label, "v2");
        // An update building epoch 2 starts from epoch 1's snapshot even if
        // an orphaned version already sits at epoch 2.
        assert_eq!(s.update_base(FragmentId(1), 2).unwrap().root_label, "v1");
        assert_eq!(s.update_base(FragmentId(1), LATEST_EPOCH).unwrap().root_label, "v2");
        // Retire below epoch 2: only the newest ≤ 2 survives.
        assert_eq!(s.retire_below(2), 2);
        assert_eq!(s.version_count(), 1);
        assert_eq!(s.fragment_at(FragmentId(1), 2).unwrap().root_label, "v2");
        assert_eq!(s.fragment_at(FragmentId(1), 1), None);
    }

    #[test]
    fn latest_epoch_updates_replace_in_place() {
        let mut s = SiteLocal::new(SiteId(0));
        s.add_fragment(fragment(3, "old"));
        s.install_version(LATEST_EPOCH, fragment(3, "new"));
        assert_eq!(s.version_count(), 1, "in-place semantics must not grow the version list");
        assert_eq!(s.fragment_at(FragmentId(3), 0).unwrap().root_label, "new");
    }

    #[test]
    fn scratch_state_is_typed() {
        let mut s = SiteLocal::new(SiteId(0));
        s.put_scratch("answers", vec![1u32, 2, 3]);
        s.put_scratch("count", 7usize);
        assert_eq!(s.scratch::<Vec<u32>>("answers"), Some(&vec![1, 2, 3]));
        assert_eq!(s.scratch::<usize>("count"), Some(&7));
        // Wrong type yields None without destroying the value.
        assert_eq!(s.scratch::<String>("answers"), None);
        assert_eq!(s.take_scratch::<String>("answers"), None);
        assert_eq!(s.take_scratch::<Vec<u32>>("answers"), Some(vec![1, 2, 3]));
        assert_eq!(s.scratch::<Vec<u32>>("answers"), None);
        if let Some(count) = s.scratch_mut::<usize>("count") {
            *count += 1;
        }
        assert_eq!(s.scratch::<usize>("count"), Some(&8));
        s.clear_scratch();
        assert_eq!(s.scratch::<usize>("count"), None);
    }

    #[test]
    fn ops_accumulate() {
        let mut s = SiteLocal::new(SiteId(1));
        assert_eq!(s.ops(), 0);
        s.charge_ops(10);
        s.charge_ops(5);
        assert_eq!(s.ops(), 15);
    }
}

//! A simulated site: the fragments it stores plus scratch state kept between
//! visits.

use paxml_fragment::{Fragment, FragmentId};
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Identifier of a site (`S0`, `S1`, … in the paper's figures).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SiteId(pub usize);

impl SiteId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// The state a site keeps locally.
///
/// Besides its fragments, a site may keep arbitrary *scratch state* between
/// visits — e.g. the per-node qualifier vectors computed during Stage 1 of
/// PaX3, which Stage 2 reads on the next visit, or the candidate-answer sets
/// that Stage 3 resolves. The scratch store is keyed by string and typed via
/// downcasting, so the algorithm crates can stash whatever they need without
/// this crate knowing their types.
pub struct SiteLocal {
    /// This site's id.
    pub id: SiteId,
    /// The fragments stored at this site, keyed by fragment id. More than
    /// one fragment may live at the same site (in Fig. 2, `S2` stores both
    /// `F2` and `F4`).
    pub fragments: BTreeMap<FragmentId, Fragment>,
    scratch: HashMap<String, Box<dyn Any + Send>>,
    ops: u64,
}

impl SiteLocal {
    /// Create an empty site.
    pub fn new(id: SiteId) -> Self {
        SiteLocal { id, fragments: BTreeMap::new(), scratch: HashMap::new(), ops: 0 }
    }

    /// Store a fragment at this site.
    pub fn add_fragment(&mut self, fragment: Fragment) {
        self.fragments.insert(fragment.id, fragment);
    }

    /// Fragment ids stored here, in id order.
    pub fn fragment_ids(&self) -> Vec<FragmentId> {
        self.fragments.keys().copied().collect()
    }

    /// Cumulative number of (non-virtual) nodes stored at this site —
    /// `|F_{S_i}|` in the paper's parallel-computation bound.
    pub fn cumulative_size(&self) -> usize {
        self.fragments
            .values()
            .map(|f| f.tree.all_nodes().filter(|&n| !f.tree.is_virtual(n)).count())
            .sum()
    }

    /// Charge `n` elementary operations to this site for the current visit.
    pub fn charge_ops(&mut self, n: u64) {
        self.ops += n;
    }

    /// Total operations charged so far (monotone across visits).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Store a typed value in the scratch state (replacing any previous
    /// value under the same key).
    pub fn put_scratch<T: Send + 'static>(&mut self, key: impl Into<String>, value: T) {
        self.scratch.insert(key.into(), Box::new(value));
    }

    /// Borrow a typed value from the scratch state.
    pub fn scratch<T: 'static>(&self, key: &str) -> Option<&T> {
        self.scratch.get(key).and_then(|b| b.downcast_ref::<T>())
    }

    /// Mutably borrow a typed value from the scratch state.
    pub fn scratch_mut<T: 'static>(&mut self, key: &str) -> Option<&mut T> {
        self.scratch.get_mut(key).and_then(|b| b.downcast_mut::<T>())
    }

    /// Remove and return a typed value from the scratch state.
    pub fn take_scratch<T: 'static>(&mut self, key: &str) -> Option<T> {
        let boxed = self.scratch.remove(key)?;
        match boxed.downcast::<T>() {
            Ok(v) => Some(*v),
            Err(original) => {
                // Wrong type requested: put the value back untouched.
                self.scratch.insert(key.to_string(), original);
                None
            }
        }
    }

    /// Number of entries currently parked in the scratch store. Steady
    /// state is zero: an execution must take back everything it parks
    /// (per-execution scratch slots are never reused, so a leaked entry
    /// would accumulate forever — leak regression tests assert on this).
    pub fn scratch_len(&self) -> usize {
        self.scratch.len()
    }

    /// Drop all scratch state (between independent query executions).
    pub fn clear_scratch(&mut self) {
        self.scratch.clear();
    }
}

impl fmt::Debug for SiteLocal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SiteLocal")
            .field("id", &self.id)
            .field("fragments", &self.fragment_ids())
            .field("scratch_keys", &self.scratch.keys().collect::<Vec<_>>())
            .field("ops", &self.ops)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxml_xml::XmlTree;

    fn fragment(id: usize, label: &str) -> Fragment {
        Fragment {
            id: FragmentId(id),
            tree: XmlTree::with_root_element(label),
            root_label: label.to_string(),
            origin: vec![0],
        }
    }

    #[test]
    fn site_holds_multiple_fragments() {
        let mut s = SiteLocal::new(SiteId(2));
        s.add_fragment(fragment(2, "market"));
        s.add_fragment(fragment(4, "market"));
        assert_eq!(s.fragment_ids(), vec![FragmentId(2), FragmentId(4)]);
        assert_eq!(s.cumulative_size(), 2);
        assert_eq!(s.id.to_string(), "S2");
    }

    #[test]
    fn scratch_state_is_typed() {
        let mut s = SiteLocal::new(SiteId(0));
        s.put_scratch("answers", vec![1u32, 2, 3]);
        s.put_scratch("count", 7usize);
        assert_eq!(s.scratch::<Vec<u32>>("answers"), Some(&vec![1, 2, 3]));
        assert_eq!(s.scratch::<usize>("count"), Some(&7));
        // Wrong type yields None without destroying the value.
        assert_eq!(s.scratch::<String>("answers"), None);
        assert_eq!(s.take_scratch::<String>("answers"), None);
        assert_eq!(s.take_scratch::<Vec<u32>>("answers"), Some(vec![1, 2, 3]));
        assert_eq!(s.scratch::<Vec<u32>>("answers"), None);
        if let Some(count) = s.scratch_mut::<usize>("count") {
            *count += 1;
        }
        assert_eq!(s.scratch::<usize>("count"), Some(&8));
        s.clear_scratch();
        assert_eq!(s.scratch::<usize>("count"), None);
    }

    #[test]
    fn ops_accumulate() {
        let mut s = SiteLocal::new(SiteId(1));
        assert_eq!(s.ops(), 0);
        s.charge_ops(10);
        s.charge_ops(5);
        assert_eq!(s.ops(), 15);
    }
}

//! A serde serializer that measures the encoded size of a message without
//! producing any output.
//!
//! The paper's communication bounds are stated in terms of data volume; the
//! simulator therefore charges every coordinator↔site message with the
//! number of bytes a compact binary encoding would use. Implementing the
//! counter as a [`serde::Serializer`] means any `Serialize` message type is
//! measured with zero extra code, and no serialization-format dependency is
//! needed.
//!
//! Integers are charged at **varint** widths (LEB128: 7 payload bits per
//! byte; signed values zig-zag first), and sequence/map/string lengths are
//! charged as varints too — so a small length or id costs one byte, exactly
//! like the compact binary encodings (protobuf, postcard) this counter
//! stands in for. Floats keep their fixed widths; chars are charged at
//! their UTF-8 length (1–4 bytes).

use serde::ser::{self, Serialize};
use std::fmt::Display;

/// Compute the approximate encoded size, in bytes, of any serializable value.
pub fn encoded_size<T: Serialize + ?Sized>(value: &T) -> u64 {
    let mut counter = ByteCounter { bytes: 0 };
    value.serialize(&mut counter).expect("byte counting never fails for well-formed values");
    counter.bytes
}

/// Error type for the counting serializer (it never actually errors in
/// practice, but the trait requires one).
#[derive(Debug)]
pub struct CountError(String);

impl Display for CountError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "byte counting error: {}", self.0)
    }
}

impl std::error::Error for CountError {}

impl ser::Error for CountError {
    fn custom<T: Display>(msg: T) -> Self {
        CountError(msg.to_string())
    }
}

struct ByteCounter {
    bytes: u64,
}

/// Bytes a LEB128 varint needs for `v`: 7 payload bits per byte.
fn varint_len(v: u64) -> u64 {
    if v == 0 {
        1
    } else {
        (64 - u64::from(v.leading_zeros())).div_ceil(7)
    }
}

/// Zig-zag an i64 so small-magnitude values stay small varints.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

impl ByteCounter {
    fn add(&mut self, n: u64) {
        self.bytes += n;
    }
}

impl ser::Serializer for &mut ByteCounter {
    type Ok = ();
    type Error = CountError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, _v: bool) -> Result<(), CountError> {
        self.add(1);
        Ok(())
    }
    fn serialize_i8(self, _v: i8) -> Result<(), CountError> {
        self.add(1);
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), CountError> {
        self.add(varint_len(zigzag(v as i64)));
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), CountError> {
        self.add(varint_len(zigzag(v as i64)));
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), CountError> {
        self.add(varint_len(zigzag(v)));
        Ok(())
    }
    fn serialize_u8(self, _v: u8) -> Result<(), CountError> {
        self.add(1);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), CountError> {
        self.add(varint_len(v as u64));
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), CountError> {
        self.add(varint_len(v as u64));
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), CountError> {
        self.add(varint_len(v));
        Ok(())
    }
    fn serialize_f32(self, _v: f32) -> Result<(), CountError> {
        self.add(4);
        Ok(())
    }
    fn serialize_f64(self, _v: f64) -> Result<(), CountError> {
        self.add(8);
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), CountError> {
        self.add(v.len_utf8() as u64);
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), CountError> {
        // varint length prefix + payload
        self.add(varint_len(v.len() as u64) + v.len() as u64);
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), CountError> {
        self.add(varint_len(v.len() as u64) + v.len() as u64);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), CountError> {
        self.add(1);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CountError> {
        self.add(1);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), CountError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CountError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CountError> {
        self.add(1);
        Ok(())
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CountError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CountError> {
        self.add(1);
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self, CountError> {
        self.add(len.map_or(1, |n| varint_len(n as u64)));
        Ok(self)
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self, CountError> {
        Ok(self)
    }
    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, CountError> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CountError> {
        self.add(1);
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self, CountError> {
        self.add(len.map_or(1, |n| varint_len(n as u64)));
        Ok(self)
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, CountError> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CountError> {
        self.add(1);
        Ok(self)
    }
}

macro_rules! impl_compound {
    ($trait:path, $method:ident) => {
        impl $trait for &mut ByteCounter {
            type Ok = ();
            type Error = CountError;
            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CountError> {
                value.serialize(&mut **self)
            }
            fn end(self) -> Result<(), CountError> {
                Ok(())
            }
        }
    };
}

impl_compound!(ser::SerializeSeq, serialize_element);
impl_compound!(ser::SerializeTuple, serialize_element);
impl_compound!(ser::SerializeTupleStruct, serialize_field);
impl_compound!(ser::SerializeTupleVariant, serialize_field);

impl ser::SerializeMap for &mut ByteCounter {
    type Ok = ();
    type Error = CountError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CountError> {
        key.serialize(&mut **self)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CountError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CountError> {
        Ok(())
    }
}

impl ser::SerializeStruct for &mut ByteCounter {
    type Ok = ();
    type Error = CountError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CountError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CountError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut ByteCounter {
    type Ok = ();
    type Error = CountError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CountError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CountError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    #[derive(Serialize)]
    struct Example {
        id: u32,
        name: String,
        values: Vec<u64>,
        flag: Option<bool>,
    }

    #[test]
    fn primitives_have_varint_sizes() {
        assert_eq!(encoded_size(&true), 1);
        assert_eq!(encoded_size(&7u32), 1);
        assert_eq!(encoded_size(&300u32), 2);
        assert_eq!(encoded_size(&7u64), 1);
        assert_eq!(encoded_size(&u64::MAX), 10);
        assert_eq!(encoded_size(&-1i64), 1, "zig-zag keeps small negatives small");
        assert_eq!(encoded_size(&-64i32), 1);
        assert_eq!(encoded_size(&64i32), 2);
        assert_eq!(encoded_size(&1.5f64), 8);
        assert_eq!(encoded_size(&'x'), 1);
        assert_eq!(encoded_size(&'€'), 3);
        assert_eq!(encoded_size("ab"), 1 + 2);
    }

    #[test]
    fn structs_sum_their_fields() {
        let e = Example { id: 1, name: "hello".into(), values: vec![1, 2, 3], flag: Some(true) };
        // 1 (id) + 1+5 (name) + 1 + 3*1 (values) + 1+1 (flag)
        assert_eq!(encoded_size(&e), 1 + 6 + 4 + 2);
    }

    #[test]
    fn size_grows_with_content() {
        let small = vec!["a".to_string(); 2];
        let large = vec!["a".to_string(); 200];
        assert!(encoded_size(&large) > encoded_size(&small) * 50);
    }

    #[test]
    fn enums_count_their_discriminant() {
        #[derive(Serialize)]
        enum E {
            A,
            B(u32),
            C { x: u64 },
        }
        assert_eq!(encoded_size(&E::A), 1);
        assert_eq!(encoded_size(&E::B(1)), 2);
        assert_eq!(encoded_size(&E::C { x: 1 }), 2);
    }

    #[test]
    fn xml_trees_and_formula_vectors_are_measurable() {
        use paxml_xml::TreeBuilder;
        let tree = TreeBuilder::new("a").leaf("b", "text").build();
        let size = encoded_size(&tree);
        assert!(size > 10);
        let bigger = TreeBuilder::new("a")
            .with(|t, c| {
                for i in 0..100 {
                    t.append_leaf(c, "b", format!("text{i}"));
                }
            })
            .build();
        assert!(encoded_size(&bigger) > size * 50);
    }
}

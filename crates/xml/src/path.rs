//! Label paths: sequences of element labels from the root to a node.
//!
//! The fragment-tree XPath annotations of §5 of the paper are exactly such
//! label paths ("the path in T connecting the root of fragment Fj with the
//! root of fragment Fk"), so they live in the XML substrate where both the
//! fragmenter and the pruning optimization can use them.

use crate::node::NodeId;
use crate::tree::XmlTree;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A `/`-separated sequence of element labels, e.g. `client/broker/market`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct LabelPath {
    steps: Vec<String>,
}

impl LabelPath {
    /// The empty path (identifies the starting node itself).
    pub fn empty() -> Self {
        LabelPath { steps: Vec::new() }
    }

    /// Build a path from label steps.
    pub fn from_steps(steps: impl IntoIterator<Item = impl Into<String>>) -> Self {
        LabelPath { steps: steps.into_iter().map(Into::into).collect() }
    }

    /// Parse a `/`-separated path such as `client/broker/market`.
    /// Empty segments are ignored, so a leading `/` is harmless.
    pub fn parse(text: &str) -> Self {
        LabelPath { steps: text.split('/').filter(|s| !s.is_empty()).map(str::to_string).collect() }
    }

    /// The label steps of this path.
    pub fn steps(&self) -> &[String] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Is this the empty path?
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Append a step, returning the extended path.
    pub fn child(&self, label: impl Into<String>) -> Self {
        let mut steps = self.steps.clone();
        steps.push(label.into());
        LabelPath { steps }
    }

    /// Concatenate two paths.
    pub fn join(&self, other: &LabelPath) -> Self {
        let mut steps = self.steps.clone();
        steps.extend(other.steps.iter().cloned());
        LabelPath { steps }
    }

    /// Does `self` start with `prefix`?
    pub fn starts_with(&self, prefix: &LabelPath) -> bool {
        self.steps.len() >= prefix.steps.len()
            && self.steps[..prefix.steps.len()] == prefix.steps[..]
    }
}

impl fmt::Display for LabelPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.steps.join("/"))
    }
}

/// The label path from the root of `tree` down to (and excluding) `node`:
/// the labels of `node`'s proper ancestors below the root plus nothing for
/// the root itself — i.e. the path you follow *from the root element* to
/// reach `node`'s parent, extended with nothing. Text nodes contribute no
/// label. The node's own label is **not** included.
///
/// For the paper's annotation semantics we typically want the path from one
/// node to another; see [`label_path`].
pub fn path_from_root(tree: &XmlTree, node: NodeId) -> LabelPath {
    label_path(tree, tree.root(), node)
        .expect("every reachable node has the root as an ancestor-or-self")
}

/// The label path connecting `from` (exclusive) to `to` (inclusive):
/// the element labels on the downward path strictly below `from`, ending with
/// `to`'s own label. Returns `None` if `from` is not an ancestor-or-self of
/// `to`. When `from == to` the result is the empty path.
pub fn label_path(tree: &XmlTree, from: NodeId, to: NodeId) -> Option<LabelPath> {
    if from == to {
        return Some(LabelPath::empty());
    }
    let mut labels = Vec::new();
    let mut current = to;
    loop {
        if let Some(l) = tree.label(current) {
            labels.push(l.to_string());
        } else if let Some(root_label) = match tree.kind(current) {
            crate::NodeKind::Virtual { root_label, .. } => root_label.clone(),
            _ => None,
        } {
            labels.push(root_label);
        }
        match tree.parent(current) {
            Some(p) if p == from => {
                labels.reverse();
                return Some(LabelPath { steps: labels });
            }
            Some(p) => current = p,
            None => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TreeBuilder;

    fn sample() -> XmlTree {
        TreeBuilder::new("clientele")
            .open("client")
            .open("broker")
            .open("market")
            .leaf("name", "NASDAQ")
            .close()
            .close()
            .close()
            .build()
    }

    #[test]
    fn parse_and_display_round_trip() {
        let p = LabelPath::parse("client/broker/market");
        assert_eq!(p.len(), 3);
        assert_eq!(p.to_string(), "client/broker/market");
        assert_eq!(LabelPath::parse("/client/broker"), LabelPath::parse("client/broker"));
        assert!(LabelPath::parse("").is_empty());
    }

    #[test]
    fn child_and_join() {
        let p = LabelPath::parse("client").child("broker");
        assert_eq!(p.to_string(), "client/broker");
        let q = p.join(&LabelPath::parse("market/name"));
        assert_eq!(q.to_string(), "client/broker/market/name");
    }

    #[test]
    fn starts_with_prefix() {
        let p = LabelPath::parse("client/broker/market");
        assert!(p.starts_with(&LabelPath::parse("client")));
        assert!(p.starts_with(&LabelPath::parse("client/broker")));
        assert!(p.starts_with(&LabelPath::empty()));
        assert!(!p.starts_with(&LabelPath::parse("broker")));
        assert!(!LabelPath::parse("client").starts_with(&p));
    }

    #[test]
    fn label_path_between_nodes() {
        let t = sample();
        let market = t.find_first("market").unwrap();
        let p = label_path(&t, t.root(), market).unwrap();
        assert_eq!(p.to_string(), "client/broker/market");
        let client = t.find_first("client").unwrap();
        let p = label_path(&t, client, market).unwrap();
        assert_eq!(p.to_string(), "broker/market");
        assert_eq!(label_path(&t, market, market), Some(LabelPath::empty()));
    }

    #[test]
    fn label_path_none_when_not_ancestor() {
        let t = sample();
        let market = t.find_first("market").unwrap();
        let name = t.find_first("name").unwrap();
        assert_eq!(label_path(&t, name, market), None);
    }

    #[test]
    fn path_from_root_matches_full_path() {
        let t = sample();
        let name = t.find_first("name").unwrap();
        assert_eq!(path_from_root(&t, name).to_string(), "client/broker/market/name");
    }
}

//! A fluent builder for constructing XML trees in tests, examples and the
//! workload generator.

use crate::node::{NodeId, NodeKind};
use crate::tree::XmlTree;

/// Builds an [`XmlTree`] with a cursor-style API.
///
/// ```
/// use paxml_xml::TreeBuilder;
///
/// let tree = TreeBuilder::new("clientele")
///     .open("client")
///         .leaf("name", "Anna")
///         .leaf("country", "US")
///     .close()
///     .open("client")
///         .leaf("name", "Kim")
///     .close()
///     .build();
/// assert_eq!(tree.find_all("client").len(), 2);
/// ```
#[derive(Debug)]
pub struct TreeBuilder {
    tree: XmlTree,
    stack: Vec<NodeId>,
}

impl TreeBuilder {
    /// Start a document whose root element has the given label.
    pub fn new(root_label: impl Into<String>) -> Self {
        let tree = XmlTree::with_root_element(root_label);
        let root = tree.root();
        TreeBuilder { tree, stack: vec![root] }
    }

    fn cursor(&self) -> NodeId {
        *self.stack.last().expect("builder stack is never empty")
    }

    /// Open a new child element; subsequent calls add children to it until
    /// [`TreeBuilder::close`] is called.
    pub fn open(mut self, label: impl Into<String>) -> Self {
        let id = self.tree.append_element(self.cursor(), label);
        self.stack.push(id);
        self
    }

    /// Close the most recently opened element.
    ///
    /// # Panics
    /// Panics if called more times than [`TreeBuilder::open`], i.e. if it
    /// would close the root.
    pub fn close(mut self) -> Self {
        assert!(self.stack.len() > 1, "TreeBuilder::close called on the root element");
        self.stack.pop();
        self
    }

    /// Add an empty child element without changing the cursor.
    pub fn element(mut self, label: impl Into<String>) -> Self {
        self.tree.append_element(self.cursor(), label);
        self
    }

    /// Add a child element wrapping a single text node (`<label>text</label>`).
    pub fn leaf(mut self, label: impl Into<String>, text: impl Into<String>) -> Self {
        self.tree.append_leaf(self.cursor(), label, text);
        self
    }

    /// Add a text child to the current element.
    pub fn text(mut self, value: impl Into<String>) -> Self {
        self.tree.append_text(self.cursor(), value);
        self
    }

    /// Add an attribute to the current element.
    pub fn attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.tree
            .set_attribute(self.cursor(), name, value)
            .expect("builder cursor always points at an element");
        self
    }

    /// Add a virtual placeholder child (used in fragment-construction tests).
    pub fn virtual_node(mut self, fragment: usize, root_label: Option<String>) -> Self {
        self.tree.append_child(self.cursor(), NodeKind::virtual_node(fragment, root_label));
        self
    }

    /// Graft a copy of another tree as a child of the current element.
    pub fn subtree(mut self, other: &XmlTree) -> Self {
        self.tree
            .graft_tree(self.cursor(), other, other.root())
            .expect("grafting a valid tree cannot fail");
        self
    }

    /// Run a closure with mutable access to the underlying tree and the
    /// current cursor — an escape hatch for loops in generators.
    pub fn with(mut self, f: impl FnOnce(&mut XmlTree, NodeId)) -> Self {
        let cursor = self.cursor();
        f(&mut self.tree, cursor);
        self
    }

    /// Finish building. Any elements still open are implicitly closed.
    pub fn build(self) -> XmlTree {
        debug_assert!(self.tree.validate().is_ok());
        self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_string;

    #[test]
    fn builder_produces_expected_document() {
        let tree = TreeBuilder::new("clientele")
            .open("client")
            .leaf("name", "Anna")
            .leaf("country", "US")
            .close()
            .build();
        assert_eq!(
            to_string(&tree),
            "<clientele><client><name>Anna</name><country>US</country></client></clientele>"
        );
    }

    #[test]
    fn open_close_nesting_matches_depth() {
        let tree = TreeBuilder::new("a")
            .open("b")
            .open("c")
            .leaf("d", "x")
            .close()
            .close()
            .element("e")
            .build();
        let d = tree.find_first("d").unwrap();
        assert_eq!(tree.depth(d), 3);
        let e = tree.find_first("e").unwrap();
        assert_eq!(tree.depth(e), 1);
    }

    #[test]
    fn unclosed_elements_are_ok_at_build_time() {
        let tree = TreeBuilder::new("a").open("b").open("c").build();
        assert_eq!(tree.all_nodes().count(), 3);
        tree.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "close called on the root")]
    fn closing_the_root_panics() {
        let _ = TreeBuilder::new("a").close();
    }

    #[test]
    fn attributes_and_virtual_nodes() {
        let tree = TreeBuilder::new("broker")
            .attr("id", "b1")
            .virtual_node(4, Some("market".into()))
            .build();
        assert_eq!(tree.attribute(tree.root(), "id"), Some("b1"));
        assert_eq!(tree.virtual_nodes().len(), 1);
    }

    #[test]
    fn subtree_grafts_a_copy() {
        let inner = TreeBuilder::new("market").leaf("name", "NASDAQ").build();
        let outer = TreeBuilder::new("broker").subtree(&inner).subtree(&inner).build();
        assert_eq!(outer.find_all("market").len(), 2);
        assert_eq!(outer.find_all("name").len(), 2);
    }

    #[test]
    fn with_allows_programmatic_children() {
        let tree = TreeBuilder::new("people")
            .with(|t, cursor| {
                for i in 0..5 {
                    t.append_leaf(cursor, "person", format!("p{i}"));
                }
            })
            .build();
        assert_eq!(tree.find_all("person").len(), 5);
    }
}

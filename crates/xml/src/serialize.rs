//! Serialization of [`XmlTree`]s back to XML text.

use crate::node::{NodeId, NodeKind};
use crate::tree::XmlTree;

/// Options controlling serialization.
#[derive(Debug, Clone)]
pub struct SerializeOptions {
    /// Indent child elements by this many spaces per nesting level.
    /// `None` produces a compact single-line document.
    pub indent: Option<usize>,
    /// How virtual nodes are rendered. They have no XML equivalent, so the
    /// serializer emits a self-closing marker element carrying the fragment
    /// id; this keeps serialization total (useful for debugging fragments).
    pub virtual_element_name: String,
}

impl Default for SerializeOptions {
    fn default() -> Self {
        SerializeOptions { indent: None, virtual_element_name: "paxml:fragment-ref".to_string() }
    }
}

/// Serialize a tree compactly.
pub fn to_string(tree: &XmlTree) -> String {
    serialize(tree, &SerializeOptions::default())
}

/// Serialize a tree with two-space indentation.
pub fn to_string_pretty(tree: &XmlTree) -> String {
    serialize(tree, &SerializeOptions { indent: Some(2), ..SerializeOptions::default() })
}

/// Serialize a tree with the given options.
pub fn serialize(tree: &XmlTree, options: &SerializeOptions) -> String {
    let mut out = String::new();
    write_node(tree, tree.root(), options, 0, &mut out);
    out
}

fn write_node(
    tree: &XmlTree,
    id: NodeId,
    options: &SerializeOptions,
    depth: usize,
    out: &mut String,
) {
    let pad = |out: &mut String, depth: usize| {
        if let Some(width) = options.indent {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&" ".repeat(width * depth));
        }
    };
    match tree.kind(id) {
        NodeKind::Element { label, attributes } => {
            pad(out, depth);
            out.push('<');
            out.push_str(label);
            for (name, value) in attributes {
                out.push(' ');
                out.push_str(name);
                out.push_str("=\"");
                out.push_str(&escape_attr(value));
                out.push('"');
            }
            let children: Vec<NodeId> = tree.children(id).collect();
            if children.is_empty() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            let only_text = children.iter().all(|&c| matches!(tree.kind(c), NodeKind::Text { .. }));
            for &c in &children {
                if only_text {
                    // Keep `<name>Anna</name>` on one line even when pretty-printing.
                    if let NodeKind::Text { value } = tree.kind(c) {
                        out.push_str(&escape_text(value));
                    }
                } else {
                    write_node(tree, c, options, depth + 1, out);
                }
            }
            if !only_text {
                pad(out, depth);
            }
            out.push_str("</");
            out.push_str(label);
            out.push('>');
        }
        NodeKind::Text { value } => {
            pad(out, depth);
            out.push_str(&escape_text(value));
        }
        NodeKind::Virtual { fragment, root_label } => {
            pad(out, depth);
            out.push('<');
            out.push_str(&options.virtual_element_name);
            out.push_str(&format!(" fragment=\"{fragment}\""));
            if let Some(l) = root_label {
                out.push_str(&format!(" root-label=\"{}\"", escape_attr(l)));
            }
            out.push_str("/>");
        }
    }
}

fn escape_text(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for c in input.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(c),
        }
    }
    out
}

fn escape_attr(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for c in input.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use crate::NodeKind;
    use crate::XmlTree;

    #[test]
    fn compact_round_trip() {
        let src = "<a x=\"1\"><b>hi</b><c/></a>";
        let tree = parse(src).unwrap();
        assert_eq!(to_string(&tree), src);
    }

    #[test]
    fn pretty_print_indents_nested_elements() {
        let tree = parse("<a><b><c>x</c></b><d/></a>").unwrap();
        let pretty = to_string_pretty(&tree);
        assert!(pretty.contains("\n  <b>"));
        assert!(pretty.contains("\n    <c>x</c>"));
        // Pretty output re-parses to the same structure.
        let reparsed = parse(&pretty).unwrap();
        assert_eq!(reparsed.all_nodes().count(), tree.all_nodes().count());
    }

    #[test]
    fn special_characters_are_escaped() {
        let mut tree = XmlTree::with_root_element("a");
        let r = tree.root();
        tree.set_attribute(r, "q", "say \"hi\" & <bye>").unwrap();
        tree.append_text(r, "1 < 2 & 3 > 2");
        let s = to_string(&tree);
        assert!(s.contains("&quot;hi&quot;"));
        assert!(s.contains("&amp;"));
        assert!(s.contains("1 &lt; 2 &amp; 3 &gt; 2"));
        let back = parse(&s).unwrap();
        assert_eq!(back.text_of(back.root()), Some("1 < 2 & 3 > 2".into()));
        assert_eq!(back.attribute(back.root(), "q"), Some("say \"hi\" & <bye>"));
    }

    #[test]
    fn virtual_nodes_serialize_as_marker_elements() {
        let mut tree = XmlTree::with_root_element("broker");
        let r = tree.root();
        tree.append_child(r, NodeKind::virtual_node(2, Some("market".into())));
        let s = to_string(&tree);
        assert!(s.contains("paxml:fragment-ref"));
        assert!(s.contains("fragment=\"2\""));
        assert!(s.contains("root-label=\"market\""));
    }

    #[test]
    fn empty_elements_use_self_closing_form() {
        let tree = parse("<a><b></b></a>").unwrap();
        assert_eq!(to_string(&tree), "<a><b/></a>");
    }
}

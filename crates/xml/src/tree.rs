//! The arena-based XML tree.

use crate::error::{XmlError, XmlResult};
use crate::node::{Node, NodeId, NodeKind};
use serde::{Deserialize, Serialize};

/// An ordered, labelled XML tree stored in a flat arena.
///
/// The tree always has a root node (created by [`XmlTree::new`] or by the
/// parser). Structural mutation goes through [`XmlTree::append_child`],
/// [`XmlTree::detach`], and [`XmlTree::graft_tree`]; these maintain the
/// sibling/child links so that traversals never observe an inconsistent
/// structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XmlTree {
    nodes: Vec<Node>,
    root: NodeId,
}

impl XmlTree {
    /// Create a tree consisting of a single root node.
    pub fn new(root_kind: NodeKind) -> Self {
        XmlTree { nodes: vec![Node::new(root_kind)], root: NodeId(0) }
    }

    /// Create a tree whose root is an element with the given label.
    pub fn with_root_element(label: impl Into<String>) -> Self {
        XmlTree::new(NodeKind::element(label))
    }

    /// The root node of the tree.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of nodes in the arena (including detached ones).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Does this id refer to a node of this tree?
    #[inline]
    pub fn contains(&self, id: NodeId) -> bool {
        id.index() < self.nodes.len()
    }

    fn check(&self, id: NodeId) -> XmlResult<()> {
        if self.contains(id) {
            Ok(())
        } else {
            Err(XmlError::InvalidNodeId { id: id.index() })
        }
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    /// Panics if `id` is out of bounds; use [`XmlTree::try_node`] for a
    /// fallible variant.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Fallible access to a node.
    pub fn try_node(&self, id: NodeId) -> XmlResult<&Node> {
        self.check(id)?;
        Ok(&self.nodes[id.index()])
    }

    fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// The kind (payload) of a node.
    #[inline]
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.node(id).kind
    }

    /// Element label of a node, if it is an element.
    #[inline]
    pub fn label(&self, id: NodeId) -> Option<&str> {
        self.node(id).kind.label()
    }

    /// Text value of a node, if it is a text node.
    #[inline]
    pub fn text_value(&self, id: NodeId) -> Option<&str> {
        self.node(id).kind.text_value()
    }

    /// Is the node a virtual placeholder?
    #[inline]
    pub fn is_virtual(&self, id: NodeId) -> bool {
        self.node(id).kind.is_virtual()
    }

    /// The label a node presents to a path step: its element label, or — for
    /// a virtual placeholder — the recorded label of the missing fragment's
    /// root. Text nodes (and virtual nodes with no recorded label) have none.
    #[inline]
    pub fn step_label(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element { label, .. } => Some(label),
            NodeKind::Virtual { root_label, .. } => root_label.as_deref(),
            NodeKind::Text { .. } => None,
        }
    }

    /// Does the node occupy an element slot among its siblings — a real
    /// element or a virtual placeholder standing in for one? Positional
    /// predicates count exactly these nodes.
    #[inline]
    pub fn is_element_like(&self, id: NodeId) -> bool {
        matches!(&self.node(id).kind, NodeKind::Element { .. } | NodeKind::Virtual { .. })
    }

    /// Is the node an element?
    #[inline]
    pub fn is_element(&self, id: NodeId) -> bool {
        self.node(id).kind.is_element()
    }

    /// Parent of a node.
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// First child of a node.
    #[inline]
    pub fn first_child(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).first_child
    }

    /// Next sibling of a node.
    #[inline]
    pub fn next_sibling(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).next_sibling
    }

    /// Attribute value on an element node, if present.
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element { attributes, .. } => {
                attributes.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
            }
            _ => None,
        }
    }

    /// The concatenated text of the *direct* text children of `id`.
    ///
    /// This is what the paper's `text()` test reads: for an element like
    /// `<code>GOOG</code>` it returns `"GOOG"`. Returns `None` when the node
    /// has no text children at all.
    pub fn text_of(&self, id: NodeId) -> Option<String> {
        let mut out = String::new();
        let mut found = false;
        for c in self.children(id) {
            if let Some(t) = self.text_value(c) {
                out.push_str(t);
                found = true;
            }
        }
        if found {
            Some(out)
        } else {
            None
        }
    }

    /// The text of a node interpreted as a number, for the paper's
    /// `val() op num` qualifier tests. Accepts an optional leading `$`
    /// (the running example uses prices like `$374`).
    pub fn numeric_value(&self, id: NodeId) -> Option<f64> {
        let text = self.text_of(id)?;
        let trimmed = text.trim();
        let trimmed = trimmed.strip_prefix('$').unwrap_or(trimmed);
        trimmed.parse::<f64>().ok()
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Allocate a new node and append it as the last child of `parent`.
    pub fn append_child(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        debug_assert!(self.contains(parent), "parent id out of bounds");
        let id = NodeId(self.nodes.len() as u32);
        let mut node = Node::new(kind);
        node.parent = Some(parent);
        node.prev_sibling = self.node(parent).last_child;
        self.nodes.push(node);
        match self.node(parent).last_child {
            Some(prev) => self.node_mut(prev).next_sibling = Some(id),
            None => self.node_mut(parent).first_child = Some(id),
        }
        self.node_mut(parent).last_child = Some(id);
        id
    }

    /// Append an element child and return its id.
    pub fn append_element(&mut self, parent: NodeId, label: impl Into<String>) -> NodeId {
        self.append_child(parent, NodeKind::element(label))
    }

    /// Append a text child and return its id.
    pub fn append_text(&mut self, parent: NodeId, value: impl Into<String>) -> NodeId {
        self.append_child(parent, NodeKind::text(value))
    }

    /// Append an element child that immediately wraps a text node, a very
    /// common shape in the paper's documents (`<name>Anna</name>`).
    pub fn append_leaf(
        &mut self,
        parent: NodeId,
        label: impl Into<String>,
        text: impl Into<String>,
    ) -> NodeId {
        let e = self.append_element(parent, label);
        self.append_text(e, text);
        e
    }

    /// Set an attribute on an element node (replacing an existing value).
    pub fn set_attribute(
        &mut self,
        id: NodeId,
        name: impl Into<String>,
        value: impl Into<String>,
    ) -> XmlResult<()> {
        self.check(id)?;
        match &mut self.node_mut(id).kind {
            NodeKind::Element { attributes, .. } => {
                let name = name.into();
                let value = value.into();
                if let Some(slot) = attributes.iter_mut().find(|(k, _)| *k == name) {
                    slot.1 = value;
                } else {
                    attributes.push((name, value));
                }
                Ok(())
            }
            _ => Err(XmlError::StructureViolation {
                message: "attributes can only be set on element nodes".into(),
            }),
        }
    }

    /// Replace the label of an element node (a *relabel* update).
    pub fn relabel(&mut self, id: NodeId, new_label: impl Into<String>) -> XmlResult<()> {
        self.check(id)?;
        match &mut self.node_mut(id).kind {
            NodeKind::Element { label, .. } => {
                *label = new_label.into();
                Ok(())
            }
            _ => Err(XmlError::StructureViolation {
                message: "only element nodes can be relabelled".into(),
            }),
        }
    }

    /// Replace the value of a text node (a *text edit* update).
    pub fn set_text_value(&mut self, id: NodeId, new_value: impl Into<String>) -> XmlResult<()> {
        self.check(id)?;
        match &mut self.node_mut(id).kind {
            NodeKind::Text { value } => {
                *value = new_value.into();
                Ok(())
            }
            _ => Err(XmlError::StructureViolation {
                message: "only text nodes carry an editable value".into(),
            }),
        }
    }

    /// Is `id` reachable from the root? Detached subtrees stay in the arena
    /// but are no longer part of the document.
    pub fn is_reachable(&self, id: NodeId) -> bool {
        if !self.contains(id) {
            return false;
        }
        let mut current = id;
        loop {
            if current == self.root {
                return true;
            }
            match self.parent(current) {
                Some(p) => current = p,
                None => return false,
            }
        }
    }

    /// Detach the subtree rooted at `id` from its parent. The nodes stay in
    /// the arena but become unreachable from the root. Detaching the root is
    /// a structure violation.
    pub fn detach(&mut self, id: NodeId) -> XmlResult<()> {
        self.check(id)?;
        if id == self.root {
            return Err(XmlError::StructureViolation {
                message: "cannot detach the root node".into(),
            });
        }
        let (parent, prev, next) = {
            let n = self.node(id);
            (n.parent, n.prev_sibling, n.next_sibling)
        };
        if let Some(p) = parent {
            if self.node(p).first_child == Some(id) {
                self.node_mut(p).first_child = next;
            }
            if self.node(p).last_child == Some(id) {
                self.node_mut(p).last_child = prev;
            }
        }
        if let Some(prev) = prev {
            self.node_mut(prev).next_sibling = next;
        }
        if let Some(next) = next {
            self.node_mut(next).prev_sibling = prev;
        }
        let n = self.node_mut(id);
        n.parent = None;
        n.prev_sibling = None;
        n.next_sibling = None;
        Ok(())
    }

    /// Copy the subtree of `other` rooted at `other_root` as the last child
    /// of `parent` in this tree, returning the id of the copied root.
    ///
    /// Used when reassembling a fragmented tree (the `NaiveCentralized`
    /// baseline) and by the workload generator.
    pub fn graft_tree(
        &mut self,
        parent: NodeId,
        other: &XmlTree,
        other_root: NodeId,
    ) -> XmlResult<NodeId> {
        self.check(parent)?;
        other.check(other_root)?;
        let new_root = self.append_child(parent, other.kind(other_root).clone());
        // Iterative copy to avoid recursion depth issues on deep trees.
        let mut stack: Vec<(NodeId, NodeId)> = vec![(other_root, new_root)];
        while let Some((src, dst)) = stack.pop() {
            // Collect children first so we can push them in reverse and keep
            // document order while using a stack.
            let children: Vec<NodeId> = other.children(src).collect();
            for &c in &children {
                let copied = self.append_child(dst, other.kind(c).clone());
                stack.push((c, copied));
            }
        }
        Ok(new_root)
    }

    /// Extract a deep copy of the subtree rooted at `id` as a standalone tree.
    pub fn extract_subtree(&self, id: NodeId) -> XmlResult<XmlTree> {
        self.check(id)?;
        let mut out = XmlTree::new(self.kind(id).clone());
        let root = out.root();
        let children: Vec<NodeId> = self.children(id).collect();
        for c in children {
            out.graft_tree(root, self, c)?;
        }
        Ok(out)
    }

    /// Replace the payload of a node (used by the fragmenter to swap a real
    /// subtree for a virtual placeholder).
    pub fn replace_kind(&mut self, id: NodeId, kind: NodeKind) -> XmlResult<NodeKind> {
        self.check(id)?;
        Ok(std::mem::replace(&mut self.node_mut(id).kind, kind))
    }

    // ------------------------------------------------------------------
    // Traversal
    // ------------------------------------------------------------------

    /// Iterator over the children of `id` in document order.
    pub fn children(&self, id: NodeId) -> Siblings<'_> {
        Siblings { tree: self, next: self.first_child(id) }
    }

    /// Iterator over the element children of `id` in document order.
    pub fn element_children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id).filter(move |&c| self.is_element(c))
    }

    /// Iterator over the ancestors of `id`, starting at its parent and ending
    /// at the root.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors { tree: self, next: self.parent(id) }
    }

    /// Pre-order (document order) traversal of the subtree rooted at `id`,
    /// including `id` itself.
    pub fn pre_order(&self, id: NodeId) -> PreOrder<'_> {
        PreOrder { tree: self, stack: vec![id] }
    }

    /// Strict descendants of `id` (pre-order, excluding `id`).
    pub fn descendants(&self, id: NodeId) -> Descendants<'_> {
        let mut inner = self.pre_order(id);
        inner.next(); // drop the root itself
        Descendants { inner }
    }

    /// Post-order traversal of the subtree rooted at `id` (children before
    /// parents) — the order in which the paper's Stage-1 bottom-up qualifier
    /// evaluation visits nodes.
    pub fn post_order(&self, id: NodeId) -> PostOrder<'_> {
        PostOrder { tree: self, stack: vec![(id, false)] }
    }

    /// Number of nodes in the subtree rooted at `id` (including `id`).
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.pre_order(id).count()
    }

    /// Depth of `id` (the root has depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        self.ancestors(id).count()
    }

    /// Pre-order traversal that also yields each node's depth, computed
    /// incrementally (avoids the `O(n · depth)` cost of calling
    /// [`XmlTree::depth`] per node).
    pub fn pre_order_with_depth(&self, id: NodeId) -> impl Iterator<Item = (NodeId, usize)> + '_ {
        let mut stack = vec![(id, 0usize)];
        std::iter::from_fn(move || {
            let (current, depth) = stack.pop()?;
            let children: Vec<NodeId> = self.children(current).collect();
            for &c in children.iter().rev() {
                stack.push((c, depth + 1));
            }
            Some((current, depth))
        })
    }

    /// Maximum depth over all nodes reachable from the root.
    pub fn height(&self) -> usize {
        self.pre_order_with_depth(self.root).map(|(_, d)| d).max().unwrap_or(0)
    }

    /// All reachable nodes, in document order.
    pub fn all_nodes(&self) -> PreOrder<'_> {
        self.pre_order(self.root)
    }

    /// All virtual nodes reachable from the root, in document order.
    pub fn virtual_nodes(&self) -> Vec<NodeId> {
        self.all_nodes().filter(|&n| self.is_virtual(n)).collect()
    }

    /// Find the first element (in document order) with the given label.
    pub fn find_first(&self, label: &str) -> Option<NodeId> {
        self.all_nodes().find(|&n| self.label(n) == Some(label))
    }

    /// Find every element with the given label, in document order.
    pub fn find_all(&self, label: &str) -> Vec<NodeId> {
        self.all_nodes().filter(|&n| self.label(n) == Some(label)).collect()
    }

    /// Validate the internal structure of the tree: every child points back
    /// to its parent, sibling links are consistent, and there are no cycles.
    /// Intended for tests and debug assertions; cost is `O(n)`.
    pub fn validate(&self) -> XmlResult<()> {
        let mut seen = vec![false; self.nodes.len()];
        for id in self.all_nodes() {
            let idx = id.index();
            if seen[idx] {
                return Err(XmlError::StructureViolation {
                    message: format!("node {id} reachable twice (cycle or shared child)"),
                });
            }
            seen[idx] = true;
            let mut prev: Option<NodeId> = None;
            for c in self.children(id) {
                let cn = self.node(c);
                if cn.parent != Some(id) {
                    return Err(XmlError::StructureViolation {
                        message: format!("child {c} of {id} has wrong parent link"),
                    });
                }
                if cn.prev_sibling != prev {
                    return Err(XmlError::StructureViolation {
                        message: format!("sibling chain broken at {c}"),
                    });
                }
                prev = Some(c);
            }
            if self.node(id).last_child != prev {
                return Err(XmlError::StructureViolation {
                    message: format!("last_child link of {id} is stale"),
                });
            }
        }
        Ok(())
    }
}

/// Iterator over a sibling chain.
pub struct Siblings<'a> {
    tree: &'a XmlTree,
    next: Option<NodeId>,
}

impl<'a> Iterator for Siblings<'a> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let current = self.next?;
        self.next = self.tree.next_sibling(current);
        Some(current)
    }
}

/// Iterator over ancestors, closest first.
pub struct Ancestors<'a> {
    tree: &'a XmlTree,
    next: Option<NodeId>,
}

impl<'a> Iterator for Ancestors<'a> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let current = self.next?;
        self.next = self.tree.parent(current);
        Some(current)
    }
}

/// Pre-order traversal iterator.
pub struct PreOrder<'a> {
    tree: &'a XmlTree,
    stack: Vec<NodeId>,
}

impl<'a> Iterator for PreOrder<'a> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let current = self.stack.pop()?;
        // Push children in reverse so the first child is visited first.
        let children: Vec<NodeId> = self.tree.children(current).collect();
        for &c in children.iter().rev() {
            self.stack.push(c);
        }
        Some(current)
    }
}

/// Strict-descendant traversal iterator.
pub struct Descendants<'a> {
    inner: PreOrder<'a>,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        self.inner.next()
    }
}

/// Post-order traversal iterator.
pub struct PostOrder<'a> {
    tree: &'a XmlTree,
    stack: Vec<(NodeId, bool)>,
}

impl<'a> Iterator for PostOrder<'a> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        while let Some((id, expanded)) = self.stack.pop() {
            if expanded {
                return Some(id);
            }
            self.stack.push((id, true));
            let children: Vec<NodeId> = self.tree.children(id).collect();
            for &c in children.iter().rev() {
                self.stack.push((c, false));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> XmlTree {
        // <a><b>x</b><c><d/></c></a>
        let mut t = XmlTree::with_root_element("a");
        let root = t.root();
        let b = t.append_element(root, "b");
        t.append_text(b, "x");
        let c = t.append_element(root, "c");
        t.append_element(c, "d");
        t
    }

    #[test]
    fn construction_links_are_consistent() {
        let t = sample();
        t.validate().unwrap();
        assert_eq!(t.node_count(), 5);
        let root = t.root();
        let kids: Vec<_> = t.children(root).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(t.label(kids[0]), Some("b"));
        assert_eq!(t.label(kids[1]), Some("c"));
        assert_eq!(t.parent(kids[0]), Some(root));
    }

    #[test]
    fn pre_order_is_document_order() {
        let t = sample();
        let labels: Vec<String> = t
            .all_nodes()
            .map(|n| match t.kind(n) {
                NodeKind::Element { label, .. } => label.clone(),
                NodeKind::Text { value } => format!("#{value}"),
                NodeKind::Virtual { fragment, .. } => format!("V{fragment}"),
            })
            .collect();
        assert_eq!(labels, vec!["a", "b", "#x", "c", "d"]);
    }

    #[test]
    fn post_order_visits_children_first() {
        let t = sample();
        let order: Vec<Option<String>> =
            t.post_order(t.root()).map(|n| t.label(n).map(|s| s.to_string())).collect();
        // text node has None label
        assert_eq!(
            order,
            vec![None, Some("b".into()), Some("d".into()), Some("c".into()), Some("a".into())]
        );
    }

    #[test]
    fn descendants_excludes_self() {
        let t = sample();
        assert_eq!(t.descendants(t.root()).count(), 4);
        assert_eq!(t.subtree_size(t.root()), 5);
    }

    #[test]
    fn ancestors_and_depth() {
        let t = sample();
        let d = t.find_first("d").unwrap();
        assert_eq!(t.depth(d), 2);
        let labels: Vec<_> = t.ancestors(d).map(|n| t.label(n).unwrap().to_string()).collect();
        assert_eq!(labels, vec!["c", "a"]);
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn text_of_concatenates_direct_text_children() {
        let t = sample();
        let b = t.find_first("b").unwrap();
        assert_eq!(t.text_of(b), Some("x".to_string()));
        let c = t.find_first("c").unwrap();
        assert_eq!(t.text_of(c), None);
    }

    #[test]
    fn numeric_value_strips_dollar_sign() {
        let mut t = XmlTree::with_root_element("r");
        let root = t.root();
        let buy = t.append_leaf(root, "buy", "$374");
        let qt = t.append_leaf(root, "qt", "40");
        let name = t.append_leaf(root, "name", "Anna");
        assert_eq!(t.numeric_value(buy), Some(374.0));
        assert_eq!(t.numeric_value(qt), Some(40.0));
        assert_eq!(t.numeric_value(name), None);
    }

    #[test]
    fn detach_unlinks_subtree() {
        let mut t = sample();
        let b = t.find_first("b").unwrap();
        t.detach(b).unwrap();
        t.validate().unwrap();
        let root = t.root();
        let kids: Vec<_> = t.children(root).collect();
        assert_eq!(kids.len(), 1);
        assert_eq!(t.label(kids[0]), Some("c"));
        // Arena still holds the node but it is unreachable.
        assert_eq!(t.node_count(), 5);
        assert_eq!(t.all_nodes().count(), 3);
    }

    #[test]
    fn detach_root_is_an_error() {
        let mut t = sample();
        let err = t.detach(t.root()).unwrap_err();
        assert!(matches!(err, XmlError::StructureViolation { .. }));
    }

    #[test]
    fn detach_middle_child_repairs_sibling_chain() {
        let mut t = XmlTree::with_root_element("r");
        let root = t.root();
        let a = t.append_element(root, "a");
        let b = t.append_element(root, "b");
        let c = t.append_element(root, "c");
        t.detach(b).unwrap();
        t.validate().unwrap();
        let kids: Vec<_> = t.children(root).collect();
        assert_eq!(kids, vec![a, c]);
        assert_eq!(t.next_sibling(a), Some(c));
        assert_eq!(t.node(c).prev_sibling(), Some(a));
    }

    #[test]
    fn graft_copies_deeply() {
        let src = sample();
        let mut dst = XmlTree::with_root_element("root");
        let r = dst.root();
        let copied = dst.graft_tree(r, &src, src.root()).unwrap();
        dst.validate().unwrap();
        assert_eq!(dst.label(copied), Some("a"));
        assert_eq!(dst.subtree_size(copied), 5);
        // document order preserved
        let labels: Vec<_> =
            dst.pre_order(copied).filter_map(|n| dst.label(n).map(String::from)).collect();
        assert_eq!(labels, vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn extract_subtree_round_trips() {
        let t = sample();
        let c = t.find_first("c").unwrap();
        let sub = t.extract_subtree(c).unwrap();
        assert_eq!(sub.label(sub.root()), Some("c"));
        assert_eq!(sub.all_nodes().count(), 2);
        sub.validate().unwrap();
    }

    #[test]
    fn replace_kind_swaps_payload() {
        let mut t = sample();
        let c = t.find_first("c").unwrap();
        let old = t.replace_kind(c, NodeKind::virtual_node(7, Some("c".into()))).unwrap();
        assert_eq!(old.label(), Some("c"));
        assert!(t.is_virtual(c));
        assert_eq!(t.virtual_nodes(), vec![c]);
    }

    #[test]
    fn relabel_and_set_text_value_mutate_in_place() {
        let mut t = sample();
        let b = t.find_first("b").unwrap();
        t.relabel(b, "renamed").unwrap();
        assert_eq!(t.label(b), Some("renamed"));
        let text = t.children(b).next().unwrap();
        t.set_text_value(text, "edited").unwrap();
        assert_eq!(t.text_of(b), Some("edited".to_string()));
        // Wrong node kinds are rejected.
        assert!(t.relabel(text, "nope").is_err());
        assert!(t.set_text_value(b, "nope").is_err());
        t.validate().unwrap();
    }

    #[test]
    fn reachability_tracks_detachment() {
        let mut t = sample();
        let c = t.find_first("c").unwrap();
        let d = t.find_first("d").unwrap();
        assert!(t.is_reachable(t.root()));
        assert!(t.is_reachable(d));
        t.detach(c).unwrap();
        assert!(!t.is_reachable(c));
        assert!(!t.is_reachable(d), "nodes inside a detached subtree are unreachable");
        assert!(!t.is_reachable(NodeId::from_index(999)));
    }

    #[test]
    fn attributes_set_and_get() {
        let mut t = XmlTree::with_root_element("item");
        let r = t.root();
        t.set_attribute(r, "id", "i1").unwrap();
        t.set_attribute(r, "id", "i2").unwrap();
        t.set_attribute(r, "category", "tools").unwrap();
        assert_eq!(t.attribute(r, "id"), Some("i2"));
        assert_eq!(t.attribute(r, "category"), Some("tools"));
        assert_eq!(t.attribute(r, "missing"), None);
        let txt = t.append_text(r, "x");
        assert!(t.set_attribute(txt, "a", "b").is_err());
    }

    #[test]
    fn find_all_returns_document_order() {
        let mut t = XmlTree::with_root_element("r");
        let root = t.root();
        let a1 = t.append_element(root, "x");
        let inner = t.append_element(a1, "x");
        let a2 = t.append_element(root, "x");
        assert_eq!(t.find_all("x"), vec![a1, inner, a2]);
        assert_eq!(t.find_first("x"), Some(a1));
        assert_eq!(t.find_first("zzz"), None);
    }

    #[test]
    fn invalid_node_id_is_reported() {
        let t = sample();
        let bad = NodeId::from_index(999);
        assert!(matches!(t.try_node(bad), Err(XmlError::InvalidNodeId { id: 999 })));
    }

    #[test]
    fn deep_tree_does_not_overflow_stack() {
        // 50_000-deep chain exercises the iterative traversals and graft.
        let mut t = XmlTree::with_root_element("n0");
        let mut cur = t.root();
        for i in 1..50_000 {
            cur = t.append_element(cur, format!("n{i}"));
        }
        assert_eq!(t.all_nodes().count(), 50_000);
        assert_eq!(t.post_order(t.root()).count(), 50_000);
        assert_eq!(t.height(), 49_999);
        let sub = t.extract_subtree(t.root()).unwrap();
        assert_eq!(sub.all_nodes().count(), 50_000);
    }
}

//! Node identifiers and node payloads of the arena tree.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node inside an [`crate::XmlTree`] arena.
///
/// `NodeId`s are cheap to copy and are only meaningful together with the tree
/// that produced them. They are stable for the lifetime of the tree: nodes
/// are never physically removed from the arena (detaching a subtree only
/// unlinks it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index into the arena. Exposed so that other crates (fragmentation,
    /// the distributed simulator) can use node ids as map keys or serialize
    /// them into messages.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build a `NodeId` from a raw index.
    ///
    /// This does not validate that the index is in bounds for any particular
    /// tree; out-of-bounds ids are caught by the tree accessors.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The payload of a node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeKind {
    /// An element node with a tag name and (possibly empty) attributes.
    Element {
        /// Tag name, e.g. `client`.
        label: String,
        /// Attribute name/value pairs in document order.
        attributes: Vec<(String, String)>,
    },
    /// A text node.
    Text {
        /// The character data.
        value: String,
    },
    /// A *virtual node*: a placeholder standing in for a sub-fragment that is
    /// stored at another site (§2.1 of the paper). The `fragment` field holds
    /// the identifier of the missing fragment as assigned by the
    /// fragmentation layer.
    Virtual {
        /// Identifier of the fragment this placeholder stands for.
        fragment: usize,
        /// Label of the root element of the missing fragment, when known.
        /// Keeping it here lets the XPath-annotation optimization reason
        /// about paths that cross fragment boundaries.
        root_label: Option<String>,
    },
}

impl NodeKind {
    /// Convenience constructor for an element without attributes.
    pub fn element(label: impl Into<String>) -> Self {
        NodeKind::Element { label: label.into(), attributes: Vec::new() }
    }

    /// Convenience constructor for a text node.
    pub fn text(value: impl Into<String>) -> Self {
        NodeKind::Text { value: value.into() }
    }

    /// Convenience constructor for a virtual node.
    pub fn virtual_node(fragment: usize, root_label: Option<String>) -> Self {
        NodeKind::Virtual { fragment, root_label }
    }

    /// Is this an element node?
    pub fn is_element(&self) -> bool {
        matches!(self, NodeKind::Element { .. })
    }

    /// Is this a text node?
    pub fn is_text(&self) -> bool {
        matches!(self, NodeKind::Text { .. })
    }

    /// Is this a virtual (placeholder) node?
    pub fn is_virtual(&self) -> bool {
        matches!(self, NodeKind::Virtual { .. })
    }

    /// Element label, if this is an element.
    pub fn label(&self) -> Option<&str> {
        match self {
            NodeKind::Element { label, .. } => Some(label),
            _ => None,
        }
    }

    /// Text content, if this is a text node.
    pub fn text_value(&self) -> Option<&str> {
        match self {
            NodeKind::Text { value } => Some(value),
            _ => None,
        }
    }

    /// The fragment id, if this is a virtual node.
    pub fn virtual_fragment(&self) -> Option<usize> {
        match self {
            NodeKind::Virtual { fragment, .. } => Some(*fragment),
            _ => None,
        }
    }
}

/// A node of the arena: its payload plus the structural links.
///
/// Links use `Option<NodeId>` rather than sentinel values so that corrupted
/// links are impossible to construct by accident.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// The node payload.
    pub kind: NodeKind,
    pub(crate) parent: Option<NodeId>,
    pub(crate) first_child: Option<NodeId>,
    pub(crate) last_child: Option<NodeId>,
    pub(crate) next_sibling: Option<NodeId>,
    pub(crate) prev_sibling: Option<NodeId>,
}

impl Node {
    pub(crate) fn new(kind: NodeKind) -> Self {
        Node {
            kind,
            parent: None,
            first_child: None,
            last_child: None,
            next_sibling: None,
            prev_sibling: None,
        }
    }

    /// Parent of this node, if any.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// First child of this node, if any.
    pub fn first_child(&self) -> Option<NodeId> {
        self.first_child
    }

    /// Last child of this node, if any.
    pub fn last_child(&self) -> Option<NodeId> {
        self.last_child
    }

    /// Next sibling in document order, if any.
    pub fn next_sibling(&self) -> Option<NodeId> {
        self.next_sibling
    }

    /// Previous sibling in document order, if any.
    pub fn prev_sibling(&self) -> Option<NodeId> {
        self.prev_sibling
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_index() {
        let id = NodeId::from_index(17);
        assert_eq!(id.index(), 17);
        assert_eq!(id.to_string(), "n17");
    }

    #[test]
    fn kind_predicates() {
        let e = NodeKind::element("broker");
        assert!(e.is_element());
        assert!(!e.is_text());
        assert!(!e.is_virtual());
        assert_eq!(e.label(), Some("broker"));
        assert_eq!(e.text_value(), None);

        let t = NodeKind::text("GOOG");
        assert!(t.is_text());
        assert_eq!(t.text_value(), Some("GOOG"));
        assert_eq!(t.label(), None);

        let v = NodeKind::virtual_node(3, Some("market".into()));
        assert!(v.is_virtual());
        assert_eq!(v.virtual_fragment(), Some(3));
        assert_eq!(v.label(), None);
    }

    #[test]
    fn new_node_has_no_links() {
        let n = Node::new(NodeKind::element("a"));
        assert!(n.parent().is_none());
        assert!(n.first_child().is_none());
        assert!(n.last_child().is_none());
        assert!(n.next_sibling().is_none());
        assert!(n.prev_sibling().is_none());
    }

    #[test]
    fn node_ids_order_by_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
    }
}

//! A small, dependency-free XML parser.
//!
//! Supports the subset of XML the paper's documents need:
//!
//! * elements with attributes (single- or double-quoted),
//! * character data with the five predefined entities,
//! * self-closing tags,
//! * XML declarations (`<?xml ...?>`), processing instructions, comments and
//!   DOCTYPE declarations (all skipped),
//! * CDATA sections.
//!
//! Namespaces are treated syntactically: a tag `ns:name` is kept verbatim as
//! the element label. Whitespace-only text between elements is dropped by
//! default (the paper's data model has no mixed content), which can be
//! changed with [`Parser::keep_whitespace`].

use crate::error::{XmlError, XmlResult};
use crate::node::NodeKind;
use crate::tree::XmlTree;

/// Parse a document with default options.
pub fn parse(input: &str) -> XmlResult<XmlTree> {
    Parser::new().parse(input)
}

/// Configurable XML parser.
#[derive(Debug, Clone)]
pub struct Parser {
    keep_whitespace: bool,
}

impl Default for Parser {
    fn default() -> Self {
        Parser::new()
    }
}

impl Parser {
    /// Create a parser with default options (whitespace-only text dropped).
    pub fn new() -> Self {
        Parser { keep_whitespace: false }
    }

    /// Keep whitespace-only text nodes instead of dropping them.
    pub fn keep_whitespace(mut self, keep: bool) -> Self {
        self.keep_whitespace = keep;
        self
    }

    /// Parse `input` into an [`XmlTree`].
    pub fn parse(&self, input: &str) -> XmlResult<XmlTree> {
        let mut cursor = Cursor { bytes: input.as_bytes(), pos: 0 };
        cursor.skip_prolog()?;

        // The root element.
        let (label, attributes, self_closing) = cursor.read_open_tag()?;
        let mut tree = XmlTree::new(NodeKind::Element { label: label.clone(), attributes });
        if !self_closing {
            let mut open_stack = vec![(tree.root(), label)];
            self.parse_content(&mut cursor, &mut tree, &mut open_stack)?;
            if !open_stack.is_empty() {
                return Err(XmlError::UnexpectedEof {
                    offset: cursor.pos,
                    expected: format!("closing tag </{}>", open_stack.last().unwrap().1),
                });
            }
        }
        cursor.skip_misc();
        if !cursor.at_end() {
            return Err(XmlError::TrailingContent { offset: cursor.pos });
        }
        Ok(tree)
    }

    fn parse_content(
        &self,
        cursor: &mut Cursor<'_>,
        tree: &mut XmlTree,
        open_stack: &mut Vec<(crate::NodeId, String)>,
    ) -> XmlResult<()> {
        while !open_stack.is_empty() {
            if cursor.at_end() {
                return Ok(());
            }
            if cursor.peek() == Some(b'<') {
                match cursor.peek_at(1) {
                    Some(b'/') => {
                        let close = cursor.read_close_tag()?;
                        let (_, open_label) = open_stack.last().unwrap();
                        if *open_label != close {
                            return Err(XmlError::MismatchedTag {
                                offset: cursor.pos,
                                open: open_label.clone(),
                                close,
                            });
                        }
                        open_stack.pop();
                    }
                    Some(b'!') => {
                        if cursor.starts_with(b"<![CDATA[") {
                            let text = cursor.read_cdata()?;
                            let parent = open_stack.last().unwrap().0;
                            if self.keep_whitespace || !text.trim().is_empty() {
                                tree.append_text(parent, text);
                            }
                        } else {
                            cursor.skip_comment_or_doctype()?;
                        }
                    }
                    Some(b'?') => cursor.skip_pi()?,
                    _ => {
                        let (label, attributes, self_closing) = cursor.read_open_tag()?;
                        let parent = open_stack.last().unwrap().0;
                        let id = tree.append_child(
                            parent,
                            NodeKind::Element { label: label.clone(), attributes },
                        );
                        if !self_closing {
                            open_stack.push((id, label));
                        }
                    }
                }
            } else {
                let text = cursor.read_text()?;
                let parent = open_stack.last().unwrap().0;
                if self.keep_whitespace || !text.trim().is_empty() {
                    tree.append_text(parent, text);
                }
            }
        }
        Ok(())
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.bytes.get(self.pos + offset).copied()
    }

    fn starts_with(&self, prefix: &[u8]) -> bool {
        self.bytes[self.pos..].starts_with(prefix)
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn expect(&mut self, byte: u8) -> XmlResult<()> {
        match self.peek() {
            Some(b) if b == byte => {
                self.pos += 1;
                Ok(())
            }
            Some(b) => Err(XmlError::UnexpectedChar {
                offset: self.pos,
                found: b as char,
                expected: format!("'{}'", byte as char),
            }),
            None => Err(XmlError::UnexpectedEof {
                offset: self.pos,
                expected: format!("'{}'", byte as char),
            }),
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn skip_prolog(&mut self) -> XmlResult<()> {
        loop {
            self.skip_whitespace();
            if self.starts_with(b"<?") {
                self.skip_pi()?;
            } else if self.starts_with(b"<!--") || self.starts_with(b"<!DOCTYPE") {
                self.skip_comment_or_doctype()?;
            } else if self.at_end() {
                return Err(XmlError::EmptyDocument);
            } else if self.peek() == Some(b'<') {
                return Ok(());
            } else {
                return Err(XmlError::UnexpectedChar {
                    offset: self.pos,
                    found: self.peek().unwrap() as char,
                    expected: "'<' starting the root element".into(),
                });
            }
        }
    }

    /// Skip comments, PIs and whitespace after the root element.
    fn skip_misc(&mut self) {
        loop {
            self.skip_whitespace();
            if self.starts_with(b"<?") {
                if self.skip_pi().is_err() {
                    return;
                }
            } else if self.starts_with(b"<!--") {
                if self.skip_comment_or_doctype().is_err() {
                    return;
                }
            } else {
                return;
            }
        }
    }

    fn skip_pi(&mut self) -> XmlResult<()> {
        // assumes starts_with "<?"
        self.pos += 2;
        while !self.at_end() {
            if self.starts_with(b"?>") {
                self.pos += 2;
                return Ok(());
            }
            self.pos += 1;
        }
        Err(XmlError::UnexpectedEof { offset: self.pos, expected: "'?>'".into() })
    }

    fn skip_comment_or_doctype(&mut self) -> XmlResult<()> {
        if self.starts_with(b"<!--") {
            self.pos += 4;
            while !self.at_end() {
                if self.starts_with(b"-->") {
                    self.pos += 3;
                    return Ok(());
                }
                self.pos += 1;
            }
            Err(XmlError::UnexpectedEof { offset: self.pos, expected: "'-->'".into() })
        } else {
            // DOCTYPE or other <!...> construct: skip to matching '>',
            // tolerating one level of [] internal subset.
            self.pos += 2;
            let mut depth = 0usize;
            while let Some(b) = self.bump() {
                match b {
                    b'[' => depth += 1,
                    b']' => depth = depth.saturating_sub(1),
                    b'>' if depth == 0 => return Ok(()),
                    _ => {}
                }
            }
            Err(XmlError::UnexpectedEof { offset: self.pos, expected: "'>'".into() })
        }
    }

    fn read_cdata(&mut self) -> XmlResult<String> {
        // assumes starts_with "<![CDATA["
        self.pos += 9;
        let start = self.pos;
        while !self.at_end() {
            if self.starts_with(b"]]>") {
                let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                self.pos += 3;
                return Ok(text);
            }
            self.pos += 1;
        }
        Err(XmlError::UnexpectedEof { offset: self.pos, expected: "']]>'".into() })
    }

    fn read_name(&mut self) -> XmlResult<String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(XmlError::UnexpectedChar {
                offset: self.pos,
                found: self.peek().map(|b| b as char).unwrap_or('\0'),
                expected: "a tag or attribute name".into(),
            });
        }
        Ok(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
    }

    #[allow(clippy::type_complexity)]
    fn read_open_tag(&mut self) -> XmlResult<(String, Vec<(String, String)>, bool)> {
        self.expect(b'<')?;
        let label = self.read_name()?;
        let mut attributes = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    return Ok((label, attributes, false));
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok((label, attributes, true));
                }
                Some(_) => {
                    let name = self.read_name()?;
                    self.skip_whitespace();
                    self.expect(b'=')?;
                    self.skip_whitespace();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => {
                            self.pos += 1;
                            q
                        }
                        Some(b) => {
                            return Err(XmlError::UnexpectedChar {
                                offset: self.pos,
                                found: b as char,
                                expected: "'\"' or '\\''".into(),
                            })
                        }
                        None => {
                            return Err(XmlError::UnexpectedEof {
                                offset: self.pos,
                                expected: "attribute value".into(),
                            })
                        }
                    };
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.at_end() {
                        return Err(XmlError::UnexpectedEof {
                            offset: self.pos,
                            expected: "closing quote".into(),
                        });
                    }
                    let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.pos += 1; // closing quote
                    attributes.push((name, unescape(&raw)));
                }
                None => {
                    return Err(XmlError::UnexpectedEof {
                        offset: self.pos,
                        expected: "'>' closing the tag".into(),
                    })
                }
            }
        }
    }

    fn read_close_tag(&mut self) -> XmlResult<String> {
        self.expect(b'<')?;
        self.expect(b'/')?;
        let name = self.read_name()?;
        self.skip_whitespace();
        self.expect(b'>')?;
        Ok(name)
    }

    fn read_text(&mut self) -> XmlResult<String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'<' {
                break;
            }
            self.pos += 1;
        }
        let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        Ok(unescape(&raw))
    }
}

/// Replace the five predefined XML entities and decimal/hex character
/// references with their characters. Unknown entities are kept verbatim.
fn unescape(input: &str) -> String {
    if !input.contains('&') {
        return input.to_string();
    }
    let mut out = String::with_capacity(input.len());
    let mut chars = input.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        if c != '&' {
            out.push(c);
            continue;
        }
        if let Some(end) = input[i..].find(';') {
            let entity = &input[i + 1..i + end];
            let replacement = match entity {
                "lt" => Some('<'),
                "gt" => Some('>'),
                "amp" => Some('&'),
                "apos" => Some('\''),
                "quot" => Some('"'),
                _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                    u32::from_str_radix(&entity[2..], 16).ok().and_then(char::from_u32)
                }
                _ if entity.starts_with('#') => {
                    entity[1..].parse::<u32>().ok().and_then(char::from_u32)
                }
                _ => None,
            };
            if let Some(r) = replacement {
                out.push(r);
                // Skip the rest of the entity.
                while let Some(&(j, _)) = chars.peek() {
                    if j <= i + end {
                        chars.next();
                    } else {
                        break;
                    }
                }
                continue;
            }
        }
        out.push('&');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeKind;

    #[test]
    fn parses_nested_elements_and_text() {
        let t =
            parse("<clientele><client><name>Anna</name><country>US</country></client></clientele>")
                .unwrap();
        t.validate().unwrap();
        assert_eq!(t.label(t.root()), Some("clientele"));
        let name = t.find_first("name").unwrap();
        assert_eq!(t.text_of(name), Some("Anna".into()));
        let country = t.find_first("country").unwrap();
        assert_eq!(t.text_of(country), Some("US".into()));
    }

    #[test]
    fn parses_attributes_single_and_double_quotes() {
        let t = parse(r#"<item id="i7" category='tools' empty=""/>"#).unwrap();
        let r = t.root();
        assert_eq!(t.attribute(r, "id"), Some("i7"));
        assert_eq!(t.attribute(r, "category"), Some("tools"));
        assert_eq!(t.attribute(r, "empty"), Some(""));
    }

    #[test]
    fn self_closing_and_empty_elements_are_equivalent_in_structure() {
        let a = parse("<a><b/></a>").unwrap();
        let b = parse("<a><b></b></a>").unwrap();
        assert_eq!(a.all_nodes().count(), b.all_nodes().count());
    }

    #[test]
    fn skips_declaration_comments_doctype_and_pis() {
        let src = r#"<?xml version="1.0" encoding="UTF-8"?>
            <!DOCTYPE sites [ <!ELEMENT sites ANY> ]>
            <!-- clientele snapshot -->
            <sites><?target data?><site/></sites>
            <!-- trailing -->"#;
        let t = parse(src).unwrap();
        assert_eq!(t.label(t.root()), Some("sites"));
        assert_eq!(t.all_nodes().count(), 2);
    }

    #[test]
    fn whitespace_only_text_is_dropped_by_default_but_can_be_kept() {
        let src = "<a>\n  <b>x</b>\n</a>";
        let t = parse(src).unwrap();
        assert_eq!(t.all_nodes().count(), 3);
        let t = Parser::new().keep_whitespace(true).parse(src).unwrap();
        assert_eq!(t.all_nodes().count(), 5);
    }

    #[test]
    fn entities_are_unescaped() {
        let t = parse(
            "<m><v>a &lt; b &amp;&amp; c &gt; d</v><q a=\"&quot;x&quot;\"/><u>&#65;&#x42;</u></m>",
        )
        .unwrap();
        let v = t.find_first("v").unwrap();
        assert_eq!(t.text_of(v), Some("a < b && c > d".into()));
        let q = t.find_first("q").unwrap();
        assert_eq!(t.attribute(q, "a"), Some("\"x\""));
        let u = t.find_first("u").unwrap();
        assert_eq!(t.text_of(u), Some("AB".into()));
    }

    #[test]
    fn unknown_entity_is_left_verbatim() {
        let t = parse("<a>&nbsp;x</a>").unwrap();
        let txt: Vec<_> = t
            .all_nodes()
            .filter_map(|n| match t.kind(n) {
                NodeKind::Text { value } => Some(value.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(txt, vec!["&nbsp;x".to_string()]);
    }

    #[test]
    fn cdata_preserves_raw_text() {
        let t = parse("<a><![CDATA[1 < 2 && 3 > 2]]></a>").unwrap();
        assert_eq!(t.text_of(t.root()), Some("1 < 2 && 3 > 2".into()));
    }

    #[test]
    fn mismatched_tag_is_an_error() {
        let err = parse("<a><b></a></b>").unwrap_err();
        assert!(
            matches!(err, XmlError::MismatchedTag { open, close, .. } if open == "b" && close == "a")
        );
    }

    #[test]
    fn truncated_document_is_an_error() {
        assert!(matches!(parse("<a><b>"), Err(XmlError::UnexpectedEof { .. })));
        assert!(matches!(parse("<a attr="), Err(XmlError::UnexpectedEof { .. })));
        assert!(matches!(parse(""), Err(XmlError::EmptyDocument)));
        assert!(matches!(parse("   \n  "), Err(XmlError::EmptyDocument)));
    }

    #[test]
    fn trailing_content_is_an_error() {
        assert!(matches!(parse("<a/>garbage"), Err(XmlError::TrailingContent { .. })));
        assert!(matches!(parse("<a/><b/>"), Err(XmlError::TrailingContent { .. })));
    }

    #[test]
    fn namespaced_tags_are_kept_verbatim() {
        let t = parse("<ns:a xmlns:ns='urn:x'><ns:b/></ns:a>").unwrap();
        assert_eq!(t.label(t.root()), Some("ns:a"));
        assert!(t.find_first("ns:b").is_some());
    }

    #[test]
    fn deeply_nested_document_parses_iteratively() {
        let depth = 20_000;
        let mut src = String::new();
        for i in 0..depth {
            src.push_str(&format!("<n{i}>"));
        }
        for i in (0..depth).rev() {
            src.push_str(&format!("</n{i}>"));
        }
        let t = parse(&src).unwrap();
        assert_eq!(t.all_nodes().count(), depth);
        assert_eq!(t.height(), depth - 1);
    }

    #[test]
    fn unescape_handles_edge_cases() {
        assert_eq!(unescape("plain"), "plain");
        assert_eq!(unescape("&amp;"), "&");
        assert_eq!(unescape("&bad"), "&bad");
        assert_eq!(unescape("a&"), "a&");
        // An out-of-range character reference is kept verbatim.
        assert_eq!(unescape("&#999999999;x"), "&#999999999;x");
    }
}

//! Tree statistics used by the experiments to calibrate "virtual megabytes"
//! and by tests to compare trees structurally.

use crate::node::NodeKind;
use crate::tree::XmlTree;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregate statistics over the reachable nodes of a tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeStats {
    /// Number of reachable element nodes.
    pub element_count: usize,
    /// Number of reachable text nodes.
    pub text_count: usize,
    /// Number of reachable virtual nodes.
    pub virtual_count: usize,
    /// Maximum depth (root has depth 0).
    pub height: usize,
    /// Total bytes of text content.
    pub text_bytes: usize,
    /// Estimated serialized size in bytes (tags + text), a cheap stand-in for
    /// the on-disk size the paper reports in megabytes.
    pub approx_serialized_bytes: usize,
    /// Count of elements per label.
    pub label_histogram: BTreeMap<String, usize>,
}

impl TreeStats {
    /// Compute statistics for the reachable part of `tree`.
    pub fn compute(tree: &XmlTree) -> Self {
        let mut stats = TreeStats {
            element_count: 0,
            text_count: 0,
            virtual_count: 0,
            height: 0,
            text_bytes: 0,
            approx_serialized_bytes: 0,
            label_histogram: BTreeMap::new(),
        };
        for (id, depth) in tree.pre_order_with_depth(tree.root()) {
            match tree.kind(id) {
                NodeKind::Element { label, attributes } => {
                    stats.element_count += 1;
                    // `<label>` + `</label>`
                    stats.approx_serialized_bytes += 2 * label.len() + 5;
                    for (k, v) in attributes {
                        stats.approx_serialized_bytes += k.len() + v.len() + 4;
                    }
                    *stats.label_histogram.entry(label.clone()).or_insert(0) += 1;
                }
                NodeKind::Text { value } => {
                    stats.text_count += 1;
                    stats.text_bytes += value.len();
                    stats.approx_serialized_bytes += value.len();
                }
                NodeKind::Virtual { .. } => {
                    stats.virtual_count += 1;
                    stats.approx_serialized_bytes += 32;
                }
            }
            if depth > stats.height {
                stats.height = depth;
            }
        }
        stats
    }

    /// Total number of reachable nodes.
    pub fn total_nodes(&self) -> usize {
        self.element_count + self.text_count + self.virtual_count
    }

    /// Number of distinct element labels.
    pub fn distinct_labels(&self) -> usize {
        self.label_histogram.len()
    }

    /// How many elements carry the given label.
    pub fn count_of(&self, label: &str) -> usize {
        self.label_histogram.get(label).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse, TreeBuilder};

    #[test]
    fn counts_match_document() {
        let tree = parse("<a x=\"1\"><b>hello</b><b>world</b><c/></a>").unwrap();
        let s = TreeStats::compute(&tree);
        assert_eq!(s.element_count, 4);
        assert_eq!(s.text_count, 2);
        assert_eq!(s.virtual_count, 0);
        assert_eq!(s.total_nodes(), 6);
        assert_eq!(s.height, 2);
        assert_eq!(s.text_bytes, 10);
        assert_eq!(s.count_of("b"), 2);
        assert_eq!(s.count_of("zzz"), 0);
        assert_eq!(s.distinct_labels(), 3);
    }

    #[test]
    fn virtual_nodes_are_counted() {
        let tree = TreeBuilder::new("broker").virtual_node(1, None).virtual_node(2, None).build();
        let s = TreeStats::compute(&tree);
        assert_eq!(s.virtual_count, 2);
        assert_eq!(s.element_count, 1);
    }

    #[test]
    fn serialized_size_estimate_tracks_actual_size() {
        let tree = parse("<people><person><name>Anna Smith</name><age>34</age></person></people>")
            .unwrap();
        let s = TreeStats::compute(&tree);
        let actual = crate::to_string(&tree).len();
        // The estimate need not be exact but must be within 2x either way.
        assert!(s.approx_serialized_bytes >= actual / 2);
        assert!(s.approx_serialized_bytes <= actual * 2);
    }

    #[test]
    fn detached_subtrees_are_excluded() {
        let mut tree = parse("<a><b>hello</b><c/></a>").unwrap();
        let b = tree.find_first("b").unwrap();
        tree.detach(b).unwrap();
        let s = TreeStats::compute(&tree);
        assert_eq!(s.element_count, 2);
        assert_eq!(s.text_count, 0);
    }
}

//! # paxml-xml — the XML tree substrate
//!
//! An arena-based, in-memory XML tree used by every other crate of the
//! `paxml` workspace, together with a parser and serializer for the XML
//! subset the paper needs (elements, attributes, text, comments and
//! processing instructions are accepted on input; comments/PIs are dropped).
//!
//! The paper (Cong, Fan, Kementsietsidis, SIGMOD 2007) models an XML document
//! as an ordered, labelled tree. Distribution is modelled by *fragmenting*
//! such a tree; the missing sub-fragments are replaced by **virtual nodes**
//! (§2.1 of the paper). Virtual nodes are first-class citizens of this crate
//! ([`NodeKind::Virtual`]) so that the fragmentation layer does not need a
//! parallel tree representation.
//!
//! ## Quick example
//!
//! ```
//! use paxml_xml::{XmlTree, NodeKind};
//!
//! let tree = paxml_xml::parse("<clientele><client><name>Anna</name></client></clientele>").unwrap();
//! let root = tree.root();
//! assert_eq!(tree.label(root), Some("clientele"));
//! assert_eq!(tree.node_count(), 4); // clientele, client, name, text("Anna")
//! let names: Vec<_> = tree
//!     .descendants(root)
//!     .filter(|&n| tree.label(n) == Some("name"))
//!     .collect();
//! assert_eq!(names.len(), 1);
//! assert_eq!(tree.text_of(names[0]), Some("Anna".to_string()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod node;
mod parse;
mod path;
mod serialize;
mod stats;
mod tree;

pub use builder::TreeBuilder;
pub use error::{XmlError, XmlResult};
pub use node::{Node, NodeId, NodeKind};
pub use parse::{parse, Parser};
pub use path::{label_path, path_from_root, LabelPath};
pub use serialize::{to_string, to_string_pretty, SerializeOptions};
pub use stats::TreeStats;
pub use tree::{Ancestors, Descendants, PostOrder, PreOrder, Siblings, XmlTree};

#[cfg(test)]
mod crate_tests {
    use super::*;

    #[test]
    fn round_trip_small_document() {
        let src = "<a><b>hi</b><c x=\"1\"/></a>";
        let tree = parse(src).unwrap();
        let out = to_string(&tree);
        let tree2 = parse(&out).unwrap();
        assert_eq!(tree.node_count(), tree2.node_count());
        assert_eq!(stats::TreeStats::compute(&tree), stats::TreeStats::compute(&tree2));
    }
}

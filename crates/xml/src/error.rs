//! Error types for the XML substrate.

use std::fmt;

/// Result alias used throughout the crate.
pub type XmlResult<T> = Result<T, XmlError>;

/// Errors raised while parsing or manipulating XML trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// The input ended before the document was complete.
    UnexpectedEof {
        /// Byte offset at which the end of input was reached.
        offset: usize,
        /// What the parser was expecting when input ran out.
        expected: String,
    },
    /// An unexpected character was found in the input.
    UnexpectedChar {
        /// Byte offset of the offending character.
        offset: usize,
        /// The character that was found.
        found: char,
        /// What the parser was expecting instead.
        expected: String,
    },
    /// A closing tag did not match the currently open element.
    MismatchedTag {
        /// Byte offset of the closing tag.
        offset: usize,
        /// Name of the element that is currently open.
        open: String,
        /// Name found in the closing tag.
        close: String,
    },
    /// The document contained content after the root element closed,
    /// or more than one root element.
    TrailingContent {
        /// Byte offset of the unexpected trailing content.
        offset: usize,
    },
    /// The document contained no root element at all.
    EmptyDocument,
    /// A node id was used with a tree it does not belong to, or after
    /// the node was detached.
    InvalidNodeId {
        /// The offending node id (raw index).
        id: usize,
    },
    /// A structural operation would have produced an invalid tree
    /// (for instance grafting a node under one of its own descendants).
    StructureViolation {
        /// Human-readable description of the violated invariant.
        message: String,
    },
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::UnexpectedEof { offset, expected } => {
                write!(f, "unexpected end of input at offset {offset}: expected {expected}")
            }
            XmlError::UnexpectedChar { offset, found, expected } => {
                write!(f, "unexpected character {found:?} at offset {offset}: expected {expected}")
            }
            XmlError::MismatchedTag { offset, open, close } => {
                write!(f, "mismatched closing tag </{close}> at offset {offset}: <{open}> is open")
            }
            XmlError::TrailingContent { offset } => {
                write!(f, "trailing content after document root at offset {offset}")
            }
            XmlError::EmptyDocument => write!(f, "document contains no root element"),
            XmlError::InvalidNodeId { id } => write!(f, "invalid node id {id}"),
            XmlError::StructureViolation { message } => {
                write!(f, "tree structure violation: {message}")
            }
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = XmlError::UnexpectedEof { offset: 10, expected: "'>'".into() };
        assert!(e.to_string().contains("offset 10"));
        let e = XmlError::MismatchedTag { offset: 3, open: "a".into(), close: "b".into() };
        assert!(e.to_string().contains("</b>"));
        assert!(e.to_string().contains("<a>"));
        let e = XmlError::InvalidNodeId { id: 42 };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(XmlError::EmptyDocument, XmlError::EmptyDocument);
        assert_ne!(XmlError::EmptyDocument, XmlError::TrailingContent { offset: 0 });
    }
}

//! Property-based tests for the XML substrate: the parser never panics on
//! arbitrary input, serialization round-trips structurally, and the builder /
//! tree invariants hold for randomly shaped trees.

use paxml_xml::{parse, to_string, to_string_pretty, NodeKind, Parser, TreeStats, XmlTree};
use proptest::prelude::*;

const LABELS: &[&str] = &["a", "b", "site", "person", "name"];

/// Build a random tree from (parent, kind) instructions.
fn build_tree(spec: &[(usize, usize)], texts: &[String]) -> XmlTree {
    let mut tree = XmlTree::with_root_element("root");
    let mut elements = vec![tree.root()];
    for (i, &(parent_choice, kind)) in spec.iter().enumerate() {
        let parent = elements[parent_choice % elements.len()];
        match kind % 3 {
            0 | 1 => {
                let id = tree.append_element(parent, LABELS[kind % LABELS.len()]);
                if kind % 7 == 0 {
                    tree.set_attribute(id, "id", format!("n{i}")).unwrap();
                }
                elements.push(id);
            }
            _ => {
                let text = texts.get(i % texts.len().max(1)).cloned().unwrap_or_default();
                tree.append_child(parent, NodeKind::text(text));
            }
        }
    }
    tree
}

fn tree_strategy() -> impl Strategy<Value = XmlTree> {
    (
        prop::collection::vec((0usize..500, 0usize..21), 0..80),
        // Printable, non-whitespace text payloads (whitespace-only text nodes
        // are intentionally dropped by the parser, which would break the
        // fixed-point check below).
        prop::collection::vec("[!-~]{1,12}", 1..6),
    )
        .prop_map(|(spec, texts)| build_tree(&spec, &texts))
}

proptest! {
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in "[ -~<>&\"']{0,200}") {
        // Any outcome is fine as long as it is a clean Ok/Err, never a panic.
        let _ = parse(&input);
        let _ = Parser::new().keep_whitespace(true).parse(&input);
    }

    #[test]
    fn serialize_parse_round_trip_preserves_structure(tree in tree_strategy()) {
        prop_assert!(tree.validate().is_ok());
        let compact = to_string(&tree);
        let reparsed = parse(&compact).expect("serializer output must parse");
        // Compact serialization is a fixed point after one round trip.
        prop_assert_eq!(to_string(&reparsed), compact);

        // Pretty-printing may drop whitespace-only text nodes on reparse but
        // must preserve every element and its label histogram.
        let pretty = to_string_pretty(&tree);
        let pretty_reparsed = parse(&pretty).expect("pretty output must parse");
        let a = TreeStats::compute(&tree);
        let b = TreeStats::compute(&pretty_reparsed);
        prop_assert_eq!(a.element_count, b.element_count);
        prop_assert_eq!(a.label_histogram, b.label_histogram);
    }

    #[test]
    fn stats_and_traversals_are_consistent(tree in tree_strategy()) {
        let stats = TreeStats::compute(&tree);
        prop_assert_eq!(stats.total_nodes(), tree.all_nodes().count());
        prop_assert_eq!(stats.height, tree.height());
        // Pre-order and post-order visit exactly the same node set.
        let mut pre: Vec<_> = tree.all_nodes().collect();
        let mut post: Vec<_> = tree.post_order(tree.root()).collect();
        pre.sort();
        post.sort();
        prop_assert_eq!(pre, post);
        // Every non-root reachable node's parent chain reaches the root.
        for n in tree.all_nodes() {
            prop_assert_eq!(tree.ancestors(n).last().unwrap_or(n), tree.root());
        }
    }

    #[test]
    fn subtree_extraction_matches_subtree_size(tree in tree_strategy()) {
        for n in tree.all_nodes().take(10) {
            let sub = tree.extract_subtree(n).expect("reachable nodes extract");
            prop_assert_eq!(sub.all_nodes().count(), tree.subtree_size(n));
            prop_assert!(sub.validate().is_ok());
        }
    }
}

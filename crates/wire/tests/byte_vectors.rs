//! The codec side of the shared wire-layout byte vectors: for every
//! canonical case in `tests/common/wire_vectors.rs` (repo root), assert
//! that [`paxml_wire::encode`] produces exactly those bytes and that
//! [`paxml_wire::decode`] recovers the original value. The mirror test in
//! `crates/distsim/tests/byte_vectors.rs` holds `encoded_size` to the
//! same vectors, pinning the simulator's byte meter and the socket
//! transport's codec to one layout.

use std::collections::BTreeMap;

macro_rules! case {
    ($name:ident, $ty:ty, $value:expr, [$($byte:expr),* $(,)?]) => {
        #[test]
        fn $name() {
            let value: $ty = $value;
            let expected: &[u8] = &[$($byte),*];
            let encoded = paxml_wire::encode(&value);
            assert_eq!(
                encoded, expected,
                "encode disagrees with the canonical byte vector for {}",
                stringify!($name),
            );
            let decoded: $ty = paxml_wire::decode(expected)
                .expect("canonical bytes must decode");
            assert_eq!(
                decoded, value,
                "decode(canonical bytes) did not recover the value for {}",
                stringify!($name),
            );
        }
    };
}

include!("../../../tests/common/wire_vectors.rs");

//! Property tests for the wire codec, at two levels.
//!
//! First, plain values: for proptest-generated integers, strings, options,
//! sequences and maps, `decode(encode(v)) == v` and
//! `encode(v).len() == paxml_distsim::encoded_size(v)` — the codec and the
//! simulator's byte meter implement one layout.
//!
//! Second, live protocol messages: a [`RecordingTransport`] wraps the
//! in-process simulator and, for every [`EpochRequest`] envelope and
//! [`ProtocolResponse`] that actually crosses it, asserts the same two
//! properties plus re-encode stability (`encode(decode(encode(m))) ==
//! encode(m)`). Random workloads — single queries, prepared sessions,
//! batches and update streams under every algorithm — then push every
//! message variant the drivers produce through those assertions.

use paxml_core::{
    dispatch, Algorithm, EpochRequest, PaxResult, PaxServer, ProtocolResponse, Transport,
};
use paxml_distsim::{encoded_size, Cluster, ClusterStats, Placement, SiteId};
use paxml_fragment::FragmentId;
use paxml_wire::{decode, encode};
use paxml_xmark::{clientele_fragmentation, UpdateWorkload, CLIENTELE_QUERY_EXAMPLES};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Assert the codec invariants for one message, returning the decoded
/// copy so the round actually runs on what came off the wire.
fn check_roundtrip<T>(message: &T, kind: &str) -> T
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    let bytes = encode(message);
    assert_eq!(
        bytes.len() as u64,
        encoded_size(message),
        "{kind}: encode and encoded_size disagree on the byte count"
    );
    let decoded: T = decode(&bytes).unwrap_or_else(|e| panic!("{kind}: decode failed: {e}"));
    assert_eq!(encode(&decoded), bytes, "{kind}: decoding and re-encoding changed the bytes");
    decoded
}

/// A simulator cluster that round-trips every protocol message through
/// the codec before (requests) and after (responses) dispatching it, so
/// whatever a workload sends is exactly what a socket would carry.
struct RecordingTransport {
    inner: Cluster,
    messages_checked: AtomicU64,
}

impl RecordingTransport {
    fn new(inner: Cluster) -> RecordingTransport {
        RecordingTransport { inner, messages_checked: AtomicU64::new(0) }
    }
}

impl Transport for RecordingTransport {
    fn round_recorded(
        &self,
        recorder: &mut ClusterStats,
        requests: BTreeMap<SiteId, EpochRequest>,
    ) -> PaxResult<BTreeMap<SiteId, ProtocolResponse>> {
        let decoded_requests: BTreeMap<SiteId, EpochRequest> = requests
            .into_iter()
            .map(|(site, request)| {
                self.messages_checked.fetch_add(1, Ordering::Relaxed);
                (site, check_roundtrip(&request, "request"))
            })
            .collect();
        let responses = Cluster::round_recorded(&self.inner, recorder, decoded_requests, dispatch);
        Ok(responses
            .into_iter()
            .map(|(site, response)| {
                self.messages_checked.fetch_add(1, Ordering::Relaxed);
                (site, check_roundtrip(&response, "response"))
            })
            .collect())
    }

    fn site_count(&self) -> usize {
        self.inner.site_count()
    }

    fn site_of(&self, fragment: FragmentId) -> SiteId {
        self.inner.site_of(fragment)
    }

    fn occupied_sites(&self) -> BTreeSet<SiteId> {
        self.inner.occupied_sites()
    }

    fn allocate_slots(&self, n: usize) -> usize {
        self.inner.allocate_slots(n)
    }

    fn stats(&self) -> ClusterStats {
        self.inner.stats()
    }

    fn reset(&self) {
        self.inner.reset()
    }

    fn scratch_len(&self, site: SiteId) -> usize {
        self.inner.inspect_site(site).scratch_len()
    }

    // No `as_cluster` override: drivers must not bypass the recording.
}

/// Strings over the full Latin-1 range, so multi-byte UTF-8 shows up.
fn string_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(any::<u8>(), 0..40)
        .prop_map(|bytes| bytes.into_iter().map(char::from).collect())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn plain_values_roundtrip_and_match_encoded_size(
        unsigned in any::<u64>(),
        signed in any::<i64>(),
        small in any::<u16>(),
        real_bits in any::<u64>(),
        text in string_strategy(),
        maybe in (any::<bool>(), any::<u32>()),
        numbers in prop::collection::vec(any::<i32>(), 0..20),
        entries in prop::collection::vec((any::<u32>(), string_strategy()), 0..8),
    ) {
        let maybe: Option<u32> = maybe.0.then_some(maybe.1);
        let table: BTreeMap<u32, String> = entries.into_iter().collect();
        check_roundtrip(&unsigned, "u64");
        check_roundtrip(&signed, "i64");
        check_roundtrip(&small, "u16");
        check_roundtrip(&text, "string");
        check_roundtrip(&maybe, "option");
        check_roundtrip(&numbers, "vec");
        check_roundtrip(&table, "map");
        // NaN != NaN would trip the equality assert; bytes still must agree.
        let real = f64::from_bits(real_bits);
        if !real.is_nan() {
            check_roundtrip(&real, "f64");
        } else {
            prop_assert_eq!(encode(&real).len() as u64, encoded_size(&real));
        }
        let nested: BTreeMap<u16, Option<Vec<i32>>> =
            [(small, maybe.map(|_| numbers.clone()))].into_iter().collect();
        check_roundtrip(&nested, "nested map");
    }

    #[test]
    fn protocol_messages_roundtrip_under_random_workloads(
        algorithm_pick in 0usize..3,
        annotations in any::<bool>(),
        query_picks in prop::collection::vec(0usize..CLIENTELE_QUERY_EXAMPLES.len(), 1..4),
        update_seed in any::<u64>(),
        update_rounds in 0usize..3,
    ) {
        let algorithm =
            [Algorithm::NaiveCentralized, Algorithm::PaX2, Algorithm::PaX3][algorithm_pick];
        let (tree, fragmented) = clientele_fragmentation();
        let transport = Arc::new(RecordingTransport::new(Cluster::new(
            &fragmented,
            4,
            Placement::RoundRobin,
        )));
        let server = PaxServer::builder()
            .algorithm(algorithm)
            .annotations(annotations)
            .deploy_over(&fragmented, transport.clone())
            .expect("deploy over recording transport");

        // Single queries (classic engines) and prepared executions.
        for &pick in &query_picks {
            let (query, _) = CLIENTELE_QUERY_EXAMPLES[pick];
            server.query_once(query).expect("query_once");
            server.execute_text(query).expect("execute_text");
        }
        // One batch over all picked queries.
        let texts: Vec<&str> =
            query_picks.iter().map(|&p| CLIENTELE_QUERY_EXAMPLES[p].0).collect();
        server.execute_batch_text(&texts).expect("execute_batch_text");
        // Update batches keep the prepared sessions fresh over the wire.
        let mut workload =
            UpdateWorkload::new(&fragmented, tree.all_nodes().count(), update_seed);
        for _ in 0..update_rounds {
            let batch = workload.next_batch(3, 2);
            server.apply_updates(&batch).expect("apply_updates");
        }
        prop_assert!(
            transport.messages_checked.load(Ordering::Relaxed) > 0,
            "the workload exercised no protocol messages"
        );
    }
}

/// Deterministic sweep asserting that the workloads above actually cover
/// every protocol message variant the drivers can emit, so the property
/// test is not vacuously green on some of them.
#[test]
fn workloads_cover_every_protocol_message_variant() {
    use std::sync::Mutex;

    struct TaggingTransport {
        inner: Cluster,
        seen: Mutex<BTreeSet<String>>,
    }

    impl Transport for TaggingTransport {
        fn round_recorded(
            &self,
            recorder: &mut ClusterStats,
            requests: BTreeMap<SiteId, EpochRequest>,
        ) -> PaxResult<BTreeMap<SiteId, ProtocolResponse>> {
            let checked: BTreeMap<SiteId, EpochRequest> = requests
                .into_iter()
                .map(|(site, request)| (site, check_roundtrip(&request, "request")))
                .collect();
            let responses = Cluster::round_recorded(&self.inner, recorder, checked, dispatch);
            let mut seen = self.seen.lock().unwrap();
            for response in responses.values() {
                seen.insert(response.kind().to_string());
                check_roundtrip(response, "response");
            }
            Ok(responses)
        }
        fn site_count(&self) -> usize {
            self.inner.site_count()
        }
        fn site_of(&self, fragment: FragmentId) -> SiteId {
            self.inner.site_of(fragment)
        }
        fn occupied_sites(&self) -> BTreeSet<SiteId> {
            self.inner.occupied_sites()
        }
        fn allocate_slots(&self, n: usize) -> usize {
            self.inner.allocate_slots(n)
        }
        fn stats(&self) -> ClusterStats {
            self.inner.stats()
        }
        fn reset(&self) {
            self.inner.reset()
        }
        fn scratch_len(&self, site: SiteId) -> usize {
            self.inner.inspect_site(site).scratch_len()
        }
    }

    let (tree, fragmented) = clientele_fragmentation();
    let mut all_seen = BTreeSet::new();
    for algorithm in [Algorithm::NaiveCentralized, Algorithm::PaX2, Algorithm::PaX3] {
        let transport = Arc::new(TaggingTransport {
            inner: Cluster::new(&fragmented, 4, Placement::RoundRobin),
            seen: Mutex::new(BTreeSet::new()),
        });
        let server = PaxServer::builder()
            .algorithm(algorithm)
            .deploy_over(&fragmented, transport.clone())
            .expect("deploy");
        let (query, _) = CLIENTELE_QUERY_EXAMPLES[1];
        server.query_once(query).expect("query_once");
        server.execute_text(query).expect("execute_text");
        server.execute_batch_text(&[query, CLIENTELE_QUERY_EXAMPLES[0].0]).expect("batch");
        let mut workload = UpdateWorkload::new(&fragmented, tree.all_nodes().count(), 7);
        let batch = workload.next_batch(3, 2);
        server.apply_updates(&batch).expect("apply_updates");
        all_seen.extend(transport.seen.lock().unwrap().iter().cloned());
    }
    for kind in ["Qual", "Sel", "Combined", "Collect", "BatchCombined", "BatchCollect", "Fragments"]
    {
        assert!(
            all_seen.contains(kind),
            "no workload produced a {kind} response; saw {all_seen:?}"
        );
    }
    // Session refreshes ride on the update path; at least one delta flavour
    // must have crossed the transport.
    assert!(
        all_seen.contains("SessionDelta") || all_seen.contains("Delta"),
        "no update round produced a delta response; saw {all_seen:?}"
    );
}

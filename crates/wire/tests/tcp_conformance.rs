//! Cross-transport conformance, in-process edition: the same workload run
//! over a [`TcpCluster`] speaking real sockets to [`SiteServer`] threads
//! must produce bit-identical answers and meters to the `distsim`
//! simulator, for all three algorithms and for single queries, prepared
//! sessions, batches and update streams alike.
//!
//! Wall-clock meters (`busy_nanos`, `parallel_nanos`) legitimately differ
//! between the transports and are the only fields excluded from the
//! comparison. The process-level version of this oracle (sites as child
//! processes of the `paxml` binary) lives in the root package's
//! `tests/wire_cluster.rs`.

use paxml_core::{Algorithm, PaxResult, PaxServer};
use paxml_distsim::{ClusterStats, Placement, SiteId};
use paxml_fragment::FragmentedTree;
use paxml_wire::{SiteServer, TcpCluster};
use paxml_xmark::{clientele_fragmentation, UpdateWorkload, CLIENTELE_QUERY_EXAMPLES};
use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;

const SITES: usize = 4;

/// Bind `count` site servers on loopback and run each on its own thread.
/// The threads exit when the cluster's drop sends the shutdown message.
fn spawn_site_threads(count: usize) -> Vec<SocketAddr> {
    (0..count)
        .map(|_| {
            let server = SiteServer::bind("127.0.0.1:0").expect("bind site server");
            let addr = server.local_addr().expect("local addr");
            thread::spawn(move || server.run());
            addr
        })
        .collect()
}

/// A simulator server and a TCP server over fresh site threads, deployed
/// from the same fragmentation with the same placement.
fn paired_servers(
    fragmented: &FragmentedTree,
    algorithm: Algorithm,
) -> (PaxServer, PaxServer, Arc<TcpCluster>) {
    let sim = PaxServer::builder()
        .algorithm(algorithm)
        .sites(SITES)
        .placement(Placement::RoundRobin)
        .deploy(fragmented)
        .expect("deploy simulator server");
    let addrs = spawn_site_threads(SITES);
    let transport = Arc::new(
        TcpCluster::connect(fragmented, &addrs, Placement::RoundRobin)
            .expect("connect TCP cluster"),
    );
    let tcp = PaxServer::builder()
        .algorithm(algorithm)
        .deploy_over(fragmented, transport.clone())
        .expect("deploy TCP server");
    (sim, tcp, transport)
}

/// Every deterministic meter must agree; only wall-clock nanos may differ.
fn assert_stats_match(sim: &ClusterStats, tcp: &ClusterStats, context: &str) {
    assert_eq!(sim.rounds, tcp.rounds, "{context}: rounds diverged");
    assert_eq!(sim.messages, tcp.messages, "{context}: messages diverged");
    assert_eq!(sim.total_ops, tcp.total_ops, "{context}: total_ops diverged");
    assert_eq!(sim.parallel_ops, tcp.parallel_ops, "{context}: parallel_ops diverged");
    let sim_sites: Vec<SiteId> = sim.sites.keys().copied().collect();
    let tcp_sites: Vec<SiteId> = tcp.sites.keys().copied().collect();
    assert_eq!(sim_sites, tcp_sites, "{context}: different sites were visited");
    for (site, s) in &sim.sites {
        let t = &tcp.sites[site];
        assert_eq!(s.visits, t.visits, "{context}: visits diverged at site {site:?}");
        assert_eq!(s.ops, t.ops, "{context}: ops diverged at site {site:?}");
        assert_eq!(
            s.bytes_received, t.bytes_received,
            "{context}: bytes_received diverged at site {site:?}"
        );
        assert_eq!(s.bytes_sent, t.bytes_sent, "{context}: bytes_sent diverged at site {site:?}");
    }
}

/// Compare two execution reports field by field, excluding wall-clock.
fn assert_reports_match(
    sim: &PaxResult<paxml_core::ExecReport>,
    tcp: &PaxResult<paxml_core::ExecReport>,
    context: &str,
) {
    let sim = sim.as_ref().unwrap_or_else(|e| panic!("{context}: simulator failed: {e}"));
    let tcp = tcp.as_ref().unwrap_or_else(|e| panic!("{context}: TCP transport failed: {e}"));
    assert_eq!(sim.queries.len(), tcp.queries.len(), "{context}: query count diverged");
    for (qs, qt) in sim.queries.iter().zip(&tcp.queries) {
        assert_eq!(qs.query, qt.query, "{context}: query text diverged");
        assert_eq!(qs.answers, qt.answers, "{context}: answers diverged for {}", qs.query);
        assert_eq!(
            qs.fragments_evaluated, qt.fragments_evaluated,
            "{context}: fragments_evaluated diverged for {}",
            qs.query
        );
        assert_eq!(
            qs.coordinator_ops, qt.coordinator_ops,
            "{context}: coordinator_ops diverged for {}",
            qs.query
        );
    }
    if let (Some(us), Some(ut)) = (&sim.update, &tcp.update) {
        assert_eq!(us.dirty_fragments, ut.dirty_fragments, "{context}: dirty fragments diverged");
        assert_eq!(us.dirty_sites, ut.dirty_sites, "{context}: dirty sites diverged");
        assert_eq!(us.applied_ops, ut.applied_ops, "{context}: applied ops diverged");
        assert_eq!(us.rejected, ut.rejected, "{context}: rejected ops diverged");
    } else {
        assert_eq!(sim.update.is_some(), tcp.update.is_some(), "{context}: update presence");
    }
    assert_stats_match(&sim.stats, &tcp.stats, context);
}

#[test]
fn single_queries_match_simulator_for_all_algorithms() {
    let (_tree, fragmented) = clientele_fragmentation();
    for algorithm in [Algorithm::NaiveCentralized, Algorithm::PaX2, Algorithm::PaX3] {
        let (sim, tcp, _transport) = paired_servers(&fragmented, algorithm);
        for (query, _) in CLIENTELE_QUERY_EXAMPLES {
            let context = format!("{algorithm} {query}");
            assert_reports_match(&sim.query_once(query), &tcp.query_once(query), &context);
        }
        assert_stats_match(
            &sim.cumulative_stats(),
            &tcp.cumulative_stats(),
            &format!("{algorithm} cumulative"),
        );
    }
}

#[test]
fn sessions_batches_and_updates_match_simulator() {
    let (tree, fragmented) = clientele_fragmentation();
    for algorithm in [Algorithm::PaX2, Algorithm::PaX3] {
        let (sim, tcp, transport) = paired_servers(&fragmented, algorithm);
        let queries: Vec<&str> = CLIENTELE_QUERY_EXAMPLES.iter().take(3).map(|(q, _)| *q).collect();

        // Prepared single executions.
        for query in &queries {
            let ps = sim.prepare(query).expect("prepare on simulator");
            let pt = tcp.prepare(query).expect("prepare on TCP");
            assert_reports_match(
                &sim.execute(&ps),
                &tcp.execute(&pt),
                &format!("{algorithm} execute {query}"),
            );
        }

        // A batch over the same prepared set.
        assert_reports_match(
            &sim.execute_batch_text(&queries),
            &tcp.execute_batch_text(&queries),
            &format!("{algorithm} batch"),
        );

        // Update batches interleaved with re-executions: both transports
        // must apply the same deltas and serve identical refreshed answers.
        let mut sim_workload = UpdateWorkload::new(&fragmented, tree.all_nodes().count(), 0x5eed);
        let mut tcp_workload = UpdateWorkload::new(&fragmented, tree.all_nodes().count(), 0x5eed);
        for round in 0..3 {
            let sim_batch = sim_workload.next_batch(4, 2);
            let tcp_batch = tcp_workload.next_batch(4, 2);
            assert_reports_match(
                &sim.apply_updates(&sim_batch),
                &tcp.apply_updates(&tcp_batch),
                &format!("{algorithm} update round {round}"),
            );
            assert_reports_match(
                &sim.execute_text(queries[0]),
                &tcp.execute_text(queries[0]),
                &format!("{algorithm} post-update execute round {round}"),
            );
        }
        assert_stats_match(
            &sim.cumulative_stats(),
            &tcp.cumulative_stats(),
            &format!("{algorithm} cumulative after updates"),
        );

        // Scratch hygiene over the wire: after the workload, every site's
        // parked scratch is visible through the transport and reset()
        // clears both scratch and meters.
        use paxml_core::Transport;
        for site in 0..SITES {
            let _ = transport.scratch_len(SiteId(site));
        }
        transport.reset();
        let zeroed = transport.stats();
        assert_eq!(zeroed.rounds, 0, "reset must zero the round meter");
        assert_eq!(zeroed.total_ops, 0, "reset must zero the ops meter");
        for site in 0..SITES {
            assert_eq!(transport.scratch_len(SiteId(site)), 0, "reset must clear site scratch");
        }
    }
}

//! `paxml-wire` — the real network transport for PaX: sites as processes
//! behind TCP sockets, with the in-process simulator as conformance oracle.
//!
//! The crate has four layers, each usable on its own:
//!
//! * [`codec`] — [`encode`]/[`decode`] for every protocol message, in
//!   exactly the compact binary layout `paxml_distsim::encoded_size`
//!   charges (LEB128 varints, zig-zag signing, one-byte tags), so the byte
//!   meters of the simulator and of the socket transport agree bit for bit;
//! * [`frame`] — length-prefixed framing over any `Read`/`Write` pair;
//! * [`SiteServer`] — one site's fragments behind a `TcpListener`, running
//!   the same [`paxml_core::dispatch`] as the simulator,
//!   thread-per-connection, with a clean shutdown message;
//! * [`TcpCluster`] — the coordinator side, implementing
//!   [`paxml_core::Transport`] so every driver (naive/PaX2/PaX3/batch) and
//!   `PaxServer` run unchanged over sockets; [`ProcessCluster`] spawns the
//!   sites as local child processes for `paxml cluster` and the tests.
//!
//! Because both transports execute the identical site-side `dispatch` and
//! charge the identical encoded sizes, a workload produces the same
//! answers, visit counts and byte counts over TCP as over the simulator —
//! the property the cross-transport conformance tests pin.

#![deny(missing_docs)]

pub mod codec;
pub mod frame;
pub mod msg;
pub mod process;
pub mod site_server;
pub mod tcp;

pub use codec::{decode, encode, CodecError};
pub use process::{ProcessCluster, SiteProcess};
pub use site_server::SiteServer;
pub use tcp::TcpCluster;

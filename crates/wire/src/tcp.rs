//! [`TcpCluster`]: the coordinator's socket-backed [`Transport`] — the same
//! `round`/`broadcast` surface the drivers use over the in-process
//! simulator, served by real site processes.
//!
//! # Round protocol
//!
//! A round is pipelined: the coordinator first writes every site's request
//! frame, then reads the replies — so the sites compute in parallel, like
//! the simulator's worker pool, while the coordinator stays single-threaded.
//! One lock serializes whole rounds (and the control operations), which
//! keeps every connection's request/reply streams in lockstep even when the
//! cluster is shared across coordinator threads.
//!
//! # Failure behaviour
//!
//! A connection that errors is marked **dead**: the first failed round
//! reports [`PaxError::SiteUnreachable`] (naming the peer address and the
//! in-flight operation), and every later round addressed to that site fails
//! the same way — no hangs (reads carry a timeout as a backstop) and no
//! desynchronized streams (a failing round still drains the replies of the
//! sites it did reach, so surviving connections stay clean for the next
//! round). A dead connection is only revived through [`Transport::probe`]:
//! the server's health tracker quarantines the site, re-probes it after a
//! cooldown, and the probe redials with a deliberately small attempt budget
//! ([`TcpOptions::probe_attempts`]) so readmission checks never stall the
//! serving path.
//!
//! Socket knobs (read timeout, connect/probe backoff) live in
//! [`TcpOptions`], threaded from `PaxServerBuilder::tcp_options` through
//! [`Transport::configure_tcp`]; a deterministic [`FaultPlan`] can be
//! installed with [`Transport::set_fault_plan`] to refuse scheduled rounds
//! exactly like the simulator does, which makes chaos schedules replayable
//! on both transports.
//!
//! # Accounting
//!
//! Request traffic is charged as the encoded
//! [`EpochRequest`] envelope body length (epoch tag,
//! retirement watermark and protocol body — a site can hold two epochs'
//! versions during an update handover) and response traffic as the encoded
//! [`ProtocolResponse`] body length — the same quantities
//! `paxml_distsim::encoded_size` charges in the simulator, so the two
//! transports meter bit-identical byte counts. Ops come back from the site
//! (`dispatch` is deterministic, so they too are identical); busy time is
//! real wall clock and therefore the one meter that legitimately differs.

use crate::codec;
use crate::msg::{self, WireReply, WireRequest};
use paxml_core::{
    injected_fault_error, EpochRequest, PaxError, PaxResult, ProtocolResponse, TcpOptions,
    Transport,
};
use paxml_distsim::{
    ClusterStats, FaultKind, FaultPlan, Placement, ReplicaSet, SiteId, SiteLoadReport,
};
use paxml_fragment::{Fragment, FragmentId, FragmentedTree};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// One site's connection: alive, or dead with the error that killed it.
struct Connection {
    stream: Result<TcpStream, String>,
}

impl Connection {
    /// Mark the connection dead and return the unreachable error, naming
    /// the peer and the operation that was in flight.
    fn kill(
        &mut self,
        site: SiteId,
        peer: SocketAddr,
        operation: &str,
        err: &io::Error,
    ) -> PaxError {
        let detail = format!("{peer}: {operation}: {err}");
        self.stream = Err(detail.clone());
        PaxError::SiteUnreachable { site, detail }
    }
}

/// A cluster of remote sites reached over TCP, implementing the same
/// [`Transport`] surface as the in-process simulator.
///
/// Dropping the cluster sends every live site a clean
/// [`WireRequest::Shutdown`].
pub struct TcpCluster {
    conns: Vec<Mutex<Connection>>,
    addrs: Vec<SocketAddr>,
    assignment: BTreeMap<FragmentId, ReplicaSet>,
    /// Serializes rounds and control operations: per-connection streams
    /// must not interleave messages of concurrent rounds.
    round_lock: Mutex<()>,
    stats: Mutex<ClusterStats>,
    next_slot: AtomicUsize,
    /// Socket tuning, replaceable after construction via
    /// [`Transport::configure_tcp`] (the builder applies it at deploy time).
    options: Mutex<TcpOptions>,
    /// The installed fault schedule, if any (interior mutability: chaos
    /// tests arm faults on a cluster already shared behind an `Arc`).
    fault: Mutex<Option<FaultPlan>>,
    /// Round counter indexing the fault plan: advanced once per attempted
    /// round while a plan is installed, so the same workload replays the
    /// same fault sequence — the exact scheme the simulator uses.
    fault_tick: AtomicU64,
}

impl TcpCluster {
    /// Connect to one site per address, distribute the fragments of
    /// `fragmented` according to `placement` (one copy each), and load each
    /// site with its share — the socket equivalent of
    /// [`paxml_distsim::Cluster::new`].
    pub fn connect(
        fragmented: &FragmentedTree,
        addrs: &[SocketAddr],
        placement: Placement,
    ) -> PaxResult<TcpCluster> {
        Self::connect_replicated(fragmented, addrs, placement, 1)
    }

    /// Connect with every fragment stored on `replication` sites: the
    /// primary chosen by `placement`, plus secondaries on the next sites
    /// round-robin (`(primary + k) mod site_count`, never co-located) — the
    /// socket equivalent of [`paxml_distsim::Cluster::replicated`].
    /// `replication` is clamped to the number of addresses.
    pub fn connect_replicated(
        fragmented: &FragmentedTree,
        addrs: &[SocketAddr],
        placement: Placement,
        replication: usize,
    ) -> PaxResult<TcpCluster> {
        let site_count = addrs.len().max(1);
        let copies = replication.clamp(1, site_count);
        let mut assignment = BTreeMap::new();
        for fragment in &fragmented.fragments {
            let primary = match placement {
                Placement::RoundRobin => fragment.id.index() % site_count,
                Placement::SingleSite => 0,
            };
            let set = ReplicaSet::of((0..copies).map(|k| SiteId((primary + k) % site_count)));
            assignment.insert(fragment.id, set);
        }
        Self::connect_with_replicas(fragmented, addrs, assignment, TcpOptions::default())
    }

    /// Connect with an explicit fragment→site assignment (fragments not
    /// mentioned go to site 0; site indices are clamped to the address
    /// list, mirroring [`paxml_distsim::Cluster::with_assignment`]). Each
    /// fragment gets one copy.
    pub fn connect_with_assignment(
        fragmented: &FragmentedTree,
        addrs: &[SocketAddr],
        assignment: BTreeMap<FragmentId, SiteId>,
    ) -> PaxResult<TcpCluster> {
        let replicas =
            assignment.into_iter().map(|(f, site)| (f, ReplicaSet::solo(site))).collect();
        Self::connect_with_replicas(fragmented, addrs, replicas, TcpOptions::default())
    }

    /// The most general constructor: an explicit fragment→replica-set
    /// assignment (fragments not mentioned get a solo copy on site 0; site
    /// indices are clamped to the address list) and explicit socket tuning
    /// for the initial dial. Every replica site is loaded with a full copy
    /// of its fragments.
    pub fn connect_with_replicas(
        fragmented: &FragmentedTree,
        addrs: &[SocketAddr],
        assignment: BTreeMap<FragmentId, ReplicaSet>,
        options: TcpOptions,
    ) -> PaxResult<TcpCluster> {
        if addrs.is_empty() {
            return Err(PaxError::InvalidConfig {
                message: "a TCP cluster needs at least one site address".into(),
            });
        }
        let mut final_assignment = BTreeMap::new();
        let mut per_site: Vec<Vec<Fragment>> = vec![Vec::new(); addrs.len()];
        for fragment in &fragmented.fragments {
            let set = assignment.get(&fragment.id).cloned().unwrap_or(ReplicaSet::solo(SiteId(0)));
            let set =
                ReplicaSet::of(set.sites().iter().map(|s| SiteId(s.index().min(addrs.len() - 1))));
            for &site in set.sites() {
                per_site[site.index()].push(fragment.clone());
            }
            final_assignment.insert(fragment.id, set);
        }

        let mut conns = Vec::with_capacity(addrs.len());
        for (index, addr) in addrs.iter().enumerate() {
            let site = SiteId(index);
            let mut stream = connect_with_retry(site, *addr, &options, options.connect_attempts)?;
            let fragments = std::mem::take(&mut per_site[index]);
            handshake(&mut stream, site, fragments).map_err(|err| PaxError::SiteUnreachable {
                site,
                detail: format!("{addr}: handshake failed: {err}"),
            })?;
            conns.push(Mutex::new(Connection { stream: Ok(stream) }));
        }
        Ok(TcpCluster {
            conns,
            addrs: addrs.to_vec(),
            assignment: final_assignment,
            round_lock: Mutex::new(()),
            stats: Mutex::new(ClusterStats::default()),
            next_slot: AtomicUsize::new(0),
            options: Mutex::new(options),
            fault: Mutex::new(None),
            fault_tick: AtomicU64::new(0),
        })
    }

    fn lock_conn(&self, site: SiteId) -> MutexGuard<'_, Connection> {
        self.conns[site.index()].lock().expect("connection locks are never poisoned")
    }

    fn lock_options(&self) -> MutexGuard<'_, TcpOptions> {
        self.options.lock().expect("the options lock is never poisoned")
    }

    fn peer(&self, site: SiteId) -> SocketAddr {
        self.addrs[site.index()]
    }

    /// A snapshot of the installed fault schedule, if any.
    fn current_fault_plan(&self) -> Option<FaultPlan> {
        self.fault.lock().expect("the fault-plan lock is never poisoned").clone()
    }

    /// The round tick the *next* round will be indexed at under the
    /// installed [`FaultPlan`], without advancing the clock — the TCP
    /// counterpart of [`paxml_distsim::Cluster::current_fault_tick`], used
    /// by chaos schedules to aim fault windows at workload phases.
    pub fn current_fault_tick(&self) -> u64 {
        self.fault_tick.load(Ordering::Relaxed)
    }

    /// Send one control request to a site and read its reply, marking the
    /// connection dead on any io failure.
    fn control(
        &self,
        site: SiteId,
        request: &WireRequest,
        operation: &str,
    ) -> PaxResult<WireReply> {
        let peer = self.peer(site);
        let mut conn = self.lock_conn(site);
        let stream = match &mut conn.stream {
            Ok(stream) => stream,
            Err(detail) => return Err(PaxError::SiteUnreachable { site, detail: detail.clone() }),
        };
        match msg::send(stream, request).and_then(|()| msg::recv::<WireReply>(stream)) {
            Ok(reply) => Ok(reply),
            Err(err) => Err(conn.kill(site, peer, operation, &err)),
        }
    }
}

/// Dial `addr` with bounded linear backoff (the site process may still be
/// binding its listener when the coordinator starts). `attempts` is passed
/// separately from `options` because liveness probes dial with the much
/// smaller [`TcpOptions::probe_attempts`] budget.
fn connect_with_retry(
    site: SiteId,
    addr: SocketAddr,
    options: &TcpOptions,
    attempts: u32,
) -> PaxResult<TcpStream> {
    let mut last_error = String::new();
    for attempt in 0..attempts.max(1) {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream
                    .set_read_timeout(Some(options.read_timeout))
                    .and_then(|()| stream.set_nodelay(true))
                    .map_err(|err| PaxError::SiteUnreachable {
                        site,
                        detail: format!("{addr}: configuring the socket: {err}"),
                    })?;
                return Ok(stream);
            }
            Err(err) => last_error = err.to_string(),
        }
        std::thread::sleep(
            (options.connect_backoff_step * (attempt + 1)).min(options.connect_backoff_cap),
        );
    }
    Err(PaxError::SiteUnreachable {
        site,
        detail: format!("{addr}: no connection after {attempts} attempts: {last_error}"),
    })
}

/// Hello + Load over a fresh connection.
fn handshake(stream: &mut TcpStream, site: SiteId, fragments: Vec<Fragment>) -> io::Result<()> {
    msg::send(stream, &WireRequest::Hello { site })?;
    match msg::recv::<WireReply>(stream)? {
        WireReply::Hello { site: echoed } if echoed == site => {}
        other => return Err(unexpected_reply("Hello", &other)),
    }
    msg::send(stream, &WireRequest::Load { fragments })?;
    match msg::recv::<WireReply>(stream)? {
        WireReply::Loaded { .. } => Ok(()),
        other => Err(unexpected_reply("Loaded", &other)),
    }
}

fn unexpected_reply(expected: &str, got: &WireReply) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("expected a {expected} reply, got {got:?}"))
}

/// One site's successfully completed share of a round.
struct RoundOutcome {
    site: SiteId,
    request_bytes: u64,
    response_bytes: u64,
    ops: u64,
    busy: Duration,
    response: ProtocolResponse,
}

impl Transport for TcpCluster {
    fn round_recorded(
        &self,
        recorder: &mut ClusterStats,
        requests: BTreeMap<SiteId, EpochRequest>,
    ) -> PaxResult<BTreeMap<SiteId, ProtocolResponse>> {
        if requests.is_empty() {
            return Ok(BTreeMap::new());
        }
        for site in requests.keys() {
            assert!(site.index() < self.conns.len(), "request addressed to unknown site {site}");
        }
        let _round = self.round_lock.lock().expect("the round lock is never poisoned");

        // The fault gate, identical to the simulator's: with a plan
        // installed every attempted round advances the fault clock and is
        // checked against the schedule before any socket is touched — a
        // faulted target fails the whole round with nothing delivered, and
        // the connection itself stays healthy so the site serves again once
        // its fault window closes.
        if let Some(plan) = self.current_fault_plan() {
            let tick = self.fault_tick.fetch_add(1, Ordering::Relaxed);
            if let Some((site, kind)) = plan.first_failure(tick, requests.keys().copied()) {
                let operation = requests.get(&site).map(|r| r.body.kind()).unwrap_or("round");
                let peer = self.peer(site).to_string();
                return Err(injected_fault_error(site, &kind, &peer, operation));
            }
            let stall = plan.total_delay(tick, requests.keys().copied());
            if !stall.is_zero() {
                std::thread::sleep(stall);
            }
        }

        // Phase 1 — write every request frame. On the first failure stop
        // sending (sites later in the order receive nothing this round).
        let mut sent: Vec<(SiteId, u64, &'static str)> = Vec::with_capacity(requests.len());
        let mut failure: Option<PaxError> = None;
        for (site, request) in &requests {
            let operation = request.body.kind();
            let body = codec::encode(request);
            let request_bytes = body.len() as u64;
            let peer = self.peer(*site);
            let mut conn = self.lock_conn(*site);
            let result = match &mut conn.stream {
                Ok(stream) => msg::send(stream, &WireRequest::Round { body }),
                Err(detail) => {
                    failure =
                        Some(PaxError::SiteUnreachable { site: *site, detail: detail.clone() });
                    break;
                }
            };
            match result {
                Ok(()) => sent.push((*site, request_bytes, operation)),
                Err(err) => {
                    let label = format!("sending {operation}");
                    failure = Some(conn.kill(*site, peer, &label, &err));
                    break;
                }
            }
        }

        // Phase 2 — drain a reply from every site we reached, even when the
        // round is already doomed: leaving a reply unread would desync that
        // connection for every later round.
        let mut outcomes: Vec<RoundOutcome> = Vec::with_capacity(sent.len());
        for (site, request_bytes, operation) in sent {
            let peer = self.peer(site);
            let mut conn = self.lock_conn(site);
            let reply = match &mut conn.stream {
                Ok(stream) => msg::recv::<WireReply>(stream),
                Err(detail) => Err(io::Error::other(detail.clone())),
            };
            match reply {
                Ok(WireReply::Round { ops, busy_nanos, body }) => {
                    match codec::decode::<ProtocolResponse>(&body) {
                        Ok(response) => outcomes.push(RoundOutcome {
                            site,
                            request_bytes,
                            response_bytes: body.len() as u64,
                            ops,
                            busy: Duration::from_nanos(busy_nanos),
                            response,
                        }),
                        Err(err) => {
                            failure = failure.or(Some(PaxError::Protocol {
                                message: format!(
                                    "{peer}: undecodable {operation} response from site {site}: \
                                     {err}"
                                ),
                            }))
                        }
                    }
                }
                Ok(WireReply::Error { message }) => {
                    failure = failure.or(Some(PaxError::Protocol {
                        message: format!("{peer}: site {site} failed its {operation}: {message}"),
                    }))
                }
                Ok(other) => {
                    failure = failure.or(Some(PaxError::Protocol {
                        message: format!(
                            "{peer}: unexpected reply from site {site} to {operation}: {other:?}"
                        ),
                    }))
                }
                Err(err) => {
                    let label = format!("awaiting the {operation} reply");
                    let unreachable = conn.kill(site, peer, &label, &err);
                    failure = failure.or(Some(unreachable));
                }
            }
        }
        if let Some(error) = failure {
            return Err(error);
        }

        // Phase 3 — commit the meters whole-round, exactly like the
        // simulator: per-site work into both recorders, then the round's
        // slowest/busiest site.
        let mut responses = BTreeMap::new();
        let mut slowest = Duration::ZERO;
        let mut max_ops = 0u64;
        let mut cumulative = self.stats.lock().expect("the stats lock is never poisoned");
        for outcome in outcomes {
            for target in [&mut *cumulative, &mut *recorder] {
                target.record_site_work(
                    outcome.site,
                    outcome.ops,
                    outcome.busy,
                    outcome.request_bytes,
                    outcome.response_bytes,
                );
            }
            slowest = slowest.max(outcome.busy);
            max_ops = max_ops.max(outcome.ops);
            responses.insert(outcome.site, outcome.response);
        }
        cumulative.record_round(slowest, max_ops);
        recorder.record_round(slowest, max_ops);
        Ok(responses)
    }

    fn site_count(&self) -> usize {
        self.conns.len()
    }

    fn site_of(&self, fragment: FragmentId) -> SiteId {
        self.replicas_of(fragment).primary()
    }

    fn replicas_of(&self, fragment: FragmentId) -> ReplicaSet {
        self.assignment
            .get(&fragment)
            .cloned()
            .expect("every fragment was assigned to a replica set at construction")
    }

    fn occupied_sites(&self) -> BTreeSet<SiteId> {
        self.assignment.values().flat_map(|set| set.sites().iter().copied()).collect()
    }

    fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        *self.fault.lock().expect("the fault-plan lock is never poisoned") = plan;
    }

    fn probe(&self, site: SiteId) -> bool {
        // A scheduled fault makes a live socket look dead too; probes peek
        // at the fault clock without advancing it (they are not rounds).
        if let Some(plan) = self.current_fault_plan() {
            let tick = self.fault_tick.load(Ordering::Relaxed);
            if matches!(
                plan.fault_at(site, tick),
                Some(FaultKind::Kill) | Some(FaultKind::Drop) | Some(FaultKind::Garble)
            ) {
                return false;
            }
        }
        if site.index() >= self.conns.len() {
            return false;
        }
        let peer = self.peer(site);
        let _round = self.round_lock.lock().expect("the round lock is never poisoned");
        let mut conn = self.lock_conn(site);
        match &mut conn.stream {
            // Live connection: one Hello round-trip settles it.
            Ok(stream) => {
                match msg::send(stream, &WireRequest::Hello { site })
                    .and_then(|()| msg::recv::<WireReply>(stream))
                {
                    Ok(WireReply::Hello { site: echoed }) if echoed == site => true,
                    Ok(other) => {
                        let err = unexpected_reply("Hello", &other);
                        let _ = conn.kill(site, peer, "probing", &err);
                        false
                    }
                    Err(err) => {
                        let _ = conn.kill(site, peer, "probing", &err);
                        false
                    }
                }
            }
            // Dead connection: redial with the small probe budget and
            // re-introduce ourselves. The revived site starts empty — the
            // server's repair pass re-ships its fragments before readmitting
            // it to the serving path.
            Err(_) => {
                let options = self.lock_options().clone();
                match connect_with_retry(site, peer, &options, options.probe_attempts) {
                    Ok(mut stream) => match handshake(&mut stream, site, Vec::new()) {
                        Ok(()) => {
                            conn.stream = Ok(stream);
                            true
                        }
                        Err(_) => false,
                    },
                    Err(_) => false,
                }
            }
        }
    }

    fn configure_tcp(&self, options: &TcpOptions) {
        *self.lock_options() = options.clone();
        // The read timeout guards already-established streams too: apply it
        // retroactively so a deploy-time option reaches every connection.
        for conn in &self.conns {
            let mut conn = conn.lock().expect("connection locks are never poisoned");
            if let Ok(stream) = &mut conn.stream {
                let _ = stream.set_read_timeout(Some(options.read_timeout));
            }
        }
    }

    fn allocate_slots(&self, n: usize) -> usize {
        self.next_slot.fetch_add(n.max(1), Ordering::Relaxed)
    }

    fn stats(&self) -> ClusterStats {
        self.stats.lock().expect("the stats lock is never poisoned").clone()
    }

    fn reset(&self) {
        let _round = self.round_lock.lock().expect("the round lock is never poisoned");
        for index in 0..self.conns.len() {
            // Best effort: a dead site has no scratch worth clearing.
            let _ = self.control(SiteId(index), &WireRequest::Reset, "resetting scratch");
        }
        *self.stats.lock().expect("the stats lock is never poisoned") = ClusterStats::default();
    }

    fn scratch_len(&self, site: SiteId) -> usize {
        let _round = self.round_lock.lock().expect("the round lock is never poisoned");
        match self.control(site, &WireRequest::ScratchLen, "probing scratch length") {
            Ok(WireReply::ScratchLen { len }) => len,
            Ok(other) => panic!("unexpected reply to a scratch-len probe: {other:?}"),
            Err(err) => panic!("scratch-len probe failed: {err}"),
        }
    }

    fn site_load(&self, site: SiteId) -> SiteLoadReport {
        let _round = self.round_lock.lock().expect("the round lock is never poisoned");
        match self.control(site, &WireRequest::SiteLoad, "probing site load") {
            Ok(WireReply::SiteLoad { report }) => report,
            // A dead or confused site stores nothing we can observe; load
            // probes are best-effort observability, never a failure.
            _ => SiteLoadReport { site, fragments: Vec::new() },
        }
    }
}

impl Drop for TcpCluster {
    fn drop(&mut self) {
        for conn in &mut self.conns {
            let connection = conn.get_mut().expect("connection locks are never poisoned");
            if let Ok(stream) = &mut connection.stream {
                // Give the site its clean shutdown; ignore failures — the
                // peer may already be gone.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                let _ = msg::send(stream, &WireRequest::Shutdown);
                let _ = msg::recv::<WireReply>(stream);
            }
        }
    }
}

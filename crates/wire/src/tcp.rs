//! [`TcpCluster`]: the coordinator's socket-backed [`Transport`] — the same
//! `round`/`broadcast` surface the drivers use over the in-process
//! simulator, served by real site processes.
//!
//! # Round protocol
//!
//! A round is pipelined: the coordinator first writes every site's request
//! frame, then reads the replies — so the sites compute in parallel, like
//! the simulator's worker pool, while the coordinator stays single-threaded.
//! One lock serializes whole rounds (and the control operations), which
//! keeps every connection's request/reply streams in lockstep even when the
//! cluster is shared across coordinator threads.
//!
//! # Failure behaviour
//!
//! A connection that errors is marked **dead** and never retried: the first
//! failed round reports [`PaxError::SiteUnreachable`], and every later
//! round addressed to that site fails the same way immediately — no hangs
//! (reads carry a timeout as a backstop) and no desynchronized streams
//! (a failing round still drains the replies of the sites it did reach, so
//! surviving connections stay clean for the next round).
//!
//! # Accounting
//!
//! Request traffic is charged as the encoded
//! [`EpochRequest`] envelope body length (epoch tag,
//! retirement watermark and protocol body — a site can hold two epochs'
//! versions during an update handover) and response traffic as the encoded
//! [`ProtocolResponse`] body length — the same quantities
//! `paxml_distsim::encoded_size` charges in the simulator, so the two
//! transports meter bit-identical byte counts. Ops come back from the site
//! (`dispatch` is deterministic, so they too are identical); busy time is
//! real wall clock and therefore the one meter that legitimately differs.

use crate::codec;
use crate::msg::{self, WireReply, WireRequest};
use paxml_core::{EpochRequest, PaxError, PaxResult, ProtocolResponse, Transport};
use paxml_distsim::{ClusterStats, Placement, SiteId, SiteLoadReport};
use paxml_fragment::{Fragment, FragmentId, FragmentedTree};
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// How often and how long to retry the initial connection to a site that
/// is still starting up: linear backoff, bounded at about three seconds
/// in total.
const CONNECT_ATTEMPTS: u32 = 40;
const CONNECT_BACKOFF_STEP: Duration = Duration::from_millis(5);
const CONNECT_BACKOFF_CAP: Duration = Duration::from_millis(150);

/// Backstop read timeout: a site that neither replies nor closes its socket
/// within this window is treated as unreachable instead of hanging the
/// coordinator forever.
const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// One site's connection: alive, or dead with the error that killed it.
struct Connection {
    stream: Result<TcpStream, String>,
}

impl Connection {
    /// Mark the connection dead and return the unreachable error.
    fn kill(&mut self, site: SiteId, err: &io::Error) -> PaxError {
        let detail = err.to_string();
        self.stream = Err(detail.clone());
        PaxError::SiteUnreachable { site, detail }
    }
}

/// A cluster of remote sites reached over TCP, implementing the same
/// [`Transport`] surface as the in-process simulator.
///
/// Dropping the cluster sends every live site a clean
/// [`WireRequest::Shutdown`].
pub struct TcpCluster {
    conns: Vec<Mutex<Connection>>,
    assignment: BTreeMap<FragmentId, SiteId>,
    /// Serializes rounds and control operations: per-connection streams
    /// must not interleave messages of concurrent rounds.
    round_lock: Mutex<()>,
    stats: Mutex<ClusterStats>,
    next_slot: AtomicUsize,
}

impl TcpCluster {
    /// Connect to one site per address, distribute the fragments of
    /// `fragmented` according to `placement`, and load each site with its
    /// share — the socket equivalent of
    /// [`paxml_distsim::Cluster::new`].
    pub fn connect(
        fragmented: &FragmentedTree,
        addrs: &[SocketAddr],
        placement: Placement,
    ) -> PaxResult<TcpCluster> {
        let site_count = addrs.len().max(1);
        let mut assignment = BTreeMap::new();
        for fragment in &fragmented.fragments {
            let site = match placement {
                Placement::RoundRobin => SiteId(fragment.id.index() % site_count),
                Placement::SingleSite => SiteId(0),
            };
            assignment.insert(fragment.id, site);
        }
        Self::connect_with_assignment(fragmented, addrs, assignment)
    }

    /// Connect with an explicit fragment→site assignment (fragments not
    /// mentioned go to site 0; site indices are clamped to the address
    /// list, mirroring [`paxml_distsim::Cluster::with_assignment`]).
    pub fn connect_with_assignment(
        fragmented: &FragmentedTree,
        addrs: &[SocketAddr],
        assignment: BTreeMap<FragmentId, SiteId>,
    ) -> PaxResult<TcpCluster> {
        if addrs.is_empty() {
            return Err(PaxError::InvalidConfig {
                message: "a TCP cluster needs at least one site address".into(),
            });
        }
        let mut final_assignment = BTreeMap::new();
        let mut per_site: Vec<Vec<Fragment>> = vec![Vec::new(); addrs.len()];
        for fragment in &fragmented.fragments {
            let site = assignment.get(&fragment.id).copied().unwrap_or(SiteId(0));
            let site = SiteId(site.index().min(addrs.len() - 1));
            final_assignment.insert(fragment.id, site);
            per_site[site.index()].push(fragment.clone());
        }

        let mut conns = Vec::with_capacity(addrs.len());
        for (index, addr) in addrs.iter().enumerate() {
            let site = SiteId(index);
            let mut stream = connect_with_retry(site, *addr)?;
            let fragments = std::mem::take(&mut per_site[index]);
            handshake(&mut stream, site, fragments).map_err(|err| PaxError::SiteUnreachable {
                site,
                detail: format!("handshake with {addr} failed: {err}"),
            })?;
            conns.push(Mutex::new(Connection { stream: Ok(stream) }));
        }
        Ok(TcpCluster {
            conns,
            assignment: final_assignment,
            round_lock: Mutex::new(()),
            stats: Mutex::new(ClusterStats::default()),
            next_slot: AtomicUsize::new(0),
        })
    }

    fn lock_conn(&self, site: SiteId) -> MutexGuard<'_, Connection> {
        self.conns[site.index()].lock().expect("connection locks are never poisoned")
    }

    /// Send one control request to a site and read its reply, marking the
    /// connection dead on any io failure.
    fn control(&self, site: SiteId, request: &WireRequest) -> PaxResult<WireReply> {
        let mut conn = self.lock_conn(site);
        let stream = match &mut conn.stream {
            Ok(stream) => stream,
            Err(detail) => return Err(PaxError::SiteUnreachable { site, detail: detail.clone() }),
        };
        match msg::send(stream, request).and_then(|()| msg::recv::<WireReply>(stream)) {
            Ok(reply) => Ok(reply),
            Err(err) => Err(conn.kill(site, &err)),
        }
    }
}

/// Dial `addr` with bounded linear backoff (the site process may still be
/// binding its listener when the coordinator starts).
fn connect_with_retry(site: SiteId, addr: SocketAddr) -> PaxResult<TcpStream> {
    let mut last_error = String::new();
    for attempt in 0..CONNECT_ATTEMPTS {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream
                    .set_read_timeout(Some(READ_TIMEOUT))
                    .and_then(|()| stream.set_nodelay(true))
                    .map_err(|err| PaxError::SiteUnreachable {
                        site,
                        detail: format!("configuring the socket to {addr}: {err}"),
                    })?;
                return Ok(stream);
            }
            Err(err) => last_error = err.to_string(),
        }
        std::thread::sleep((CONNECT_BACKOFF_STEP * (attempt + 1)).min(CONNECT_BACKOFF_CAP));
    }
    Err(PaxError::SiteUnreachable {
        site,
        detail: format!("no connection to {addr} after {CONNECT_ATTEMPTS} attempts: {last_error}"),
    })
}

/// Hello + Load over a fresh connection.
fn handshake(stream: &mut TcpStream, site: SiteId, fragments: Vec<Fragment>) -> io::Result<()> {
    msg::send(stream, &WireRequest::Hello { site })?;
    match msg::recv::<WireReply>(stream)? {
        WireReply::Hello { site: echoed } if echoed == site => {}
        other => return Err(unexpected_reply("Hello", &other)),
    }
    msg::send(stream, &WireRequest::Load { fragments })?;
    match msg::recv::<WireReply>(stream)? {
        WireReply::Loaded { .. } => Ok(()),
        other => Err(unexpected_reply("Loaded", &other)),
    }
}

fn unexpected_reply(expected: &str, got: &WireReply) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("expected a {expected} reply, got {got:?}"))
}

/// One site's successfully completed share of a round.
struct RoundOutcome {
    site: SiteId,
    request_bytes: u64,
    response_bytes: u64,
    ops: u64,
    busy: Duration,
    response: ProtocolResponse,
}

impl Transport for TcpCluster {
    fn round_recorded(
        &self,
        recorder: &mut ClusterStats,
        requests: BTreeMap<SiteId, EpochRequest>,
    ) -> PaxResult<BTreeMap<SiteId, ProtocolResponse>> {
        if requests.is_empty() {
            return Ok(BTreeMap::new());
        }
        for site in requests.keys() {
            assert!(site.index() < self.conns.len(), "request addressed to unknown site {site}");
        }
        let _round = self.round_lock.lock().expect("the round lock is never poisoned");

        // Phase 1 — write every request frame. On the first failure stop
        // sending (sites later in the order receive nothing this round).
        let mut sent: Vec<(SiteId, u64)> = Vec::with_capacity(requests.len());
        let mut failure: Option<PaxError> = None;
        for (site, request) in &requests {
            let body = codec::encode(request);
            let request_bytes = body.len() as u64;
            let mut conn = self.lock_conn(*site);
            let result = match &mut conn.stream {
                Ok(stream) => msg::send(stream, &WireRequest::Round { body }),
                Err(detail) => {
                    failure =
                        Some(PaxError::SiteUnreachable { site: *site, detail: detail.clone() });
                    break;
                }
            };
            match result {
                Ok(()) => sent.push((*site, request_bytes)),
                Err(err) => {
                    failure = Some(conn.kill(*site, &err));
                    break;
                }
            }
        }

        // Phase 2 — drain a reply from every site we reached, even when the
        // round is already doomed: leaving a reply unread would desync that
        // connection for every later round.
        let mut outcomes: Vec<RoundOutcome> = Vec::with_capacity(sent.len());
        for (site, request_bytes) in sent {
            let mut conn = self.lock_conn(site);
            let reply = match &mut conn.stream {
                Ok(stream) => msg::recv::<WireReply>(stream),
                Err(detail) => Err(io::Error::other(detail.clone())),
            };
            match reply {
                Ok(WireReply::Round { ops, busy_nanos, body }) => {
                    match codec::decode::<ProtocolResponse>(&body) {
                        Ok(response) => outcomes.push(RoundOutcome {
                            site,
                            request_bytes,
                            response_bytes: body.len() as u64,
                            ops,
                            busy: Duration::from_nanos(busy_nanos),
                            response,
                        }),
                        Err(err) => {
                            failure = failure.or(Some(PaxError::Protocol {
                                message: format!("undecodable response from site {site}: {err}"),
                            }))
                        }
                    }
                }
                Ok(WireReply::Error { message }) => {
                    failure = failure.or(Some(PaxError::Protocol {
                        message: format!("site {site} failed its task: {message}"),
                    }))
                }
                Ok(other) => {
                    failure = failure.or(Some(PaxError::Protocol {
                        message: format!("unexpected reply from site {site}: {other:?}"),
                    }))
                }
                Err(err) => {
                    let unreachable = conn.kill(site, &err);
                    failure = failure.or(Some(unreachable));
                }
            }
        }
        if let Some(error) = failure {
            return Err(error);
        }

        // Phase 3 — commit the meters whole-round, exactly like the
        // simulator: per-site work into both recorders, then the round's
        // slowest/busiest site.
        let mut responses = BTreeMap::new();
        let mut slowest = Duration::ZERO;
        let mut max_ops = 0u64;
        let mut cumulative = self.stats.lock().expect("the stats lock is never poisoned");
        for outcome in outcomes {
            for target in [&mut *cumulative, &mut *recorder] {
                target.record_site_work(
                    outcome.site,
                    outcome.ops,
                    outcome.busy,
                    outcome.request_bytes,
                    outcome.response_bytes,
                );
            }
            slowest = slowest.max(outcome.busy);
            max_ops = max_ops.max(outcome.ops);
            responses.insert(outcome.site, outcome.response);
        }
        cumulative.record_round(slowest, max_ops);
        recorder.record_round(slowest, max_ops);
        Ok(responses)
    }

    fn site_count(&self) -> usize {
        self.conns.len()
    }

    fn site_of(&self, fragment: FragmentId) -> SiteId {
        self.assignment
            .get(&fragment)
            .copied()
            .expect("every fragment was assigned to a site at construction")
    }

    fn occupied_sites(&self) -> BTreeSet<SiteId> {
        self.assignment.values().copied().collect()
    }

    fn allocate_slots(&self, n: usize) -> usize {
        self.next_slot.fetch_add(n.max(1), Ordering::Relaxed)
    }

    fn stats(&self) -> ClusterStats {
        self.stats.lock().expect("the stats lock is never poisoned").clone()
    }

    fn reset(&self) {
        let _round = self.round_lock.lock().expect("the round lock is never poisoned");
        for index in 0..self.conns.len() {
            // Best effort: a dead site has no scratch worth clearing.
            let _ = self.control(SiteId(index), &WireRequest::Reset);
        }
        *self.stats.lock().expect("the stats lock is never poisoned") = ClusterStats::default();
    }

    fn scratch_len(&self, site: SiteId) -> usize {
        let _round = self.round_lock.lock().expect("the round lock is never poisoned");
        match self.control(site, &WireRequest::ScratchLen) {
            Ok(WireReply::ScratchLen { len }) => len,
            Ok(other) => panic!("unexpected reply to a scratch-len probe: {other:?}"),
            Err(err) => panic!("scratch-len probe failed: {err}"),
        }
    }

    fn site_load(&self, site: SiteId) -> SiteLoadReport {
        let _round = self.round_lock.lock().expect("the round lock is never poisoned");
        match self.control(site, &WireRequest::SiteLoad) {
            Ok(WireReply::SiteLoad { report }) => report,
            // A dead or confused site stores nothing we can observe; load
            // probes are best-effort observability, never a failure.
            _ => SiteLoadReport { site, fragments: Vec::new() },
        }
    }
}

impl Drop for TcpCluster {
    fn drop(&mut self) {
        for conn in &mut self.conns {
            let connection = conn.get_mut().expect("connection locks are never poisoned");
            if let Ok(stream) = &mut connection.stream {
                // Give the site its clean shutdown; ignore failures — the
                // peer may already be gone.
                let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                let _ = msg::send(stream, &WireRequest::Shutdown);
                let _ = msg::recv::<WireReply>(stream);
            }
        }
    }
}

//! The binary codec: [`encode`] and [`decode`] for every `Serialize` /
//! `Deserialize` message type, in **exactly** the layout
//! `paxml_distsim::encoded_size` charges.
//!
//! The simulator's byte meter ([`paxml_distsim::encoded_size`]) defines the
//! workspace's wire format implicitly: LEB128 varints for unsigned integers,
//! zig-zag-then-varint for signed ones, fixed widths for floats, a one-byte
//! tag per `Option` and per enum variant, varint length prefixes for
//! strings, byte buffers, sequences and maps, and zero overhead for structs
//! and tuples. This module makes that format explicit: `encode(m).len()`
//! equals `encoded_size(m)` for every message, **by construction** — both
//! walk the value through the same `Serialize` impl, one emitting bytes
//! where the other adds their count. The property tests in this crate and
//! the shared byte-vector file pin the equality.
//!
//! Keeping the meter and the codec in lockstep is what lets the TCP
//! transport charge real frame payload sizes while staying bit-identical to
//! the simulator's accounting — the conformance tests compare total bytes
//! across transports with `==`, not `≈`.

use serde::de::{self, Deserialize, Deserializer};
use serde::ser::{self, Serialize, Serializer};
use std::fmt::Display;

/// Error raised while encoding or decoding a message.
///
/// Encoding only fails on values outside the format's envelope (an unsized
/// sequence, an enum with ≥ 256 variants); decoding fails on any malformed
/// input: truncated buffers, over-long varints, invalid UTF-8, out-of-range
/// integers, unknown tags, or trailing garbage.
#[derive(Debug, PartialEq, Eq)]
pub struct CodecError(String);

impl Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

impl ser::Error for CodecError {
    fn custom<T: Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

impl de::Error for CodecError {
    fn custom<T: Display>(msg: T) -> Self {
        CodecError(msg.to_string())
    }
}

/// Encode `value` into the compact binary format.
///
/// Every message type in the PaX protocol encodes without error (the only
/// failure modes are unsized sequences and enums with more than 256
/// variants, which the workspace does not contain), so this returns the
/// buffer directly.
pub fn encode<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut writer = WireWriter { out: Vec::new() };
    value
        .serialize(&mut writer)
        .expect("every PaX protocol message fits the wire format's envelope");
    writer.out
}

/// Decode a value of type `T` from `bytes`.
///
/// The whole buffer must be consumed: trailing bytes are a protocol
/// violation, not padding — a length-prefixed frame carries exactly one
/// message.
pub fn decode<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut reader = WireReader { input: bytes, pos: 0 };
    let value = T::deserialize(&mut reader)?;
    if reader.pos != bytes.len() {
        return Err(CodecError(format!(
            "{} trailing bytes after a complete value",
            bytes.len() - reader.pos
        )));
    }
    Ok(value)
}

/// Zig-zag an i64 so small-magnitude values stay small varints (the same
/// transform the simulator's byte meter charges for).
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Undo [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

// ---------------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------------

struct WireWriter {
    out: Vec<u8>,
}

impl WireWriter {
    fn push_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.out.push(byte);
                return;
            }
            self.out.push(byte | 0x80);
        }
    }

    fn push_tag(&mut self, variant_index: u32) -> Result<(), CodecError> {
        // The byte meter charges every variant tag at exactly one byte, so
        // the format cannot represent enums with more than 256 variants.
        u8::try_from(variant_index)
            .map(|tag| self.out.push(tag))
            .map_err(|_| CodecError(format!("enum variant index {variant_index} exceeds one byte")))
    }
}

impl Serializer for &mut WireWriter {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.out.push(v as u8);
        Ok(())
    }
    fn serialize_i8(self, v: i8) -> Result<(), CodecError> {
        self.out.push(v as u8);
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), CodecError> {
        self.push_varint(zigzag(v as i64));
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), CodecError> {
        self.push_varint(zigzag(v as i64));
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), CodecError> {
        self.push_varint(zigzag(v));
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), CodecError> {
        self.out.push(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), CodecError> {
        self.push_varint(v as u64);
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), CodecError> {
        self.push_varint(v as u64);
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), CodecError> {
        self.push_varint(v);
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        // Chars travel as their raw UTF-8 bytes, no length prefix: the
        // decoder recovers the width from the first byte.
        let mut buf = [0u8; 4];
        self.out.extend_from_slice(v.encode_utf8(&mut buf).as_bytes());
        Ok(())
    }
    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.push_varint(v.len() as u64);
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.push_varint(v.len() as u64);
        self.out.extend_from_slice(v);
        Ok(())
    }
    fn serialize_none(self) -> Result<(), CodecError> {
        self.out.push(0);
        Ok(())
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CodecError> {
        self.out.push(1);
        value.serialize(self)
    }
    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.push_tag(variant_index)
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.push_tag(variant_index)?;
        value.serialize(self)
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<Self, CodecError> {
        match len {
            Some(n) => {
                self.push_varint(n as u64);
                Ok(self)
            }
            None => Err(CodecError("sequences must declare their length up front".into())),
        }
    }
    fn serialize_tuple(self, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.push_tag(variant_index)?;
        Ok(self)
    }
    fn serialize_map(self, len: Option<usize>) -> Result<Self, CodecError> {
        match len {
            Some(n) => {
                self.push_varint(n as u64);
                Ok(self)
            }
            None => Err(CodecError("maps must declare their length up front".into())),
        }
    }
    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.push_tag(variant_index)?;
        Ok(self)
    }
}

macro_rules! impl_compound {
    ($trait:path, $method:ident) => {
        impl $trait for &mut WireWriter {
            type Ok = ();
            type Error = CodecError;
            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
                value.serialize(&mut **self)
            }
            fn end(self) -> Result<(), CodecError> {
                Ok(())
            }
        }
    };
}

impl_compound!(ser::SerializeSeq, serialize_element);
impl_compound!(ser::SerializeTuple, serialize_element);
impl_compound!(ser::SerializeTupleStruct, serialize_field);
impl_compound!(ser::SerializeTupleVariant, serialize_field);

impl ser::SerializeMap for &mut WireWriter {
    type Ok = ();
    type Error = CodecError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CodecError> {
        key.serialize(&mut **self)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStruct for &mut WireWriter {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut WireWriter {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------------

struct WireReader<'de> {
    input: &'de [u8],
    pos: usize,
}

impl<'de> WireReader<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], CodecError> {
        let end =
            self.pos.checked_add(n).filter(|&end| end <= self.input.len()).ok_or_else(|| {
                CodecError(format!("unexpected end of input at byte {}", self.pos))
            })?;
        let slice = &self.input[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn take_byte(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn take_varint(&mut self) -> Result<u64, CodecError> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.take_byte()?;
            let payload = (byte & 0x7f) as u64;
            if shift == 63 && payload > 1 {
                return Err(CodecError("varint overflows 64 bits".into()));
            }
            value |= payload << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(CodecError("varint longer than 10 bytes".into()))
    }

    fn take_signed(&mut self) -> Result<i64, CodecError> {
        Ok(unzigzag(self.take_varint()?))
    }
}

/// Convert a checked narrowing, reporting the target type on failure.
macro_rules! narrow {
    ($value:expr, $ty:ty) => {{
        let value = $value;
        <$ty>::try_from(value)
            .map_err(|_| CodecError(format!("value {value} out of range for {}", stringify!($ty))))
    }};
}

impl<'de> Deserializer<'de> for WireReader<'de> {
    type Error = CodecError;

    fn read_bool(&mut self) -> Result<bool, CodecError> {
        match self.take_byte()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError(format!("invalid bool byte {other:#04x}"))),
        }
    }
    fn read_i8(&mut self) -> Result<i8, CodecError> {
        Ok(self.take_byte()? as i8)
    }
    fn read_i16(&mut self) -> Result<i16, CodecError> {
        narrow!(self.take_signed()?, i16)
    }
    fn read_i32(&mut self) -> Result<i32, CodecError> {
        narrow!(self.take_signed()?, i32)
    }
    fn read_i64(&mut self) -> Result<i64, CodecError> {
        self.take_signed()
    }
    fn read_u8(&mut self) -> Result<u8, CodecError> {
        self.take_byte()
    }
    fn read_u16(&mut self) -> Result<u16, CodecError> {
        narrow!(self.take_varint()?, u16)
    }
    fn read_u32(&mut self) -> Result<u32, CodecError> {
        narrow!(self.take_varint()?, u32)
    }
    fn read_u64(&mut self) -> Result<u64, CodecError> {
        self.take_varint()
    }
    fn read_f32(&mut self) -> Result<f32, CodecError> {
        let bytes: [u8; 4] = self.take(4)?.try_into().expect("take(4) yields exactly four bytes");
        Ok(f32::from_le_bytes(bytes))
    }
    fn read_f64(&mut self) -> Result<f64, CodecError> {
        let bytes: [u8; 8] = self.take(8)?.try_into().expect("take(8) yields exactly eight bytes");
        Ok(f64::from_le_bytes(bytes))
    }
    fn read_char(&mut self) -> Result<char, CodecError> {
        // The UTF-8 leading byte announces the sequence width.
        let first = self.take_byte()?;
        let width = match first {
            0x00..=0x7f => 1,
            0xc0..=0xdf => 2,
            0xe0..=0xef => 3,
            0xf0..=0xf7 => 4,
            other => return Err(CodecError(format!("invalid UTF-8 leading byte {other:#04x}"))),
        };
        let mut buf = [first, 0, 0, 0];
        buf[1..width].copy_from_slice(self.take(width - 1)?);
        std::str::from_utf8(&buf[..width])
            .ok()
            .and_then(|s| s.chars().next())
            .ok_or_else(|| CodecError("invalid UTF-8 char".into()))
    }
    fn read_string(&mut self) -> Result<String, CodecError> {
        let len = narrow!(self.take_varint()?, usize)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError("string payload is not valid UTF-8".into()))
    }
    fn read_byte_buf(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = narrow!(self.take_varint()?, usize)?;
        Ok(self.take(len)?.to_vec())
    }
    fn read_unit(&mut self) -> Result<(), CodecError> {
        Ok(())
    }
    fn read_option_tag(&mut self) -> Result<bool, CodecError> {
        match self.take_byte()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError(format!("invalid option tag {other:#04x}"))),
        }
    }
    fn read_len(&mut self) -> Result<usize, CodecError> {
        narrow!(self.take_varint()?, usize)
    }
    fn read_variant_tag(&mut self) -> Result<u32, CodecError> {
        Ok(self.take_byte()? as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxml_distsim::encoded_size;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    /// Round-trip a value and check the codec and the byte meter agree.
    fn roundtrip<T>(value: &T)
    where
        T: Serialize + for<'de> Deserialize<'de> + PartialEq + std::fmt::Debug,
    {
        let bytes = encode(value);
        assert_eq!(
            bytes.len() as u64,
            encoded_size(value),
            "codec length must match the simulator's byte meter for {value:?}"
        );
        let back: T = decode(&bytes).expect("well-formed bytes decode");
        assert_eq!(&back, value);
    }

    #[test]
    fn primitives_roundtrip_at_metered_sizes() {
        roundtrip(&true);
        roundtrip(&false);
        roundtrip(&0u8);
        roundtrip(&-5i8);
        roundtrip(&7u32);
        roundtrip(&300u32);
        roundtrip(&u64::MAX);
        roundtrip(&-1i64);
        roundtrip(&i64::MIN);
        roundtrip(&-64i32);
        roundtrip(&64i32);
        roundtrip(&1.5f64);
        roundtrip(&f32::NEG_INFINITY);
        roundtrip(&'x');
        roundtrip(&'€');
        roundtrip(&"ab".to_string());
        roundtrip(&String::new());
        roundtrip(&usize::MAX);
    }

    #[test]
    fn composites_roundtrip_at_metered_sizes() {
        roundtrip(&Some(300u32));
        roundtrip(&Option::<u32>::None);
        roundtrip(&vec![1u64, 2, 3]);
        roundtrip(&Vec::<String>::new());
        roundtrip(&(7u32, "x".to_string(), Some(false)));
        let mut map = BTreeMap::new();
        map.insert("k".to_string(), vec![Some(1i32), None]);
        roundtrip(&map);
        roundtrip(&BTreeMap::<u64, String>::new());
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Unit,
        Newtype(u32),
        Tuple(u8, String),
        Struct { flag: bool, items: Vec<i16> },
    }

    #[test]
    fn enums_roundtrip_with_one_byte_tags() {
        for shape in [
            Shape::Unit,
            Shape::Newtype(300),
            Shape::Tuple(9, "hi".into()),
            Shape::Struct { flag: true, items: vec![-1, 0, 1] },
        ] {
            roundtrip(&shape);
            assert_eq!(encode(&shape)[0] as usize, shape_index(&shape));
        }
    }

    fn shape_index(shape: &Shape) -> usize {
        match shape {
            Shape::Unit => 0,
            Shape::Newtype(_) => 1,
            Shape::Tuple(..) => 2,
            Shape::Struct { .. } => 3,
        }
    }

    #[test]
    fn malformed_input_errors_instead_of_panicking() {
        assert!(decode::<u64>(&[]).is_err(), "empty input");
        assert!(decode::<bool>(&[2]).is_err(), "invalid bool");
        assert!(decode::<Option<u8>>(&[9, 0]).is_err(), "invalid option tag");
        assert!(decode::<String>(&[5, b'a']).is_err(), "truncated string");
        assert!(decode::<String>(&[2, 0xff, 0xff]).is_err(), "invalid UTF-8");
        assert!(decode::<u16>(&encode(&70_000u32)).is_err(), "narrowing overflow");
        assert!(decode::<u8>(&[1, 2]).is_err(), "trailing bytes");
        assert!(decode::<u64>(&[0x80; 11]).is_err(), "varint longer than ten bytes");
    }
}

//! Per-message framing: a 4-byte little-endian length prefix followed by
//! the payload.
//!
//! ```text
//!  ┌────────────┬─────────────────────────────┐
//!  │ len: u32 LE│ payload (len bytes)         │
//!  └────────────┴─────────────────────────────┘
//! ```
//!
//! The prefix lets both peers read exactly one message per call without any
//! in-band delimiters; [`MAX_FRAME_LEN`] bounds the allocation a malformed
//! or hostile prefix could cause.

use std::io::{self, Read, Write};

/// Upper bound on a frame payload (64 MiB). The largest legitimate message
/// is a naive-baseline fragment shipment; anything bigger than this is a
/// corrupted length prefix, not data.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Write one length-prefixed frame and flush it.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap", payload.len()),
        ));
    }
    writer.write_all(&(payload.len() as u32).to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Read one length-prefixed frame.
pub fn read_frame(reader: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut prefix = [0u8; 4];
    reader.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut pipe = Vec::new();
        write_frame(&mut pipe, b"hello").unwrap();
        write_frame(&mut pipe, b"").unwrap();
        write_frame(&mut pipe, &[0xff; 300]).unwrap();
        let mut cursor = io::Cursor::new(pipe);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
        assert_eq!(read_frame(&mut cursor).unwrap(), vec![0xff; 300]);
        // The stream is exhausted: the next read reports a clean EOF.
        assert_eq!(read_frame(&mut cursor).unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_prefix_is_rejected_without_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(u32::MAX).to_le_bytes());
        let mut cursor = io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).unwrap_err().kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_payload_is_an_eof() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&8u32.to_le_bytes());
        bytes.extend_from_slice(b"shor");
        let mut cursor = io::Cursor::new(bytes);
        assert_eq!(read_frame(&mut cursor).unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
    }
}

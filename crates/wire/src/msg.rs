//! The coordinator↔site control envelope and its framed send/receive
//! helpers.
//!
//! A [`WireRequest::Round`] carries the *pre-encoded* protocol message as a
//! byte body rather than the typed value: the coordinator charges its
//! traffic meters with exactly `body.len()` bytes, and the reply's body is
//! charged the same way — so the envelope (handshake, tags, the ops/busy
//! meters riding along) is free, precisely like the simulator, which
//! charges `encoded_size` of the protocol message and nothing else.

use crate::codec::{self, CodecError};
use crate::frame;
use paxml_distsim::SiteId;
use paxml_fragment::Fragment;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// A coordinator→site control message.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WireRequest {
    /// Handshake: tell the site which [`SiteId`] it plays.
    Hello {
        /// The identity this site assumes.
        site: SiteId,
    },
    /// Install fragments at the site (during deployment).
    Load {
        /// The fragments this site will own.
        fragments: Vec<Fragment>,
    },
    /// One protocol round: `body` is an encoded
    /// [`ProtocolRequest`](paxml_core::ProtocolRequest).
    Round {
        /// The encoded protocol request; its length is the metered
        /// request traffic.
        body: Vec<u8>,
    },
    /// Ask how many scratch entries are parked (test instrumentation).
    ScratchLen,
    /// Ask what the site currently stores (control-plane observability for
    /// the rebalance planner; uncharged, like `ScratchLen`).
    SiteLoad,
    /// Clear all scratch state (between independent executions).
    Reset,
    /// Clean shutdown: the site replies [`WireReply::ShuttingDown`] and
    /// exits its accept loop.
    Shutdown,
}

/// A site→coordinator reply, one variant per [`WireRequest`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WireReply {
    /// Handshake acknowledged.
    Hello {
        /// The identity the site assumed.
        site: SiteId,
    },
    /// Fragments installed.
    Loaded {
        /// How many fragments the site now owns.
        fragments: usize,
    },
    /// A protocol round's outcome.
    Round {
        /// Elementary operations the task charged (the paper's computation
        /// meter — identical to what the simulator would have charged).
        ops: u64,
        /// Wall-clock nanoseconds the site spent in the task.
        busy_nanos: u64,
        /// The encoded [`ProtocolResponse`](paxml_core::ProtocolResponse);
        /// its length is the metered response traffic.
        body: Vec<u8>,
    },
    /// Current scratch-store size.
    ScratchLen {
        /// Number of parked scratch entries.
        len: usize,
    },
    /// What the site currently stores.
    SiteLoad {
        /// Per-fragment resident bytes at the site's newest epoch.
        report: paxml_distsim::SiteLoadReport,
    },
    /// Scratch state cleared.
    ResetDone,
    /// The site is exiting its accept loop.
    ShuttingDown,
    /// The request could not be served (decode failure, task panic). The
    /// connection stays usable; the coordinator surfaces this as a
    /// protocol-violation error.
    Error {
        /// Human-readable description of what went wrong site-side.
        message: String,
    },
}

/// Encode `message` and write it as one frame.
pub fn send<T: Serialize>(writer: &mut impl Write, message: &T) -> io::Result<()> {
    frame::write_frame(writer, &codec::encode(message))
}

/// Read one frame and decode it as a `T`.
pub fn recv<T: for<'de> Deserialize<'de>>(reader: &mut impl Read) -> io::Result<T> {
    let payload = frame::read_frame(reader)?;
    codec::decode(&payload).map_err(invalid_data)
}

/// Map a codec failure onto the io error domain the socket paths live in.
fn invalid_data(err: CodecError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_envelope_roundtrips_over_a_buffer() {
        let mut pipe = Vec::new();
        send(&mut pipe, &WireRequest::Hello { site: SiteId(3) }).unwrap();
        send(&mut pipe, &WireRequest::Round { body: vec![1, 2, 3] }).unwrap();
        send(&mut pipe, &WireRequest::Shutdown).unwrap();
        let mut cursor = io::Cursor::new(pipe);
        assert!(matches!(
            recv::<WireRequest>(&mut cursor).unwrap(),
            WireRequest::Hello { site: SiteId(3) }
        ));
        assert!(
            matches!(recv::<WireRequest>(&mut cursor).unwrap(), WireRequest::Round { body } if body == vec![1, 2, 3])
        );
        assert!(matches!(recv::<WireRequest>(&mut cursor).unwrap(), WireRequest::Shutdown));
    }

    #[test]
    fn a_garbage_frame_decodes_to_invalid_data() {
        let mut pipe = Vec::new();
        frame::write_frame(&mut pipe, &[0xee, 0xee, 0xee]).unwrap();
        let mut cursor = io::Cursor::new(pipe);
        assert_eq!(recv::<WireReply>(&mut cursor).unwrap_err().kind(), io::ErrorKind::InvalidData);
    }
}

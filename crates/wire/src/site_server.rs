//! A site as a network server: one [`SiteLocal`] behind a [`TcpListener`],
//! serving the PaX protocol with thread-per-connection.
//!
//! The server is deliberately thin: every `Round` request decodes to an
//! [`paxml_core::EpochRequest`] and runs through the
//! same [`paxml_core::dispatch`] the in-process simulator runs — the server
//! adds only the socket, the ops/busy metering around the task, and a clean
//! shutdown path. A panicking task is caught (before the site guard drops,
//! so the site mutex is never poisoned) and reported as a
//! [`WireReply::Error`]; the site stays alive for later rounds.

use crate::msg::{self, WireReply, WireRequest};
use paxml_core::dispatch;
use paxml_core::EpochRequest;
use paxml_distsim::{SiteId, SiteLocal};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One PaX site listening on a TCP socket.
///
/// The site starts empty and anonymous: the coordinator's
/// [`WireRequest::Hello`] assigns its [`SiteId`] and
/// [`WireRequest::Load`] installs its fragments. Multiple concurrent
/// connections are served (each on its own thread); they share the one
/// [`SiteLocal`] behind a mutex, exactly like the simulator's per-site
/// lock serializes overlapping visits.
pub struct SiteServer {
    listener: TcpListener,
    site: Arc<Mutex<SiteLocal>>,
    shutting_down: Arc<AtomicBool>,
}

impl SiteServer {
    /// Bind a fresh, empty site to `addr` (use port 0 to let the OS pick).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<SiteServer> {
        let listener = TcpListener::bind(addr)?;
        Ok(SiteServer {
            listener,
            site: Arc::new(Mutex::new(SiteLocal::new(SiteId(0)))),
            shutting_down: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The address the site actually listens on.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve connections until a [`WireRequest::Shutdown`] arrives.
    ///
    /// Each accepted connection gets its own handler thread; the `Shutdown`
    /// handler flips the shared flag and pokes the listener with a throwaway
    /// connection so the blocking `accept` observes it.
    pub fn run(self) -> io::Result<()> {
        let local_addr = self.local_addr()?;
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.shutting_down.load(Ordering::SeqCst) {
                return Ok(());
            }
            let site = Arc::clone(&self.site);
            let shutting_down = Arc::clone(&self.shutting_down);
            std::thread::spawn(move || {
                serve_connection(stream, site, shutting_down, local_addr);
            });
        }
    }
}

/// Serve one coordinator connection until it closes or asks for shutdown.
fn serve_connection(
    mut stream: TcpStream,
    site: Arc<Mutex<SiteLocal>>,
    shutting_down: Arc<AtomicBool>,
    local_addr: SocketAddr,
) {
    loop {
        let request: WireRequest = match msg::recv(&mut stream) {
            Ok(request) => request,
            // The coordinator hung up (or sent garbage): this connection is
            // done, the site itself lives on for the next connection.
            Err(_) => return,
        };
        let reply = match request {
            WireRequest::Hello { site: id } => {
                lock_site(&site).id = id;
                WireReply::Hello { site: id }
            }
            WireRequest::Load { fragments } => {
                let mut guard = lock_site(&site);
                for fragment in fragments {
                    guard.add_fragment(fragment);
                }
                WireReply::Loaded { fragments: guard.fragment_count() }
            }
            WireRequest::Round { body } => run_round(&site, &body),
            WireRequest::ScratchLen => {
                WireReply::ScratchLen { len: lock_site(&site).scratch_len() }
            }
            WireRequest::SiteLoad => {
                let guard = lock_site(&site);
                WireReply::SiteLoad {
                    report: paxml_distsim::SiteLoadReport {
                        site: guard.id,
                        fragments: guard.fragment_bytes_at(paxml_distsim::LATEST_EPOCH),
                    },
                }
            }
            WireRequest::Reset => {
                lock_site(&site).clear_scratch();
                WireReply::ResetDone
            }
            WireRequest::Shutdown => {
                shutting_down.store(true, Ordering::SeqCst);
                let _ = msg::send(&mut stream, &WireReply::ShuttingDown);
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(local_addr);
                return;
            }
        };
        if msg::send(&mut stream, &reply).is_err() {
            return;
        }
    }
}

/// Decode and dispatch one protocol round, metering ops and busy time the
/// same way the simulator's round does.
fn run_round(site: &Arc<Mutex<SiteLocal>>, body: &[u8]) -> WireReply {
    let request: EpochRequest = match crate::codec::decode(body) {
        Ok(request) => request,
        Err(err) => return WireReply::Error { message: err.to_string() },
    };
    let mut guard = lock_site(site);
    let ops_before = guard.ops();
    let start = Instant::now();
    // Catch panics while still holding the guard so the mutex is never
    // poisoned — the same containment the simulator's workers use.
    let outcome = catch_unwind(AssertUnwindSafe(|| dispatch(&mut guard, request)));
    let busy = start.elapsed();
    let ops = guard.ops() - ops_before;
    drop(guard);
    match outcome {
        Ok(response) => WireReply::Round {
            ops,
            busy_nanos: busy.as_nanos() as u64,
            body: crate::codec::encode(&response),
        },
        Err(payload) => WireReply::Error { message: panic_message(payload) },
    }
}

fn lock_site(site: &Arc<Mutex<SiteLocal>>) -> std::sync::MutexGuard<'_, SiteLocal> {
    site.lock().expect("site tasks catch their panics before the guard drops")
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("site task panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("site task panicked: {s}")
    } else {
        "site task panicked".to_string()
    }
}

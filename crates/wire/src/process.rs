//! Spawning sites as real OS processes: the helpers behind `paxml cluster`
//! and the process-level conformance and fault-injection tests.
//!
//! A site process is any binary that understands `site --listen <addr>` and
//! prints `LISTENING <addr>` on stdout once bound (the `paxml` CLI does).
//! [`ProcessCluster`] spawns N of them on loopback, wires a [`TcpCluster`]
//! to them, and tears everything down on drop — shutdown messages first
//! (via the `TcpCluster` drop), then a kill as backstop.

use crate::tcp::TcpCluster;
use paxml_core::{PaxError, PaxResult};
use paxml_distsim::{Placement, SiteId};
use paxml_fragment::FragmentedTree;
use std::ffi::OsStr;
use std::io::{self, BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

/// The line a site process prints once its listener is bound.
pub const LISTENING_PREFIX: &str = "LISTENING ";

/// One spawned site process.
pub struct SiteProcess {
    /// The identity this process plays in the cluster.
    pub site: SiteId,
    /// Where its listener ended up (the OS picks the port).
    pub addr: SocketAddr,
    child: Child,
}

impl SiteProcess {
    /// Spawn `program site --listen 127.0.0.1:0` and wait for its
    /// `LISTENING` line to learn the bound address.
    pub fn spawn(program: impl AsRef<OsStr>, site: SiteId) -> io::Result<SiteProcess> {
        let mut child = Command::new(program)
            .args(["site", "--listen", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .stdin(Stdio::null())
            .spawn()?;
        let stdout = child.stdout.take().expect("stdout was piped");
        let mut lines = BufReader::new(stdout).lines();
        let addr = lines
            .next()
            .transpose()?
            .and_then(|line| line.strip_prefix(LISTENING_PREFIX)?.trim().parse().ok())
            .ok_or_else(|| {
                let _ = child.kill();
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    "site process did not announce its listening address",
                )
            })?;
        Ok(SiteProcess { site, addr, child })
    }

    /// Kill the process immediately (fault injection; drop does this too).
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for SiteProcess {
    fn drop(&mut self) {
        self.kill();
    }
}

/// A local cluster of site processes plus the [`TcpCluster`] speaking to
/// them.
///
/// Field order matters for teardown: the transport drops first (sending
/// each live site a clean shutdown), then the processes are killed as a
/// backstop for sites that no longer listen.
pub struct ProcessCluster {
    /// The socket transport over the spawned sites. Shared so it can be
    /// handed to a `Deployment` while the process handles stay here.
    pub transport: Arc<TcpCluster>,
    sites: Vec<SiteProcess>,
}

impl ProcessCluster {
    /// Spawn `site_count` site processes from `program`, distribute the
    /// fragments of `fragmented` with `placement`, and connect to them.
    pub fn spawn(
        program: impl AsRef<OsStr> + Copy,
        fragmented: &FragmentedTree,
        site_count: usize,
        placement: Placement,
    ) -> PaxResult<ProcessCluster> {
        Self::spawn_replicated(program, fragmented, site_count, placement, 1)
    }

    /// Like [`ProcessCluster::spawn`], but every fragment is stored on
    /// `replication` site processes (primary by `placement`, secondaries
    /// round-robin on the next sites — see
    /// [`TcpCluster::connect_replicated`]), so a single killed process
    /// leaves every fragment with a live copy.
    pub fn spawn_replicated(
        program: impl AsRef<OsStr> + Copy,
        fragmented: &FragmentedTree,
        site_count: usize,
        placement: Placement,
        replication: usize,
    ) -> PaxResult<ProcessCluster> {
        let mut sites = Vec::with_capacity(site_count.max(1));
        for index in 0..site_count.max(1) {
            let site = SiteId(index);
            sites.push(SiteProcess::spawn(program, site).map_err(|err| {
                PaxError::SiteUnreachable { site, detail: format!("spawning site process: {err}") }
            })?);
        }
        let addrs: Vec<SocketAddr> = sites.iter().map(|s| s.addr).collect();
        let transport =
            Arc::new(TcpCluster::connect_replicated(fragmented, &addrs, placement, replication)?);
        Ok(ProcessCluster { transport, sites })
    }

    /// Kill one site's process outright — the fault the fault-injection
    /// tests inject. Rounds that address the site afterwards must report
    /// [`PaxError::SiteUnreachable`].
    pub fn kill_site(&mut self, site: SiteId) {
        if let Some(process) = self.sites.iter_mut().find(|p| p.site == site) {
            process.kill();
        }
    }

    /// Number of spawned site processes.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// The loopback addresses the spawned sites listen on, in site order.
    pub fn addresses(&self) -> impl Iterator<Item = SocketAddr> + '_ {
        self.sites.iter().map(|s| s.addr)
    }
}

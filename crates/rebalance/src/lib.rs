//! # paxml-rebalance — online re-fragmentation for live PaX deployments
//!
//! The paper fixes the fragmentation and placement at deploy time; this
//! crate makes both **mutable online**, without ever blocking readers:
//!
//! * [`RefragOp`] — the primitive operations on the deployment topology:
//!   [`RefragOp::Split`] cuts a fragment in two, [`RefragOp::Merge`]
//!   splices a child back into its parent, [`RefragOp::Migrate`] moves a
//!   fragment to another site. [`apply_ops`] executes any sequence of them
//!   as **one** [`PaxServer::refragment`] call — fetch payloads, rewrite
//!   the fragment tree with incrementally re-derived §5 annotations (the
//!   surgery of `paxml_fragment::split_fragment` / `merge_fragment`),
//!   ship the installs, publish the next epoch. A failure anywhere
//!   publishes nothing.
//! * [`CostModel`] + [`plan`] — per-site load observation (resident
//!   fragments/bytes from [`Transport::site_load`], historical traffic
//!   from the cumulative meters) feeding a greedy planner that evens out
//!   hot sites under a configurable [`Objective`] and an optional
//!   bytes-moved budget.
//! * [`rebalance`] — observe, plan, apply: the closed loop.
//!
//! Everything publishes through the server's epoch machinery, so readers
//! pinned to the old topology keep routing to the old sites to completion
//! and a reader never observes a half-moved deployment.
//!
//! [`PaxServer::refragment`]: paxml_core::server::PaxServer::refragment
//! [`Transport::site_load`]: paxml_core::Transport::site_load
//!
//! ```
//! use paxml_core::{server::PaxServer, Algorithm};
//! use paxml_distsim::SiteId;
//! use paxml_fragment::{strategy::cut_at_labels, FragmentId};
//! use paxml_rebalance::{apply_ops, RefragOp};
//! use paxml_xml::TreeBuilder;
//!
//! let tree = TreeBuilder::new("clientele")
//!     .open("client").leaf("country", "US")
//!         .open("broker").leaf("name", "E*trade").close()
//!     .close()
//!     .build();
//! let fragmented = cut_at_labels(&tree, &["broker"]).unwrap();
//! let server = PaxServer::builder().algorithm(Algorithm::PaX2).sites(2)
//!     .deploy(&fragmented).unwrap();
//! let q = server.prepare("client/broker/name").unwrap();
//! let before = server.execute(&q).unwrap();
//!
//! // Move the broker fragment to the other site, online. With replicated
//! // placements a migrate moves one copy, so it names its source site.
//! let from = server.deployment().site_of(FragmentId(1));
//! let to = SiteId(1 - from.index());
//! let report =
//!     apply_ops(&server, &[RefragOp::Migrate { fragment: FragmentId(1), from, to }]).unwrap();
//! assert_eq!(report.installed_fragments, 1);
//!
//! let after = server.execute(&q).unwrap();
//! assert_eq!(after.answer_texts(), before.answer_texts());
//! assert_eq!(after.placement_version, before.placement_version + 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod ops;
mod plan;

pub use ops::{apply_ops, RefragOp};
pub use plan::{plan, rebalance, CostModel, Objective, PlannerOptions, RebalanceOutcome, SiteCost};

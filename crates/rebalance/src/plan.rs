//! The cost model and the greedy placement planner.
//!
//! The model is observation-only: per-site resident bytes (what each site
//! stores, from the uncharged [`Transport::site_load`] control probe) and
//! per-site cumulative traffic (what each site has served, from the
//! deployment's meters). The planner is pure — it maps a [`CostModel`] to
//! a list of [`RefragOp::Migrate`]s — so it can be unit-tested without a
//! cluster; [`rebalance`] closes the loop against a live server.
//!
//! [`Transport::site_load`]: paxml_core::Transport::site_load

use crate::ops::{apply_ops, RefragOp};
use paxml_core::server::{PaxServer, RefragReport};
use paxml_core::PaxResult;
use paxml_distsim::SiteId;
use paxml_fragment::FragmentId;

/// What the planner evens out across sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Minimize the largest per-site **resident bytes** — storage balance.
    #[default]
    MaxSiteBytes,
    /// Minimize the largest per-site **traffic estimate** — serve balance.
    /// Each fragment's future traffic is estimated as its site's
    /// historically served bytes, attributed proportionally to the
    /// fragment's share of the site's resident bytes (per-fragment
    /// history is not tracked). Sites with no history fall back to
    /// resident bytes.
    MaxSiteTraffic,
}

/// Knobs for [`plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannerOptions {
    /// What to even out.
    pub objective: Objective,
    /// Stop once the migrations planned so far would move this many
    /// resident bytes (`None`: unbounded).
    pub bytes_moved_budget: Option<u64>,
    /// Hard cap on the number of migrations planned.
    pub max_moves: usize,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            objective: Objective::MaxSiteBytes,
            bytes_moved_budget: None,
            max_moves: 16,
        }
    }
}

/// One site's observed cost inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteCost {
    /// The site.
    pub site: SiteId,
    /// Resident fragments with their bytes (newest epoch).
    pub fragments: Vec<(FragmentId, u64)>,
    /// Cumulative protocol bytes this site has served.
    pub bytes_served: u64,
    /// Cumulative visits the coordinator paid this site.
    pub visits: u64,
}

impl SiteCost {
    /// Total resident bytes at the site.
    pub fn resident_bytes(&self) -> u64 {
        self.fragments.iter().map(|(_, b)| b).sum()
    }
}

/// The planner's input: one [`SiteCost`] per site of the cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Per-site observations, one entry per site (occupied or not).
    pub sites: Vec<SiteCost>,
}

impl CostModel {
    /// Observe a live server: one uncharged load probe per site plus the
    /// cumulative traffic meters.
    pub fn observe(server: &PaxServer) -> CostModel {
        let cumulative = server.cumulative_stats();
        let deployment = server.deployment();
        let sites = (0..deployment.site_count())
            .map(|index| {
                let site = SiteId(index);
                let load = deployment.transport().site_load(site);
                let served = cumulative.sites.get(&site);
                SiteCost {
                    site,
                    fragments: load.fragments,
                    bytes_served: served.map(|s| s.bytes_received + s.bytes_sent).unwrap_or(0),
                    visits: served.map(|s| u64::from(s.visits)).unwrap_or(0),
                }
            })
            .collect();
        CostModel { sites }
    }

    /// The largest per-site resident-bytes figure.
    pub fn max_site_bytes(&self) -> u64 {
        self.sites.iter().map(SiteCost::resident_bytes).max().unwrap_or(0)
    }

    /// Per-fragment weights under `objective`, grouped per site.
    fn weights(&self, objective: Objective) -> Vec<Vec<(FragmentId, u64)>> {
        self.sites
            .iter()
            .map(|site| {
                let resident = site.resident_bytes();
                site.fragments
                    .iter()
                    .map(|&(fragment, bytes)| {
                        let weight = match objective {
                            Objective::MaxSiteBytes => bytes,
                            Objective::MaxSiteTraffic => {
                                if site.bytes_served == 0 || resident == 0 {
                                    bytes
                                } else {
                                    // The fragment's share of the site's
                                    // history, scaled to avoid zeroing
                                    // small fragments.
                                    (site.bytes_served.saturating_mul(bytes) / resident).max(1)
                                }
                            }
                        };
                        (fragment, weight)
                    })
                    .collect()
            })
            .collect()
    }
}

/// Greedy rebalancing: repeatedly move the best-fitting fragment from the
/// heaviest site to the lightest until no move improves the objective, the
/// bytes-moved budget is exhausted, or `max_moves` is reached. Returns
/// pure migrations (splits/merges are policy decisions [`plan`] does not
/// take — hand-build those with [`apply_ops`]).
pub fn plan(model: &CostModel, options: &PlannerOptions) -> Vec<RefragOp> {
    let mut per_site = model.weights(options.objective);
    // Resident bytes ride along so the budget is charged in real bytes
    // even when the objective weighs traffic.
    let mut bytes_of: std::collections::BTreeMap<FragmentId, u64> =
        std::collections::BTreeMap::new();
    for site in &model.sites {
        for &(fragment, bytes) in &site.fragments {
            bytes_of.insert(fragment, bytes);
        }
    }
    let mut moves: Vec<RefragOp> = Vec::new();
    let mut bytes_moved: u64 = 0;
    while moves.len() < options.max_moves {
        let totals: Vec<u64> = per_site.iter().map(|f| f.iter().map(|(_, w)| w).sum()).collect();
        let Some(heavy) = totals.iter().enumerate().max_by_key(|(_, t)| **t).map(|(i, _)| i) else {
            break;
        };
        let light = totals
            .iter()
            .enumerate()
            .min_by_key(|(_, t)| **t)
            .map(|(i, _)| i)
            .expect("a heaviest site implies a lightest one");
        let gap = totals[heavy] - totals[light];
        if heavy == light || gap == 0 {
            break;
        }
        // The largest fragment that still *reduces* the pairwise max:
        // moving weight w helps iff w < gap. A fragment the light site
        // already holds a copy of is never a candidate — co-locating two
        // replicas would silently halve the fragment's fault tolerance.
        let candidate = per_site[heavy]
            .iter()
            .enumerate()
            .filter(|(_, (fragment, w))| {
                *w < gap && !per_site[light].iter().any(|(there, _)| there == fragment)
            })
            .max_by_key(|(_, (_, w))| *w)
            .map(|(position, &(fragment, weight))| (position, fragment, weight));
        let Some((position, fragment, weight)) = candidate else {
            break;
        };
        let fragment_bytes = bytes_of.get(&fragment).copied().unwrap_or(0);
        if let Some(budget) = options.bytes_moved_budget {
            if bytes_moved + fragment_bytes > budget {
                break;
            }
        }
        bytes_moved += fragment_bytes;
        per_site[heavy].remove(position);
        per_site[light].push((fragment, weight));
        moves.push(RefragOp::Migrate { fragment, from: SiteId(heavy), to: SiteId(light) });
    }
    moves
}

/// The outcome of one [`rebalance`] pass.
#[derive(Debug, Clone)]
pub struct RebalanceOutcome {
    /// The migrations the planner chose (possibly none).
    pub ops: Vec<RefragOp>,
    /// The published re-fragmentation, when any op was worth applying.
    pub report: Option<RefragReport>,
    /// The largest per-site resident-bytes figure before the pass.
    pub max_site_bytes_before: u64,
    /// The same figure after the pass (equals `before` when nothing moved).
    pub max_site_bytes_after: u64,
}

/// Observe, plan, apply: one full rebalancing pass over a live server.
/// With an empty plan nothing is published and the topology version is
/// unchanged; otherwise the whole plan publishes as one epoch, followed by
/// a best-effort vacuum so the source sites' dissolved copies are purged
/// (and show up as freed in `max_site_bytes_after`) as soon as no reader
/// pins the old topology.
pub fn rebalance(server: &PaxServer, options: &PlannerOptions) -> PaxResult<RebalanceOutcome> {
    let model = CostModel::observe(server);
    let before = model.max_site_bytes();
    let ops = plan(&model, options);
    let report = if ops.is_empty() { None } else { Some(apply_ops(server, &ops)?) };
    if report.is_some() {
        let _ = server.vacuum();
    }
    let after = CostModel::observe(server).max_site_bytes();
    Ok(RebalanceOutcome { ops, report, max_site_bytes_before: before, max_site_bytes_after: after })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(sites: Vec<Vec<(usize, u64)>>) -> CostModel {
        CostModel {
            sites: sites
                .into_iter()
                .enumerate()
                .map(|(index, fragments)| SiteCost {
                    site: SiteId(index),
                    fragments: fragments.into_iter().map(|(f, b)| (FragmentId(f), b)).collect(),
                    bytes_served: 0,
                    visits: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn a_balanced_cluster_plans_nothing() {
        let m = model(vec![vec![(0, 100)], vec![(1, 100)]]);
        assert!(plan(&m, &PlannerOptions::default()).is_empty());
    }

    #[test]
    fn a_hot_site_sheds_load_to_the_coldest() {
        let m = model(vec![vec![(0, 100), (1, 100), (2, 100)], vec![], vec![(3, 90)]]);
        let moves = plan(&m, &PlannerOptions::default());
        assert!(!moves.is_empty());
        // Every move comes off site 0 and the result is better balanced.
        for m in &moves {
            match m {
                RefragOp::Migrate { fragment, from, to } => {
                    assert!([FragmentId(0), FragmentId(1), FragmentId(2)].contains(fragment));
                    assert_eq!(*from, SiteId(0));
                    assert_ne!(*to, SiteId(0));
                }
                other => panic!("planner emitted a non-migration: {other:?}"),
            }
        }
    }

    #[test]
    fn the_planner_never_colocates_two_copies_of_one_fragment() {
        // Fragment 0 is replicated on sites 0 and 1. Site 0 is heavy, site
        // 1 is lightest — but moving fragment 0 there would co-locate its
        // copies, so the planner must ship fragment 1 instead.
        let m = model(vec![vec![(0, 100), (1, 80)], vec![(0, 100)], vec![(2, 120)]]);
        let moves = plan(&m, &PlannerOptions::default());
        for op in &moves {
            match op {
                RefragOp::Migrate { fragment, to, .. } => {
                    assert!(
                        !(*fragment == FragmentId(0) && *to == SiteId(1)),
                        "moved a replica onto its sibling's site"
                    );
                }
                other => panic!("planner emitted a non-migration: {other:?}"),
            }
        }
    }

    #[test]
    fn the_budget_caps_bytes_moved() {
        let m = model(vec![vec![(0, 100), (1, 100), (2, 100)], vec![]]);
        let options = PlannerOptions { bytes_moved_budget: Some(100), ..PlannerOptions::default() };
        let moves = plan(&m, &options);
        assert_eq!(moves.len(), 1, "a 100-byte budget affords exactly one 100-byte move");
    }

    #[test]
    fn an_indivisible_site_is_left_alone() {
        // One huge fragment: moving it would just move the hot spot.
        let m = model(vec![vec![(0, 1000)], vec![(1, 10)]]);
        assert!(plan(&m, &PlannerOptions::default()).is_empty());
    }
}

//! The primitive re-fragmentation operations and their executor.
//!
//! [`apply_ops`] turns a sequence of [`RefragOp`]s into one
//! [`TopologyChange`] inside a single [`PaxServer::refragment`] call: the
//! whole sequence publishes as **one** epoch, atomically — a failed
//! payload fetch, an invalid cut, or a dead site mid-transfer publishes
//! nothing and leaves the old topology serving.

use paxml_core::server::{PaxServer, RefragBase, RefragReport, TopologyChange};
use paxml_core::{PaxError, PaxResult};
use paxml_distsim::{ReplicaSet, SiteId};
use paxml_fragment::{merge_fragment, split_fragment, Fragment, FragmentId};
use paxml_xml::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// One primitive operation on the deployment topology. Validation happens
/// inside [`apply_ops`] against the topology the op sequence has built so
/// far, so later ops can reference fragments earlier ops created.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefragOp {
    /// Cut `fragment` at the interior element `cut`: the subtree below it
    /// becomes a new fragment (the next unused id) placed on `place_on`;
    /// its place in the parent is taken by a virtual node. The §5
    /// annotations of the new edge — and of any sub-fragment edges the cut
    /// carries along — are re-derived incrementally.
    Split {
        /// The fragment to cut.
        fragment: FragmentId,
        /// The element node (in the fragment's own tree) to cut at.
        cut: NodeId,
        /// Where the new fragment will live — every site of the set gets a
        /// copy (`ReplicaSet::from(site)` for the unreplicated case).
        place_on: ReplicaSet,
    },
    /// Splice `child` back into its FT parent: the child's data replaces
    /// the parent's virtual node, the child's sub-fragments are lifted to
    /// the parent with joined annotations, and the child's id disappears.
    Merge {
        /// The fragment to dissolve into its parent.
        child: FragmentId,
    },
    /// Move one copy of `fragment` — data unchanged — to another site. The
    /// rest of its replica set stays put.
    Migrate {
        /// The fragment to move.
        fragment: FragmentId,
        /// The site giving its copy up (must hold one).
        from: SiteId,
        /// The destination site.
        to: SiteId,
    },
}

/// Execute `ops` in order as **one** published re-fragmentation.
///
/// Payloads are fetched from the sites on demand (charged rounds, pinned
/// to the base epoch); fragments created by earlier ops are edited in
/// place, so a split fragment can be split again or migrated within the
/// same sequence. The resulting installs ship everything whose content
/// changed or whose site changed — nothing else moves.
pub fn apply_ops(server: &PaxServer, ops: &[RefragOp]) -> PaxResult<RefragReport> {
    server.refragment(|base| build_change(base, ops))
}

/// Fold the op sequence into a [`TopologyChange`] against `base`.
fn build_change(base: &mut RefragBase<'_>, ops: &[RefragOp]) -> PaxResult<TopologyChange> {
    let topology = base.topology();
    let base_placement = topology.placement.clone();
    let mut ft = topology.fragment_tree.clone();
    let mut placement = base_placement.clone();
    // Payloads the sequence has fetched or rewritten so far.
    let mut working: BTreeMap<FragmentId, Fragment> = BTreeMap::new();
    // Fragments whose content or shape changed (split halves, merge
    // products, dissolved ids) — the session-invalidation set.
    let mut touched: BTreeSet<FragmentId> = BTreeSet::new();
    let mut next_id = ft.max_id().index() + 1;

    for op in ops {
        match op {
            RefragOp::Split { fragment, cut, place_on } => {
                let source = obtain(base, &working, *fragment)?;
                let new_id = FragmentId(next_id);
                next_id += 1;
                let outcome = split_fragment(&source, &ft, *cut, new_id)?;
                ft = outcome.fragment_tree;
                placement.insert(new_id, place_on.clone());
                working.insert(*fragment, outcome.parent);
                working.insert(new_id, outcome.child);
                touched.insert(*fragment);
                touched.insert(new_id);
            }
            RefragOp::Merge { child } => {
                let parent_id = ft.parent(*child).ok_or_else(|| PaxError::InvalidConfig {
                    message: format!("cannot merge {child}: it has no parent fragment"),
                })?;
                let child_frag = obtain(base, &working, *child)?;
                let parent_frag = obtain(base, &working, parent_id)?;
                let outcome = merge_fragment(&parent_frag, &child_frag, &ft)?;
                ft = outcome.fragment_tree;
                placement.remove(child);
                working.remove(child);
                working.insert(parent_id, outcome.merged);
                touched.insert(parent_id);
                touched.insert(*child);
            }
            RefragOp::Migrate { fragment, from, to } => {
                let Some(replicas) = placement.get_mut(fragment).filter(|_| ft.contains(*fragment))
                else {
                    return Err(PaxError::InvalidConfig {
                        message: format!("cannot migrate {fragment}: no such fragment"),
                    });
                };
                if !replicas.contains(*from) {
                    return Err(PaxError::InvalidConfig {
                        message: format!(
                            "cannot migrate {fragment} from {from}: no copy lives there \
                             (replicas: {replicas})"
                        ),
                    });
                }
                replicas.migrate(*from, *to);
            }
        }
    }

    // Everything new-or-moved or rewritten must ship. Unmodified movers
    // (pure migrations) still hold their base payloads site-side: fetch
    // them all in one round.
    let mut install_ids: BTreeSet<FragmentId> = BTreeSet::new();
    for &fragment in ft.ids() {
        let moved = base_placement.get(&fragment) != placement.get(&fragment);
        if moved || working.contains_key(&fragment) {
            install_ids.insert(fragment);
        }
    }
    let missing: Vec<FragmentId> =
        install_ids.iter().copied().filter(|f| !working.contains_key(f)).collect();
    let mut fetched = base.fetch(&missing)?;
    let mut installs: Vec<Fragment> = Vec::with_capacity(install_ids.len());
    for fragment in install_ids {
        let payload =
            working.remove(&fragment).or_else(|| fetched.remove(&fragment)).ok_or_else(|| {
                PaxError::Protocol {
                    message: format!("no payload obtainable for fragment {fragment}"),
                }
            })?;
        installs.push(payload);
    }

    Ok(TopologyChange { fragment_tree: ft, placement, installs, touched })
}

/// A fragment's current payload under the sequence so far: the working
/// copy when an earlier op rewrote it, the site's base-epoch version
/// otherwise (one charged fetch round).
fn obtain(
    base: &mut RefragBase<'_>,
    working: &BTreeMap<FragmentId, Fragment>,
    fragment: FragmentId,
) -> PaxResult<Fragment> {
    if let Some(frag) = working.get(&fragment) {
        return Ok(frag.clone());
    }
    let mut fetched = base.fetch(&[fragment])?;
    fetched.remove(&fragment).ok_or_else(|| PaxError::Protocol {
        message: format!("the site holding fragment {fragment} returned no payload"),
    })
}

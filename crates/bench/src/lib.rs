//! # paxml-bench — regenerating the paper's experimental study
//!
//! Three experiment drivers mirror §6 of the paper:
//!
//! * [`experiment1`] — evaluation time vs. number of fragments/machines
//!   (Fig. 9), FT1 topology, constant cumulative data size;
//! * [`experiment2`] — evaluation (parallel) time vs. cumulative data size
//!   (Fig. 10), FT2 topology, queries Q1–Q4;
//! * [`experiment3`] — *total* computation time vs. cumulative data size
//!   (Fig. 11), same runs as Experiment 2 but summing per-site busy time.
//!
//! Sizes are expressed in virtual megabytes (see `paxml-xmark`); by default
//! the experiments use `1 vMB ≙ 20 paper-MB` so the paper's 100–280 MB
//! x-axis becomes 5–14 vMB and a full sweep runs in seconds. The *shape* of
//! every curve is what is being reproduced, not 2007 wall-clock numbers.
//!
//! The `experiments` binary prints each figure as an aligned table and a CSV
//! block; the Criterion benches in `benches/` cover the same grid for
//! statistically robust timing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use paxml_core::{server::PaxServer, Algorithm, ExecReport};
use paxml_distsim::Placement;
use paxml_fragment::FragmentedTree;
use paxml_xmark::{ft1, ft2, PAPER_QUERIES};
use std::time::Duration;

/// Which algorithm/optimization combination a series describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Series {
    /// PaX3 without annotations.
    Pax3Na,
    /// PaX3 with XPath annotations.
    Pax3Xa,
    /// PaX2 without annotations.
    Pax2Na,
    /// PaX2 with XPath annotations.
    Pax2Xa,
    /// The ship-everything baseline.
    Naive,
}

impl Series {
    /// Label used in tables/CSV (matches the paper's legend).
    pub fn label(self) -> &'static str {
        match self {
            Series::Pax3Na => "PaX3-NA",
            Series::Pax3Xa => "PaX3-XA",
            Series::Pax2Na => "PaX2-NA",
            Series::Pax2Xa => "PaX2-XA",
            Series::Naive => "Naive",
        }
    }

    /// All partial-evaluation series.
    pub fn pax_series() -> [Series; 4] {
        [Series::Pax3Na, Series::Pax3Xa, Series::Pax2Na, Series::Pax2Xa]
    }
}

impl Series {
    /// The server algorithm and annotation flag this series stands for.
    pub fn configuration(self) -> (Algorithm, bool) {
        match self {
            Series::Pax3Na => (Algorithm::PaX3, false),
            Series::Pax3Xa => (Algorithm::PaX3, true),
            Series::Pax2Na => (Algorithm::PaX2, false),
            Series::Pax2Xa => (Algorithm::PaX2, true),
            Series::Naive => (Algorithm::NaiveCentralized, false),
        }
    }
}

/// A [`PaxServer`] session for one series over a fresh deployment of the
/// given fragmented document.
pub fn server(series: Series, fragmented: &FragmentedTree, sites: usize) -> PaxServer {
    let (algorithm, annotations) = series.configuration();
    PaxServer::builder()
        .algorithm(algorithm)
        .annotations(annotations)
        .placement(Placement::RoundRobin)
        .sites(sites)
        .deploy(fragmented)
        .expect("valid configuration")
}

/// Run one algorithm/optimization combination over a fresh deployment of the
/// given fragmented document (one-shot, un-amortized — the classic
/// per-query protocol the paper's experiments measure).
pub fn run(series: Series, fragmented: &FragmentedTree, sites: usize, query: &str) -> ExecReport {
    server(series, fragmented, sites).query_once(query).unwrap()
}

/// One measured point of an experiment.
#[derive(Debug, Clone)]
pub struct Point {
    /// Query name (Q1–Q4).
    pub query: &'static str,
    /// Series (algorithm + optimization).
    pub series: Series,
    /// X coordinate: fragment count (Experiment 1) or cumulative vMB
    /// (Experiments 2/3).
    pub x: f64,
    /// Parallel (perceived) evaluation time.
    pub parallel: Duration,
    /// Total computation time summed over the sites.
    pub total: Duration,
    /// Total network traffic in bytes.
    pub bytes: u64,
    /// Deterministic parallel cost model (max per-site ops, summed over rounds).
    pub parallel_ops: u64,
    /// Deterministic total cost model (ops summed over all sites and rounds).
    pub total_ops: u64,
    /// Maximum visits any site received.
    pub max_visits: u32,
    /// Number of answers (sanity/selectivity check).
    pub answers: usize,
    /// Fragments that actually participated.
    pub fragments_evaluated: usize,
}

fn measure(
    query_name: &'static str,
    series: Series,
    fragmented: &FragmentedTree,
    sites: usize,
    query: &str,
    x: f64,
) -> Point {
    let report = run(series, fragmented, sites, query);
    Point {
        query: query_name,
        series,
        x,
        parallel: report.parallel_time(),
        total: report.total_computation_time(),
        bytes: report.network_bytes(),
        parallel_ops: report.parallel_ops(),
        total_ops: report.total_ops(),
        max_visits: report.max_visits_per_site(),
        answers: report.answers().len(),
        fragments_evaluated: report.queries[0].fragments_evaluated,
    }
}

/// Look up one of the paper's queries (Fig. 7) by name (`"Q1"`…`"Q4"`).
pub fn paper_query(name: &str) -> &'static str {
    PAPER_QUERIES
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, q)| *q)
        .unwrap_or_else(|| panic!("unknown paper query {name}"))
}

/// Experiment 1 (Fig. 9): fix the cumulative data size, vary the number of
/// fragments/machines from 1 to `max_fragments`, and measure Q1 (no
/// qualifiers) for PaX3-NA/PaX3-XA and Q4 (qualifiers + `//`) for
/// PaX3-NA/PaX2-NA.
pub fn experiment1(total_vmb: f64, max_fragments: usize, seed: u64) -> Vec<Point> {
    let mut points = Vec::new();
    for k in 1..=max_fragments.max(1) {
        let (_, fragmented) = ft1(k, total_vmb, seed);
        let sites = k;
        for series in [Series::Pax3Na, Series::Pax3Xa] {
            points.push(measure("Q1", series, &fragmented, sites, paper_query("Q1"), k as f64));
        }
        for series in [Series::Pax3Na, Series::Pax2Na] {
            points.push(measure("Q4", series, &fragmented, sites, paper_query("Q4"), k as f64));
        }
    }
    points
}

/// Experiment 2 (Fig. 10): FT2 topology on 10 sites, cumulative size swept
/// from `start_vmb` to `end_vmb` in `steps` steps; every query of Fig. 7 is
/// measured for the series the corresponding sub-figure plots.
pub fn experiment2(start_vmb: f64, end_vmb: f64, steps: usize, seed: u64) -> Vec<Point> {
    let mut points = Vec::new();
    let steps = steps.max(2);
    for i in 0..steps {
        let vmb = start_vmb + (end_vmb - start_vmb) * i as f64 / (steps - 1) as f64;
        let (_, fragmented) = ft2(vmb, seed);
        let sites = 10;
        // Fig. 10(a)/(b): Q1 and Q2, PaX3-NA vs PaX3-XA.
        for (query_name, series) in [
            ("Q1", Series::Pax3Na),
            ("Q1", Series::Pax3Xa),
            ("Q2", Series::Pax3Na),
            ("Q2", Series::Pax3Xa),
            // Fig. 10(c): Q3, PaX3-NA vs PaX2-NA vs PaX2-XA.
            ("Q3", Series::Pax3Na),
            ("Q3", Series::Pax2Na),
            ("Q3", Series::Pax2Xa),
            // Fig. 10(d): Q4, PaX3-NA vs PaX2-NA.
            ("Q4", Series::Pax3Na),
            ("Q4", Series::Pax2Na),
        ] {
            points.push(measure(
                query_name,
                series,
                &fragmented,
                sites,
                paper_query(query_name),
                vmb,
            ));
        }
    }
    points
}

/// Experiment 3 (Fig. 11) uses exactly the same runs as Experiment 2 but
/// reports the *total* computation time; callers can therefore reuse the
/// points of [`experiment2`] — this function simply re-runs the sweep for
/// callers that want an independent measurement.
pub fn experiment3(start_vmb: f64, end_vmb: f64, steps: usize, seed: u64) -> Vec<Point> {
    experiment2(start_vmb, end_vmb, steps, seed)
}

/// Format a set of points as an aligned table, one row per (query, series, x).
pub fn format_table(title: &str, points: &[Point], x_label: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {title}\n"));
    out.push_str(&format!(
        "{:<4} {:<9} {:>10} {:>14} {:>14} {:>13} {:>13} {:>10} {:>7} {:>8} {:>10}\n",
        "qry",
        "series",
        x_label,
        "parallel(ms)",
        "total(ms)",
        "parallel(ops)",
        "total(ops)",
        "bytes",
        "visits",
        "answers",
        "fragments"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<4} {:<9} {:>10.2} {:>14.3} {:>14.3} {:>13} {:>13} {:>10} {:>7} {:>8} {:>10}\n",
            p.query,
            p.series.label(),
            p.x,
            p.parallel.as_secs_f64() * 1e3,
            p.total.as_secs_f64() * 1e3,
            p.parallel_ops,
            p.total_ops,
            p.bytes,
            p.max_visits,
            p.answers,
            p.fragments_evaluated,
        ));
    }
    out
}

/// Format a set of points as CSV (for plotting).
pub fn format_csv(points: &[Point], x_label: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "query,series,{x_label},parallel_ms,total_ms,parallel_ops,total_ops,bytes,max_visits,answers,fragments_evaluated\n"
    ));
    for p in points {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{}\n",
            p.query,
            p.series.label(),
            p.x,
            p.parallel.as_secs_f64() * 1e3,
            p.total.as_secs_f64() * 1e3,
            p.parallel_ops,
            p.total_ops,
            p.bytes,
            p.max_visits,
            p.answers,
            p.fragments_evaluated,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_query_lookup() {
        assert!(paper_query("Q1").contains("people/person"));
        assert!(paper_query("Q2").contains("annotation"));
        assert!(paper_query("Q3").contains("creditcard"));
        assert!(paper_query("Q4").contains("//people"));
    }

    #[test]
    #[should_panic(expected = "unknown paper query")]
    fn unknown_query_panics() {
        paper_query("Q9");
    }

    #[test]
    fn experiment1_produces_the_expected_grid() {
        let points = experiment1(0.4, 3, 7);
        // 3 fragment counts × (2 series for Q1 + 2 series for Q4).
        assert_eq!(points.len(), 12);
        for p in &points {
            assert!(p.max_visits <= 3);
            if p.query == "Q1" {
                assert!(p.answers > 0, "Q1 must select persons");
            }
        }
        // All series agree on the answer count for a given query and x.
        for k in 1..=3 {
            let q1: Vec<&Point> =
                points.iter().filter(|p| p.query == "Q1" && p.x == k as f64).collect();
            assert!(q1.windows(2).all(|w| w[0].answers == w[1].answers));
        }
        let table = format_table("experiment 1", &points, "fragments");
        assert!(table.contains("PaX3-XA"));
        let csv = format_csv(&points, "fragments");
        assert_eq!(csv.lines().count(), 13);
    }

    #[test]
    fn experiment2_covers_all_four_queries() {
        let points = experiment2(0.4, 0.8, 2, 7);
        assert_eq!(points.len(), 18);
        for q in ["Q1", "Q2", "Q3", "Q4"] {
            assert!(points.iter().any(|p| p.query == q));
        }
        // Same-query points at the same size agree on answers across series.
        for q in ["Q1", "Q2", "Q3", "Q4"] {
            let xs: Vec<f64> = points.iter().filter(|p| p.query == q).map(|p| p.x).collect();
            for &x in &xs {
                let answers: Vec<usize> =
                    points.iter().filter(|p| p.query == q && p.x == x).map(|p| p.answers).collect();
                assert!(answers.windows(2).all(|w| w[0] == w[1]), "answer mismatch for {q} at {x}");
            }
        }
    }

    #[test]
    fn annotations_reduce_work_for_q1_on_ft2() {
        let points = experiment2(0.6, 0.6, 2, 3);
        let na: Vec<&Point> =
            points.iter().filter(|p| p.query == "Q1" && p.series == Series::Pax3Na).collect();
        let xa: Vec<&Point> =
            points.iter().filter(|p| p.query == "Q1" && p.series == Series::Pax3Xa).collect();
        assert!(!na.is_empty() && !xa.is_empty());
        // The XA run touches fewer fragments (the regions / auctions
        // sub-fragments are pruned), hence less total work.
        assert!(xa[0].fragments_evaluated < na[0].fragments_evaluated);
    }
}
